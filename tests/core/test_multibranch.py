"""Tests for multi-branch dimension hierarchies and facade options.

A synthetic healthcare domain where a concept has *two* outgoing to-one
chains (Visit -> Doctor -> Department, Visit -> Doctor is linear, but
Patient -> City -> Country and Patient -> InsurancePlan fork), so the
complement stage must produce multiple hierarchies and the ETL dimension
branch must join both chains into one denormalised table.
"""

import pytest

from repro import Quarry, RequirementBuilder
from repro.core.interpreter import Interpreter
from repro.engine import Database, Executor
from repro.expressions import ScalarType
from repro.ontology import OntologyBuilder
from repro.sources.mappings import SourceMappings
from repro.sources.schema import ForeignKey, SourceSchema, make_table

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


def clinic_ontology():
    return (
        OntologyBuilder("clinic")
        .concept("Country")
        .concept("City")
        .concept("Plan")
        .concept("Patient")
        .concept("Visit")
        .attribute("Country_country_name", "Country", STR)
        .attribute("City_city_name", "City", STR)
        .attribute("Plan_plan_name", "Plan", STR)
        .attribute("Patient_patient_name", "Patient", STR)
        .attribute("Visit_fee", "Visit", DEC)
        .relationship("City_country", "City", "Country", "N-1")
        .relationship("Patient_city", "Patient", "City", "N-1")
        .relationship("Patient_plan", "Patient", "Plan", "N-1")
        .relationship("Visit_patient", "Visit", "Patient", "N-1")
        .build()
    )


def clinic_schema():
    schema = SourceSchema(name="clinic")
    schema.add_table(make_table(
        "country", [("country_id", INT), ("country_name", STR)],
        primary_key=["country_id"],
    ))
    schema.add_table(make_table(
        "city",
        [("city_id", INT), ("city_name", STR), ("country_id", INT)],
        primary_key=["city_id"],
        foreign_keys=[ForeignKey(("country_id",), "country", ("country_id",))],
    ))
    schema.add_table(make_table(
        "plan", [("plan_id", INT), ("plan_name", STR)],
        primary_key=["plan_id"],
    ))
    schema.add_table(make_table(
        "patient",
        [("patient_id", INT), ("patient_name", STR), ("city_id", INT),
         ("plan_id", INT)],
        primary_key=["patient_id"],
        foreign_keys=[
            ForeignKey(("city_id",), "city", ("city_id",)),
            ForeignKey(("plan_id",), "plan", ("plan_id",)),
        ],
    ))
    schema.add_table(make_table(
        "visit",
        [("visit_id", INT), ("patient_id", INT), ("fee", DEC)],
        primary_key=["visit_id"],
        foreign_keys=[ForeignKey(("patient_id",), "patient", ("patient_id",))],
    ))
    schema.validate()
    return schema


def clinic_mappings():
    mappings = SourceMappings(ontology_name="clinic", source_name="clinic")
    mappings.map_concept("Country", "country", ("country_id",))
    mappings.map_concept("City", "city", ("city_id",))
    mappings.map_concept("Plan", "plan", ("plan_id",))
    mappings.map_concept("Patient", "patient", ("patient_id",))
    mappings.map_concept("Visit", "visit", ("visit_id",))
    for prop, column in [
        ("Country_country_name", "country_name"),
        ("City_city_name", "city_name"),
        ("Plan_plan_name", "plan_name"),
        ("Patient_patient_name", "patient_name"),
        ("Visit_fee", "fee"),
    ]:
        mappings.map_property(prop, column)
    return mappings


def clinic_data():
    return {
        "country": [
            {"country_id": 1, "country_name": "Spain"},
            {"country_id": 2, "country_name": "France"},
        ],
        "city": [
            {"city_id": 1, "city_name": "Barcelona", "country_id": 1},
            {"city_id": 2, "city_name": "Paris", "country_id": 2},
        ],
        "plan": [
            {"plan_id": 1, "plan_name": "Basic"},
            {"plan_id": 2, "plan_name": "Premium"},
        ],
        "patient": [
            {"patient_id": 1, "patient_name": "Ann", "city_id": 1, "plan_id": 1},
            {"patient_id": 2, "patient_name": "Bob", "city_id": 2, "plan_id": 2},
            {"patient_id": 3, "patient_name": "Cat", "city_id": 1, "plan_id": 2},
        ],
        "visit": [
            {"visit_id": 1, "patient_id": 1, "fee": 50.0},
            {"visit_id": 2, "patient_id": 1, "fee": 70.0},
            {"visit_id": 3, "patient_id": 2, "fee": 90.0},
            {"visit_id": 4, "patient_id": 3, "fee": 30.0},
        ],
    }


def fee_requirement():
    return (
        RequirementBuilder("V1", "total fee per patient")
        .measure("total_fee", "Visit_fee", "SUM")
        .per("Patient_patient_name")
        .build()
    )


class TestMultiBranchComplement:
    @pytest.fixture(scope="class")
    def design(self):
        interpreter = Interpreter(
            clinic_ontology(), clinic_schema(), clinic_mappings()
        )
        return interpreter.interpret(fee_requirement())

    def test_patient_dimension_has_two_hierarchies(self, design):
        dimension = design.md_schema.dimension("Patient")
        assert set(dimension.levels) == {"Patient", "City", "Country", "Plan"}
        assert len(dimension.hierarchies) == 2
        paths = {tuple(h.levels) for h in dimension.hierarchies}
        assert ("Patient", "City", "Country") in paths
        assert ("Patient", "Plan") in paths

    def test_single_dimension_branch_joins_both_chains(self, design):
        flow = design.etl_flow
        joins = [
            name for name in flow.node_names()
            if name.startswith("JOIN_dim_Patient")
        ]
        # city, country and plan all joined into one branch.
        assert len(joins) == 3
        loaders = [n for n in flow.nodes() if n.kind == "Loader"]
        assert {l.table for l in loaders} == {
            "fact_table_total_fee", "dim_Patient",
        }

    def test_executes_and_denormalises_both_branches(self, design):
        database = Database()
        database.load_source(clinic_schema(), clinic_data())
        Executor(database).execute(design.etl_flow)
        rows = database.scan("dim_Patient").rows
        assert {
            (r["patient_name"], r["city_name"], r["country_name"], r["plan_name"])
            for r in rows
        } == {
            ("Ann", "Barcelona", "Spain", "Basic"),
            ("Bob", "Paris", "France", "Premium"),
            ("Cat", "Barcelona", "Spain", "Premium"),
        }
        facts = {
            row["patient_name"]: row["total_fee"]
            for row in database.scan("fact_table_total_fee").rows
        }
        assert facts == {"Ann": 120.0, "Bob": 90.0, "Cat": 30.0}


class TestFacadeOptions:
    def test_quarry_on_custom_domain(self):
        quarry = Quarry(clinic_ontology(), clinic_schema(), clinic_mappings())
        quarry.add_requirement(fee_requirement())
        database = Database()
        database.load_source(clinic_schema(), clinic_data())
        result = quarry.deploy("native", source_database=database)
        assert result.stats.loaded["fact_table_total_fee"] == 3

    def test_complement_off_gives_flat_dimension(self):
        quarry = Quarry(
            clinic_ontology(), clinic_schema(), clinic_mappings(),
            complement=False,
        )
        quarry.add_requirement(fee_requirement())
        md, __ = quarry.unified_design()
        assert set(md.dimension("Patient").levels) == {"Patient"}

    def test_align_off_still_integrates(self):
        quarry = Quarry(
            clinic_ontology(), clinic_schema(), clinic_mappings(),
            align_etl=False,
        )
        quarry.add_requirement(fee_requirement())
        second = (
            RequirementBuilder("V2", "avg fee per plan")
            .measure("avg_fee", "Visit_fee", "AVERAGE")
            .per("Plan_plan_name")
            .build()
        )
        quarry.add_requirement(second)
        assert quarry.satisfiability_problems() == []

    def test_custom_md_weights_flow_through(self):
        from repro.mdmodel.complexity import ComplexityWeights

        quarry = Quarry(
            clinic_ontology(), clinic_schema(), clinic_mappings(),
            md_weights=ComplexityWeights(fact=1, measure=1, dimension=1,
                                         level=1, attribute=1, hierarchy=1,
                                         link=1),
        )
        quarry.add_requirement(fee_requirement())
        status = quarry.status()
        # unit weights: 1 fact + 1 measure + 1 link + 1 dim + 4 levels
        # + 4 attributes + 2 hierarchies = 14
        assert status.complexity == 14
