"""Unit tests for expression evaluation, including NULL semantics."""

import datetime

import pytest

from repro.errors import EvaluationError
from repro.expressions import evaluate, parse


def run(text, **row):
    return evaluate(parse(text), row)


class TestArithmetic:
    def test_addition(self):
        assert run("1 + 2") == 3

    def test_precedence_in_evaluation(self):
        assert run("2 + 3 * 4") == 14

    def test_revenue_formula(self):
        result = run(
            "price * (1 - discount)", price=100.0, discount=0.05
        )
        assert result == pytest.approx(95.0)

    def test_division(self):
        assert run("7 / 2") == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            run("1 / 0")

    def test_modulo(self):
        assert run("7 % 3") == 1

    def test_unary_minus(self):
        assert run("-x", x=4) == -4

    def test_string_concatenation_via_plus(self):
        assert run("'a' + 'b'") == "ab"

    def test_string_plus_number_raises(self):
        with pytest.raises(EvaluationError):
            run("'a' + 1")


class TestComparisons:
    def test_equality(self):
        assert run("n_name = 'Spain'", n_name="Spain") is True
        assert run("n_name = 'Spain'", n_name="France") is False

    def test_ordering(self):
        assert run("a < b", a=1, b=2) is True
        assert run("a >= b", a=2, b=2) is True

    def test_mixed_numeric_comparison(self):
        assert run("a = b", a=1, b=1.0) is True

    def test_date_comparison(self):
        row = {"d": datetime.date(1995, 6, 1)}
        assert evaluate(parse("d >= date '1995-01-01'"), row) is True

    def test_incomparable_types_raise(self):
        with pytest.raises(EvaluationError):
            run("a < b", a=1, b="x")


class TestLogic:
    def test_and_or(self):
        assert run("true and false") is False
        assert run("true or false") is True

    def test_not(self):
        assert run("not (1 = 2)") is True

    def test_in_list(self):
        assert run("x in (1, 2, 3)", x=2) is True
        assert run("x in (1, 2, 3)", x=9) is False

    def test_non_boolean_in_logic_raises(self):
        with pytest.raises(EvaluationError):
            run("1 and true")


class TestNullSemantics:
    def test_null_arithmetic_is_null(self):
        assert run("x + 1", x=None) is None

    def test_null_comparison_is_null(self):
        assert run("x = 1", x=None) is None

    def test_kleene_and_with_false_short_circuits(self):
        assert run("false and x = 1", x=None) is False

    def test_kleene_and_with_true_stays_null(self):
        assert run("true and x = 1", x=None) is None

    def test_kleene_or_with_true_short_circuits(self):
        assert run("true or x = 1", x=None) is True

    def test_kleene_or_with_false_stays_null(self):
        assert run("false or x = 1", x=None) is None

    def test_not_null_is_null(self):
        assert run("not x", x=None) is None

    def test_in_with_null_member_and_no_match_is_null(self):
        assert run("x in (1, null)", x=5) is None

    def test_in_with_match_ignores_null_member(self):
        assert run("x in (1, null)", x=1) is True

    def test_null_left_of_in_is_null(self):
        assert run("x in (1, 2)", x=None) is None

    def test_coalesce_skips_nulls(self):
        assert run("coalesce(x, 0)", x=None) == 0
        assert run("coalesce(x, 0)", x=5) == 5


class TestFunctions:
    def test_abs(self):
        assert run("abs(-3)") == 3

    def test_round_floor_ceil(self):
        assert run("round(2.6)") == 3
        assert run("floor(2.6)") == 2
        assert run("ceil(2.1)") == 3

    def test_sqrt(self):
        assert run("sqrt(9)") == 3.0

    def test_sqrt_negative_raises(self):
        with pytest.raises(EvaluationError):
            run("sqrt(-1)")

    def test_string_functions(self):
        assert run("upper('ab')") == "AB"
        assert run("lower('AB')") == "ab"
        assert run("length('abc')") == 3
        assert run("trim('  x ')") == "x"
        assert run("concat('a', 'b')") == "ab"

    def test_substring_is_one_based(self):
        assert run("substring('warehouse', 1, 4)") == "ware"
        assert run("substring('warehouse', 5, 5)") == "house"

    def test_substring_zero_start_raises(self):
        with pytest.raises(EvaluationError):
            run("substring('x', 0, 1)")

    def test_date_parts(self):
        row = {"d": datetime.date(1995, 8, 17)}
        assert evaluate(parse("year(d)"), row) == 1995
        assert evaluate(parse("month(d)"), row) == 8
        assert evaluate(parse("day(d)"), row) == 17
        assert evaluate(parse("quarter(d)"), row) == 3

    def test_function_null_propagation(self):
        assert run("upper(x)", x=None) is None

    def test_unknown_function_raises(self):
        with pytest.raises(EvaluationError):
            run("frobnicate(1)")


class TestErrors:
    def test_missing_attribute_raises(self):
        with pytest.raises(EvaluationError) as excinfo:
            run("missing + 1")
        assert "missing" in str(excinfo.value)
