"""The typed metadata catalog over the document store.

"the Communication & Metadata layer also serves as a repository for the
metadata that are produced and used during the DW design lifecycle"
(§2.5): information requirements, partial designs (per requirement),
unified designs, domain ontologies and source schema mappings.

Artefacts cross the boundary in their XML formats (xRQ/xMD/xLM) and are
stored as JSON documents via the generic converter — mirroring the
MongoDB + XML-JSON-XML parser of §2.6.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.requirements.model import InformationRequirement
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.model import MDSchema
from repro.ontology import io as ontology_io
from repro.ontology.model import Ontology
from repro.repository.documents import DocumentStore
from repro.repository import store as file_store
from repro.xformats import xlm, xmd, xrq
from repro.xformats.xmljson import json_to_xml, xml_to_json

REQUIREMENTS = "requirements"
PARTIAL_DESIGNS = "partial_designs"
UNIFIED_DESIGNS = "unified_designs"
ONTOLOGIES = "ontologies"
DEPLOYMENTS = "deployments"


#: Secondary indexes the catalog declares on its collections.  The
#: partial-design ``requirement`` index serves the hot lookup of the
#: lifecycle (cascade-deleting the partial designs of a requirement);
#: ``kind`` indexes serve catalog-wide audits; ``design`` serves the
#: deployment history lookup.
CATALOG_INDEXES = {
    REQUIREMENTS: ("kind",),
    PARTIAL_DESIGNS: ("requirement", "kind"),
    UNIFIED_DESIGNS: ("kind",),
    DEPLOYMENTS: ("design", "platform"),
}


class MetadataRepository:
    """Typed facade over the document store."""

    def __init__(self, store: Optional[DocumentStore] = None) -> None:
        self._store = store if store is not None else DocumentStore()
        for collection_name, paths in CATALOG_INDEXES.items():
            collection = self._store.collection(collection_name)
            for path in paths:
                collection.create_index(path)

    @property
    def store(self) -> DocumentStore:
        return self._store

    # -- requirements -----------------------------------------------------------

    def save_requirement(self, requirement: InformationRequirement) -> str:
        """Store a requirement (xRQ -> JSON document)."""
        document = {
            "_id": requirement.id,
            "kind": "requirement",
            "description": requirement.description,
            "xrq": xml_to_json(xrq.dumps(requirement)),
        }
        self._store.collection(REQUIREMENTS).replace(document)
        return requirement.id

    def load_requirement(self, requirement_id: str) -> InformationRequirement:
        document = self._store.collection(REQUIREMENTS).get(requirement_id)
        return xrq.loads(json_to_xml(document["xrq"]))

    def delete_requirement(self, requirement_id: str) -> None:
        self._store.collection(REQUIREMENTS).delete(requirement_id)
        self._store.collection(PARTIAL_DESIGNS).delete_many(
            {"requirement": requirement_id}
        )

    def requirement_ids(self) -> List[str]:
        return self._store.collection(REQUIREMENTS).ids()

    # -- partial designs ---------------------------------------------------------

    def save_partial_design(
        self,
        requirement_id: str,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
    ) -> str:
        """Store the partial designs generated for one requirement."""
        doc_id = f"partial::{requirement_id}"
        document = {
            "_id": doc_id,
            "kind": "partial_design",
            "requirement": requirement_id,
            "xmd": xml_to_json(xmd.dumps(md_schema)),
            "xlm": xml_to_json(xlm.dumps(etl_flow)),
        }
        self._store.collection(PARTIAL_DESIGNS).replace(document)
        return doc_id

    def load_partial_design(
        self, requirement_id: str
    ) -> Tuple[MDSchema, EtlFlow]:
        document = self._store.collection(PARTIAL_DESIGNS).get(
            f"partial::{requirement_id}"
        )
        return (
            xmd.loads(json_to_xml(document["xmd"])),
            xlm.loads(json_to_xml(document["xlm"])),
        )

    def partial_design_ids(self) -> List[str]:
        return [
            document["requirement"]
            for document in self._store.collection(PARTIAL_DESIGNS).find()
        ]

    # -- unified designs --------------------------------------------------------------

    def save_unified_design(
        self,
        name: str,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
        satisfied_requirements: List[str],
    ) -> str:
        """Store a unified design solution version."""
        document = {
            "_id": name,
            "kind": "unified_design",
            "requirements": sorted(satisfied_requirements),
            "xmd": xml_to_json(xmd.dumps(md_schema)),
            "xlm": xml_to_json(xlm.dumps(etl_flow)),
        }
        self._store.collection(UNIFIED_DESIGNS).replace(document)
        return name

    def load_unified_design(self, name: str) -> Tuple[MDSchema, EtlFlow, List[str]]:
        document = self._store.collection(UNIFIED_DESIGNS).get(name)
        return (
            xmd.loads(json_to_xml(document["xmd"])),
            xlm.loads(json_to_xml(document["xlm"])),
            list(document["requirements"]),
        )

    def unified_design_names(self) -> List[str]:
        return self._store.collection(UNIFIED_DESIGNS).ids()

    # -- ontologies and mappings --------------------------------------------------------

    def save_ontology(self, ontology: Ontology) -> str:
        document = {
            "_id": ontology.name,
            "kind": "ontology",
            "text": ontology_io.dumps(ontology),
        }
        self._store.collection(ONTOLOGIES).replace(document)
        return ontology.name

    def load_ontology(self, name: str) -> Ontology:
        document = self._store.collection(ONTOLOGIES).get(name)
        return ontology_io.loads(document["text"])

    def ontology_names(self) -> List[str]:
        return self._store.collection(ONTOLOGIES).ids()

    # -- deployment records -------------------------------------------------------------

    def record_deployment(
        self, design_name: str, platform: str, artifacts: dict
    ) -> str:
        """Record what was generated/deployed for a design on a platform."""
        doc_id = f"{design_name}::{platform}"
        self._store.collection(DEPLOYMENTS).replace(
            {
                "_id": doc_id,
                "kind": "deployment",
                "design": design_name,
                "platform": platform,
                "artifacts": artifacts,
            }
        )
        return doc_id

    def deployments_of(self, design_name: str) -> List[dict]:
        return self._store.collection(DEPLOYMENTS).find(
            {"design": design_name}
        )

    # -- persistence -------------------------------------------------------------------

    def save_to(self, path) -> None:
        """Persist the whole repository to a JSON file."""
        file_store.save(self._store, path)

    @classmethod
    def load_from(cls, path) -> "MetadataRepository":
        return cls(store=file_store.load(path))
