"""SQL DDL generation for MD schemas.

Produces the ``CREATE DATABASE`` / ``CREATE TABLE`` script visible in
Figure 3: one table per dimension (``dim_<name>``, all level attributes)
and one table per fact (grain columns + measures, PRIMARY KEY over the
grain).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.sqlgen import check_dialect, sql_identifier, sql_type
from repro.errors import DeploymentError
from repro.expressions.types import ScalarType
from repro.mdmodel.model import Dimension, Fact, MDSchema


def dimension_table_name(dimension: Dimension) -> str:
    return f"dim_{dimension.name}"


def dimension_columns(dimension: Dimension) -> Dict[str, ScalarType]:
    """All level attributes of a dimension, base level first."""
    columns: Dict[str, ScalarType] = {}
    for level in dimension.levels.values():
        for attribute in level.attributes:
            if attribute.name not in columns:
                columns[attribute.name] = attribute.type
    return columns


def fact_columns(schema: MDSchema, fact: Fact) -> Dict[str, ScalarType]:
    """Grain columns (typed via the linked dimensions) plus measures."""
    columns: Dict[str, ScalarType] = {}
    available: Dict[str, ScalarType] = {}
    for link in fact.links:
        dimension = schema.dimension(link.dimension)
        for name, scalar_type in dimension_columns(dimension).items():
            available.setdefault(name, scalar_type)
    for column in fact.grain:
        if column in columns:
            continue
        if column not in available:
            raise DeploymentError(
                f"fact {fact.name!r}: grain column {column!r} is not an "
                f"attribute of any linked dimension"
            )
        columns[column] = available[column]
    for measure in fact.measures.values():
        if measure.name in columns:
            raise DeploymentError(
                f"fact {fact.name!r}: measure {measure.name!r} collides "
                f"with a grain column"
            )
        columns[measure.name] = measure.type
    return columns


def create_table_statement(
    table: str,
    columns: Dict[str, ScalarType],
    primary_key: Optional[List[str]] = None,
    dialect: str = "postgres",
) -> str:
    check_dialect(dialect)
    lines = [f"CREATE TABLE {sql_identifier(table)} ("]
    parts = [
        f"  {sql_identifier(name)} {sql_type(scalar_type, dialect)}"
        for name, scalar_type in columns.items()
    ]
    if primary_key:
        rendered = ", ".join(sql_identifier(column) for column in primary_key)
        parts.append(f"  PRIMARY KEY( {rendered} )")
    lines.append(",\n".join(parts))
    lines.append(");")
    return "\n".join(lines)


def generate(
    schema: MDSchema,
    dialect: str = "postgres",
    database_name: Optional[str] = None,
) -> str:
    """The full DDL script for an MD schema."""
    check_dialect(dialect)
    statements: List[str] = []
    if database_name is not None and dialect == "postgres":
        statements.append(f"CREATE DATABASE {sql_identifier(database_name)};")
    for dimension in schema.dimensions.values():
        statements.append(
            create_table_statement(
                dimension_table_name(dimension),
                dimension_columns(dimension),
                dialect=dialect,
            )
        )
    for fact in schema.facts.values():
        statements.append(
            create_table_statement(
                fact.name,
                fact_columns(schema, fact),
                primary_key=list(dict.fromkeys(fact.grain)) or None,
                dialect=dialect,
            )
        )
    return "\n\n".join(statements) + "\n"
