"""Shared-memory column transport for the process-pool executor.

``Executor(mode="parallel", pool="process")`` must move column data to
worker processes.  Pickling whole Python lists through the task pipe is
the straightforward way — and exactly what makes naive multiprocess ETL
lose to a single core.  This module moves **homogeneous fixed-width
columns through ``multiprocessing.shared_memory``** instead: the parent
packs each eligible column once into a named segment (a flat value
array plus a one-byte-per-row NULL mask), and every chunk task carries
only the segment name and its ``[start, stop)`` row range.  Workers map
the segment, copy out just their slice, and hand the executor plain
Python lists again — transport is invisible above this module.

Eligibility is deliberately strict, because the executor's contract is
*byte-identical* results:

* ``int`` columns ride as 64-bit signed values — but only when every
  value is exactly ``int`` (``bool`` is a subclass and would rehydrate
  as ``int``, changing ``repr``) and fits the range;
* ``float`` columns ride as IEEE doubles, which round-trip bit-exactly
  (``struct``/``array`` never normalise, so NaN payloads and signed
  zeros survive);
* ``None`` is carried in the mask, any other value type makes the
  column fall back to pickling its per-chunk slice.

The pickle fallback is also the safety net: if the platform has no
usable ``/dev/shm`` the transport degrades to pure pickling rather
than failing.

:class:`SharedObject` is the second transport shape: one
pickled-once blob in shared memory (used for the serially-built join
index, which every probe chunk reads) so the pool's task pipe does not
carry ``workers`` copies of it.

Lifecycle: the parent owns every segment and must call ``close()``
(``ColumnTransport`` and ``SharedObject`` are context managers) after
the chunk futures resolve.  Workers attach read-only and close
immediately after copying; on Pythons whose ``SharedMemory`` registers
*attaches* with the resource tracker (3.8–3.12) they also unregister,
so the tracker does not complain about segments the parent already
unlinked.
"""

from __future__ import annotations

import pickle
import sys
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - the stdlib always has it on supported platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: 64-bit signed bounds: ints outside ride the pickle fallback.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: typecode -> bytes per value of the packed array layouts.
_ITEM_SIZES = {"q": 8, "d": 8}


def process_context():
    """The multiprocessing context for executor process pools.

    ``fork`` on platforms that support it safely (Linux): workers
    inherit warm compile caches and imported modules for free.  macOS
    ``fork`` is unsafe with threads (the system frameworks abort), and
    Windows never had it, so both select ``spawn``.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if sys.platform not in ("darwin", "win32") and "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _attach(name: str):
    """Attach to a named segment.

    On 3.8–3.12 attaching re-registers the name with the resource
    tracker.  Pool workers — forked *and* spawned — inherit the
    parent's tracker process (spawn passes the tracker fd in its
    preparation data), so that registration is a set no-op in the one
    shared tracker and the parent's single ``unlink`` retires it
    cleanly.  Unregistering here (the folk remedy for tracker "leak"
    warnings) would be actively wrong: it strips the creator's own
    registration out of the shared cache.
    """
    return _shared_memory.SharedMemory(name=name)


def _classify(values: Sequence[object]) -> Optional[str]:
    """The packed typecode for a column, or ``None`` for object columns.

    Strict on types: ``type(v) is int`` / ``type(v) is float`` only —
    a ``bool`` or int-valued ``float`` must come back exactly as it
    went in, so subclasses and mixtures disqualify the column.
    """
    saw_int = saw_float = False
    for value in values:
        if value is None:
            continue
        kind = type(value)
        if kind is int:
            if not (_INT64_MIN <= value <= _INT64_MAX):
                return None
            saw_int = True
        elif kind is float:
            saw_float = True
        else:
            return None
        if saw_int and saw_float:
            return None
    if saw_float:
        return "d"
    if saw_int:
        return "q"
    # All-NULL columns pack as (empty) integers: only the mask matters.
    return "q"


@dataclass(frozen=True)
class ShmSlice:
    """A picklable reference to rows ``[start, stop)`` of a packed column.

    Layout of the segment: ``count`` values of ``typecode`` followed by
    ``count`` mask bytes (1 = NULL).
    """

    segment: str
    typecode: str
    count: int
    start: int
    stop: int

    def values(self) -> list:
        """Copy this slice out of shared memory as a plain list."""
        handle = _attach(self.segment)
        try:
            item_size = _ITEM_SIZES[self.typecode]
            packed = array(self.typecode)
            packed.frombytes(
                handle.buf[self.start * item_size : self.stop * item_size]
            )
            values = packed.tolist()
            mask_base = self.count * item_size
            mask = bytes(
                handle.buf[mask_base + self.start : mask_base + self.stop]
            )
        finally:
            handle.close()
        if 1 in mask:
            for position, flag in enumerate(mask):
                if flag:
                    values[position] = None
        return values


@dataclass(frozen=True)
class RawSlice:
    """The pickle fallback: the slice's values travel with the task."""

    data: tuple

    def values(self) -> list:
        return list(self.data)


class ColumnTransport:
    """Parent-side packer for the columns one parallel node ships.

    Packs each eligible column into one shared-memory segment up front;
    :meth:`chunk_payload` then yields per-chunk handles — tiny for
    packed columns, sliced lists for fallback columns — and
    :func:`hydrate_chunk` turns a payload back into column lists
    worker-side.
    """

    def __init__(self, columns: Dict[str, list], length: int) -> None:
        self.length = length
        self._segments: List[object] = []
        self._packed: Dict[str, Tuple[str, str]] = {}
        self._fallback: Dict[str, list] = {}
        for name, values in columns.items():
            typecode = (
                _classify(values) if _shared_memory is not None else None
            )
            segment = (
                self._pack(values, typecode, length)
                if typecode is not None and length > 0
                else None
            )
            if segment is None:
                self._fallback[name] = values
            else:
                self._segments.append(segment)
                self._packed[name] = (segment.name, typecode)

    def _pack(self, values: list, typecode: str, length: int):
        item_size = _ITEM_SIZES[typecode]
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=length * (item_size + 1)
            )
        except Exception:  # no usable /dev/shm: degrade to pickling
            return None
        packed = array(
            typecode,
            (value if value is not None else 0 for value in values),
        )
        mask = bytes(1 if value is None else 0 for value in values)
        # Explicit end offsets: some platforms round segments up to page
        # granularity, so ``buf`` may be longer than requested.
        segment.buf[: length * item_size] = packed.tobytes()
        segment.buf[length * item_size : length * (item_size + 1)] = mask
        return segment

    @property
    def shared_columns(self) -> List[str]:
        """Names that ride shared memory (the rest pickle per chunk)."""
        return sorted(self._packed)

    def chunk_payload(self, names: Sequence[str], start: int, stop: int):
        """The picklable transport of columns ``names`` rows [start, stop)."""
        payload = []
        for name in names:
            packed = self._packed.get(name)
            if packed is not None:
                segment, typecode = packed
                payload.append(
                    ShmSlice(segment, typecode, self.length, start, stop)
                )
            else:
                payload.append(
                    RawSlice(tuple(self._fallback[name][start:stop]))
                )
        return tuple(payload)

    def close(self) -> None:
        """Release every segment (parent-side close + unlink)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except Exception:
                pass
        self._segments = []
        self._packed = {}

    def __enter__(self) -> "ColumnTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def hydrate_chunk(payload) -> List[list]:
    """Worker-side: a chunk payload back into plain column lists."""
    return [entry.values() for entry in payload]


class SharedObject:
    """One pickled object in shared memory, read by every chunk task.

    The parent pickles once into a segment; the picklable handle is a
    few bytes, so submitting it with ``workers`` tasks does not copy
    the object ``workers`` times through the task pipe.  Falls back to
    carrying the pickle bytes inline when shared memory is unavailable.
    """

    def __init__(self, obj: object) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._segment = None
        self._inline: Optional[bytes] = None
        self.size = len(data)
        if _shared_memory is not None and self.size > 0:
            try:
                self._segment = _shared_memory.SharedMemory(
                    create=True, size=self.size
                )
            except Exception:
                self._segment = None
        if self._segment is not None:
            self._segment.buf[: self.size] = data
            self.name: Optional[str] = self._segment.name
        else:
            self.name = None
            self._inline = data

    def handle(self) -> "SharedObjectHandle":
        return SharedObjectHandle(self.name, self.size, self._inline)

    def close(self) -> None:
        if self._segment is not None:
            try:
                self._segment.close()
                self._segment.unlink()
            except Exception:
                pass
            self._segment = None

    def __enter__(self) -> "SharedObject":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class SharedObjectHandle:
    """The picklable reference chunk tasks carry to a :class:`SharedObject`."""

    name: Optional[str]
    size: int
    inline: Optional[bytes] = None

    def load(self) -> object:
        if self.name is None:
            return pickle.loads(self.inline or b"")
        segment = _attach(self.name)
        try:
            return pickle.loads(bytes(segment.buf[: self.size]))
        finally:
            segment.close()
