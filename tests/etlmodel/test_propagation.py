"""Unit tests for schema propagation."""

import pytest

from repro.errors import SchemaPropagationError
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Join,
    Loader,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.etlmodel.propagation import propagate
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
DEC = ScalarType.DECIMAL
STR = ScalarType.STRING


def single_op_flow(operation, columns=("a", "b")):
    """src -> operation -> load over an untyped (STRING) datastore."""
    flow = EtlFlow("t")
    flow.chain(
        Datastore("src", table="t", columns=tuple(columns)),
        operation,
        Loader("load", table="out"),
    )
    return flow


class TestDatastore:
    def test_typed_from_source_schema(self, revenue_flow, tpch_schema):
        schemas = propagate(revenue_flow, tpch_schema)
        assert schemas["DATASTORE_lineitem"]["l_extendedprice"] is DEC
        assert schemas["DATASTORE_orders"]["o_orderkey"] is INT

    def test_explicit_columns_subset_source(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="nation", columns=("n_name",)),
            Loader("load", table="out"),
        )
        schemas = propagate(flow, tpch_schema)
        assert list(schemas["src"]) == ["n_name"]

    def test_unknown_explicit_column_raises(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="nation", columns=("ghost",)),
            Loader("load", table="out"),
        )
        with pytest.raises(SchemaPropagationError):
            propagate(flow, tpch_schema)

    def test_untyped_fallback_is_string(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="anything", columns=("a",)),
            Loader("load", table="out"),
        )
        schemas = propagate(flow, None)
        assert schemas["src"]["a"] is STR

    def test_unknown_table_without_columns_raises(self):
        flow = EtlFlow("t")
        flow.chain(Datastore("src", table="ghost"), Loader("load", table="o"))
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)


class TestUnaryOperators:
    def test_projection_subsets_and_orders(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="nation"),
            Projection("proj", columns=("n_name", "n_nationkey")),
            Loader("load", table="out"),
        )
        schemas = propagate(flow, tpch_schema)
        assert list(schemas["proj"]) == ["n_name", "n_nationkey"]

    def test_projection_unknown_attribute_raises(self):
        flow = single_op_flow(Projection("proj", columns=("ghost",)))
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_selection_preserves_schema(self):
        flow = single_op_flow(Selection("sel", predicate="a = 'x'"))
        schemas = propagate(flow, None)
        assert schemas["sel"] == schemas["src"]

    def test_selection_type_error_raises(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="nation"),
            Selection("sel", predicate="n_name + 1 = 2"),
            Loader("load", table="out"),
        )
        with pytest.raises(SchemaPropagationError):
            propagate(flow, tpch_schema)

    def test_selection_non_boolean_predicate_raises(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="nation"),
            Selection("sel", predicate="n_nationkey + 1"),
            Loader("load", table="out"),
        )
        with pytest.raises(SchemaPropagationError):
            propagate(flow, tpch_schema)

    def test_derive_adds_typed_attribute(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="lineitem"),
            DerivedAttribute(
                "derive", output="rev", expression="l_extendedprice * (1 - l_discount)"
            ),
            Loader("load", table="out"),
        )
        schemas = propagate(flow, tpch_schema)
        assert schemas["derive"]["rev"] is DEC
        assert "l_extendedprice" in schemas["derive"]

    def test_rename_maps_attributes(self):
        flow = single_op_flow(Rename("ren", renaming=(("a", "x"),)))
        schemas = propagate(flow, None)
        assert set(schemas["ren"]) == {"x", "b"}

    def test_rename_collision_raises(self):
        flow = single_op_flow(Rename("ren", renaming=(("a", "b"),)))
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_surrogate_key_prepends_integer(self):
        flow = single_op_flow(SurrogateKey("sk", output="id", business_keys=("a",)))
        schemas = propagate(flow, None)
        assert list(schemas["sk"])[0] == "id"
        assert schemas["sk"]["id"] is INT

    def test_surrogate_collision_raises(self):
        flow = single_op_flow(SurrogateKey("sk", output="a", business_keys=("a",)))
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_sort_checks_keys(self):
        flow = single_op_flow(Sort("sort", keys=("ghost",)))
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)


class TestBinaryOperators:
    def test_join_unions_attributes(self, revenue_flow, tpch_schema):
        schemas = propagate(revenue_flow, tpch_schema)
        joined = schemas["JOIN_lineitem_orders"]
        assert set(joined) == {
            "l_orderkey", "l_extendedprice", "l_discount",
            "o_orderkey", "o_custkey",
        }

    def test_join_missing_key_raises(self):
        flow = EtlFlow("t")
        flow.add(Datastore("left", table="l", columns=("a",)))
        flow.add(Datastore("right", table="r", columns=("b",)))
        flow.add(Join("join", left_keys=("ghost",), right_keys=("b",)))
        flow.add(Loader("load", table="o"))
        flow.connect("left", "join")
        flow.connect("right", "join")
        flow.connect("join", "load")
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_join_name_collision_raises(self):
        flow = EtlFlow("t")
        flow.add(Datastore("left", table="l", columns=("a", "x")))
        flow.add(Datastore("right", table="r", columns=("b", "x")))
        flow.add(Join("join", left_keys=("a",), right_keys=("b",)))
        flow.add(Loader("load", table="o"))
        flow.connect("left", "join")
        flow.connect("right", "join")
        flow.connect("join", "load")
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_join_on_same_named_key_collapses(self):
        flow = EtlFlow("t")
        flow.add(Datastore("left", table="l", columns=("k", "a")))
        flow.add(Datastore("right", table="r", columns=("k", "b")))
        flow.add(Join("join", left_keys=("k",), right_keys=("k",)))
        flow.add(Loader("load", table="o"))
        flow.connect("left", "join")
        flow.connect("right", "join")
        flow.connect("join", "load")
        schemas = propagate(flow, None)
        assert set(schemas["join"]) == {"k", "a", "b"}

    def test_union_requires_identical_schemas(self):
        flow = EtlFlow("t")
        flow.add(Datastore("left", table="l", columns=("a",)))
        flow.add(Datastore("right", table="r", columns=("b",)))
        flow.add(UnionOp("union"))
        flow.add(Loader("load", table="o"))
        flow.connect("left", "union")
        flow.connect("right", "union")
        flow.connect("union", "load")
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)


class TestAggregation:
    def test_aggregation_output_schema(self, revenue_flow, tpch_schema):
        schemas = propagate(revenue_flow, tpch_schema)
        assert list(schemas["AGG_revenue"]) == ["n_name", "total_revenue"]
        assert schemas["AGG_revenue"]["total_revenue"] is DEC

    def test_count_returns_integer_avg_returns_decimal(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="lineitem"),
            Aggregation(
                "agg",
                group_by=("l_returnflag",),
                aggregates=(
                    AggregationSpec("n", "COUNT", "l_orderkey"),
                    AggregationSpec("avg_qty", "AVERAGE", "l_quantity"),
                ),
            ),
            Loader("load", table="o"),
        )
        schemas = propagate(flow, tpch_schema)
        assert schemas["agg"]["n"] is INT
        assert schemas["agg"]["avg_qty"] is DEC

    def test_sum_over_string_raises(self, tpch_schema):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="nation"),
            Aggregation(
                "agg",
                group_by=(),
                aggregates=(AggregationSpec("s", "SUM", "n_name"),),
            ),
            Loader("load", table="o"),
        )
        with pytest.raises(SchemaPropagationError):
            propagate(flow, tpch_schema)

    def test_unknown_function_raises(self):
        flow = single_op_flow(
            Aggregation(
                "agg", group_by=("a",),
                aggregates=(AggregationSpec("m", "MEDIAN", "b"),),
            )
        )
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_empty_aggregates_raise(self):
        flow = single_op_flow(Aggregation("agg", group_by=("a",)))
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)

    def test_duplicate_output_raises(self):
        flow = single_op_flow(
            Aggregation(
                "agg", group_by=("a",),
                aggregates=(
                    AggregationSpec("a", "COUNT", "b"),
                ),
            )
        )
        with pytest.raises(SchemaPropagationError):
            propagate(flow, None)


class TestEndToEnd:
    def test_full_revenue_flow_propagates(self, revenue_flow, tpch_schema):
        schemas = propagate(revenue_flow, tpch_schema)
        assert set(schemas) == set(revenue_flow.node_names())
        assert schemas["LOAD_fact_revenue"] == schemas["AGG_revenue"]
