"""Tests for the Design Deployer (Figure 3's deployment side)."""

import pytest

from repro.core.deployer import Deployer
from repro.core.deployer import ddl, pdi, sqlscript
from repro.core.interpreter import Interpreter
from repro.errors import DeploymentError
from repro.sources import tpch

from .conftest import build_revenue_requirement


@pytest.fixture(scope="module")
def design():
    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    return interpreter.interpret(build_revenue_requirement())


@pytest.fixture(scope="module")
def deployer():
    return Deployer(source_schema=tpch.schema())


class TestDDL:
    def test_figure3_shape(self, design):
        script = ddl.generate(design.md_schema, database_name="demo")
        assert "CREATE DATABASE demo;" in script
        assert "CREATE TABLE fact_table_revenue (" in script
        assert "revenue double precision" in script
        assert "PRIMARY KEY( p_name, s_name )" in script
        assert 'CREATE TABLE "dim_Part" (' in script

    def test_dimension_tables_carry_all_levels(self, design):
        script = ddl.generate(design.md_schema)
        # Supplier dimension is complemented to Nation and Region.
        assert "n_name" in script and "r_name" in script

    def test_sqlite_dialect(self, design):
        script = ddl.generate(design.md_schema, dialect="sqlite")
        assert "REAL" in script
        assert "double precision" not in script

    def test_unknown_dialect_rejected(self, design):
        with pytest.raises(DeploymentError):
            ddl.generate(design.md_schema, dialect="oracle")

    def test_grain_column_must_come_from_linked_dimension(self, design):
        broken = design.md_schema.copy()
        broken.fact("fact_table_revenue").grain.append("ghost_column")
        with pytest.raises(DeploymentError):
            ddl.generate(broken)


class TestPDI:
    def test_figure3_shape(self, design):
        ktr = pdi.generate(design.etl_flow, database="demo")
        assert "<transformation>" in ktr
        assert "<database>demo</database>" in ktr
        assert "<hop>" in ktr
        assert "<from>DATASTORE_lineitem</from>" in ktr
        assert "<type>TableInput</type>" in ktr
        assert "<type>TableOutput</type>" in ktr

    def test_steps_cover_all_operations(self, design):
        ktr = pdi.generate(design.etl_flow)
        for name in design.etl_flow.node_names():
            assert f"<name>{name}</name>" in ktr

    def test_join_step_parameters(self, design):
        ktr = pdi.generate(design.etl_flow)
        assert "<join_type>INNER</join_type>" in ktr
        assert "<key>l_orderkey</key>" in ktr

    def test_aggregate_types_translated(self, design):
        ktr = pdi.generate(design.etl_flow)
        assert "<type>AVERAGE</type>" in ktr

    def test_is_well_formed_xml(self, design):
        import xml.etree.ElementTree as ET

        ET.fromstring(pdi.generate(design.etl_flow))


class TestSqlScript:
    def test_blocks_per_loader(self, design):
        script = sqlscript.generate(design.etl_flow)
        assert script.count("INSERT INTO") == 3  # fact + 2 dims
        assert "TRUNCATE TABLE fact_table_revenue;" in script
        assert "WITH " in script

    def test_selection_rendered_as_where(self, design):
        script = sqlscript.generate(design.etl_flow)
        assert "WHERE (n_name = 'SPAIN')" in script

    def test_aggregation_rendered_with_group_by(self, design):
        script = sqlscript.generate(design.etl_flow)
        assert "AVG(revenue) AS revenue" in script
        assert "GROUP BY p_name, s_name" in script

    def test_join_rendered_with_on(self, design):
        script = sqlscript.generate(design.etl_flow)
        assert " JOIN " in script and " ON " in script

    def test_distinct_rendered(self, design):
        script = sqlscript.generate(design.etl_flow)
        assert "SELECT DISTINCT *" in script


class TestNativeDeployment:
    def test_native_deploy_creates_and_fills_star(self, design, deployer):
        from repro.engine import Database, OlapQuery, query_star

        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=21))
        result = deployer.deploy(
            design.md_schema, design.etl_flow, "native",
            source_database=database,
        )
        assert result.stats is not None
        assert database.has_table("fact_table_revenue")
        assert database.has_table("dim_Supplier")
        # Fact table was pre-created with the declared PK: loading a
        # second time in replace mode must still work.
        deployer.deploy(
            design.md_schema, design.etl_flow, "native",
            source_database=database,
        )
        # The deployed star answers OLAP queries.
        answer = query_star(
            database,
            OlapQuery(
                fact_table="fact_table_revenue",
                group_by=["s_name"],
                aggregates=[("AVERAGE", "revenue", "avg_rev")],
            ),
        )
        assert len(answer) >= 0

    def test_native_requires_source_database(self, design, deployer):
        with pytest.raises(DeploymentError):
            deployer.deploy(design.md_schema, design.etl_flow, "native")

    def test_unknown_platform_rejected(self, design, deployer):
        with pytest.raises(DeploymentError):
            deployer.deploy(design.md_schema, design.etl_flow, "teradata")

    def test_generation_platforms_return_artifacts(self, design, deployer):
        for platform, key in [
            ("postgres", "ddl"), ("sqlite", "ddl"),
            ("pdi", "ktr"), ("sql", "script"),
        ]:
            result = deployer.deploy(design.md_schema, design.etl_flow, platform)
            assert key in result.artifacts
            assert result.artifacts[key]

    def test_exporters_registered_in_metadata_registry(self, deployer):
        notations = deployer.registry.notations("etl_flow", "export")
        assert "pdi" in notations and "sql" in notations and "xlm" in notations
        assert "ddl-postgres" in deployer.registry.notations(
            "md_schema", "export"
        )
