"""Unit tests for the deterministic data generators."""

import datetime

import pytest

from repro.sources import retail, tpch
from repro.sources.datagen import DataGenerator


class TestDataGenerator:
    def test_same_seed_same_sequence(self):
        first = DataGenerator(42)
        second = DataGenerator(42)
        assert [first.integer(0, 100) for __ in range(20)] == [
            second.integer(0, 100) for __ in range(20)
        ]

    def test_different_seeds_differ(self):
        first = [DataGenerator(1).integer(0, 10**9) for __ in range(3)]
        second = [DataGenerator(2).integer(0, 10**9) for __ in range(3)]
        assert first != second

    def test_decimal_respects_bounds_and_digits(self):
        gen = DataGenerator(1)
        for __ in range(100):
            value = gen.decimal(1.0, 2.0, digits=2)
            assert 1.0 <= value <= 2.0
            assert round(value, 2) == value

    def test_date_window(self):
        gen = DataGenerator(1)
        start = datetime.date(1995, 1, 1)
        end = datetime.date(1995, 12, 31)
        for __ in range(50):
            assert start <= gen.date(start, end) <= end

    def test_zipf_choice_skews_to_head(self):
        gen = DataGenerator(1)
        options = list(range(100))
        picks = [gen.zipf_choice(options) for __ in range(2000)]
        head = sum(1 for pick in picks if pick < 10)
        tail = sum(1 for pick in picks if pick >= 90)
        assert head > tail * 3

    def test_word_alternates_consonant_vowel(self):
        gen = DataGenerator(1)
        word = gen.word(6, 6)
        assert len(word) == 6
        vowels = set("aeiou")
        assert word[1] in vowels and word[3] in vowels

    def test_code_format(self):
        gen = DataGenerator(1)
        assert gen.code("Customer", 7) == "Customer#000000007"


class TestTpchGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return tpch.generate(scale_factor=0.2, seed=5)

    def test_determinism(self):
        assert tpch.generate(0.1, seed=9) == tpch.generate(0.1, seed=9)

    def test_all_tables_present(self, data):
        assert set(data) == {
            "region", "nation", "supplier", "customer",
            "part", "partsupp", "orders", "lineitem",
        }

    def test_reference_data_fixed(self, data):
        assert len(data["region"]) == 5
        assert len(data["nation"]) == 25
        names = {row["n_name"] for row in data["nation"]}
        assert "SPAIN" in names  # the paper's slicer value

    def test_rows_conform_to_schema(self, data):
        schema = tpch.schema()
        for table_name, rows in data.items():
            columns = set(schema.table(table_name).column_names())
            for row in rows:
                assert set(row) == columns

    def test_foreign_keys_resolve(self, data):
        nation_keys = {row["n_nationkey"] for row in data["nation"]}
        for row in data["customer"]:
            assert row["c_nationkey"] in nation_keys
        order_keys = {row["o_orderkey"] for row in data["orders"]}
        partsupp_keys = {
            (row["ps_partkey"], row["ps_suppkey"]) for row in data["partsupp"]
        }
        for row in data["lineitem"]:
            assert row["l_orderkey"] in order_keys
            assert (row["l_partkey"], row["l_suppkey"]) in partsupp_keys

    def test_primary_keys_unique(self, data):
        schema = tpch.schema()
        for table_name, rows in data.items():
            key_columns = schema.table(table_name).primary_key
            keys = [tuple(row[column] for column in key_columns) for row in rows]
            assert len(keys) == len(set(keys)), table_name

    def test_scale_factor_scales_volume(self):
        small = tpch.generate(0.1, seed=3)
        large = tpch.generate(1.0, seed=3)
        assert len(large["lineitem"]) > len(small["lineitem"]) * 3

    def test_discounts_in_tpch_range(self, data):
        for row in data["lineitem"]:
            assert 0.0 <= row["l_discount"] <= 0.10


class TestRetailGenerator:
    @pytest.fixture(scope="class")
    def data(self):
        return retail.generate(scale_factor=0.5, seed=11)

    def test_determinism(self):
        assert retail.generate(0.2, seed=1) == retail.generate(0.2, seed=1)

    def test_rows_conform_to_schema(self, data):
        schema = retail.schema()
        for table_name, rows in data.items():
            columns = set(schema.table(table_name).column_names())
            for row in rows:
                assert set(row) == columns

    def test_foreign_keys_resolve(self, data):
        product_ids = {row["product_id"] for row in data["product"]}
        store_ids = {row["store_id"] for row in data["store"]}
        date_ids = {row["date_id"] for row in data["calendar"]}
        for row in data["ticket_line"]:
            assert row["product_id"] in product_ids
            assert row["store_id"] in store_ids
            assert row["date_id"] in date_ids

    def test_calendar_consistency(self, data):
        for row in data["calendar"]:
            assert row["month"] == row["day"].month
            assert row["year"] == row["day"].year
