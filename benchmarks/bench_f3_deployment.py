"""F3/S3 — design deployment (Figure 3 right-hand side, demo scenario 3).

Regenerates the deployment artefacts of Figure 3 (PostgreSQL DDL and a
Pentaho PDI ``.ktr``) for the unified revenue+netprofit design, checks
their shape, and measures generation and native-execution times per
platform.
"""

import pytest

from repro import Quarry
from repro.sources import tpch

from benchmarks._workloads import (
    ROW_COUNTS,
    netprofit_requirement,
    revenue_requirement,
)
from benchmarks.conftest import make_database


@pytest.fixture(scope="module")
def quarry():
    instance = Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )
    instance.add_requirement(revenue_requirement())
    instance.add_requirement(netprofit_requirement())
    return instance


class TestFigure3Artefacts:
    def test_postgres_ddl_matches_figure3(self, quarry):
        ddl = quarry.deploy("postgres").artifacts["ddl"]
        assert "CREATE DATABASE demo;" in ddl
        assert "CREATE TABLE fact_table_revenue (" in ddl
        assert "CREATE TABLE fact_table_netprofit (" in ddl
        assert "revenue double precision" in ddl
        assert "PRIMARY KEY(" in ddl

    def test_pdi_ktr_matches_figure3(self, quarry):
        import xml.etree.ElementTree as ET

        ktr = quarry.deploy("pdi").artifacts["ktr"]
        root = ET.fromstring(ktr)
        assert root.tag == "transformation"
        assert root.find("connection/database").text == "demo"
        hops = root.findall("order/hop")
        steps = root.findall("step")
        assert len(hops) > 20 and len(steps) > 20
        step_types = {step.find("type").text for step in steps}
        assert {"TableInput", "TableOutput", "FilterRows", "MergeJoin",
                "GroupBy"} <= step_types

    def test_sql_script_loads_both_facts(self, quarry):
        script = quarry.deploy("sql").artifacts["script"]
        assert "INSERT INTO fact_table_revenue" in script
        assert "INSERT INTO fact_table_netprofit" in script


class TestGenerationSpeed:
    @pytest.mark.parametrize("platform", ["postgres", "sqlite", "pdi", "sql"])
    def test_artifact_generation(self, benchmark, quarry, platform):
        benchmark.group = "F3 artefact generation"
        benchmark.name = platform
        result = benchmark(lambda: quarry.deploy(platform))
        assert result.artifacts


class TestNativeExecution:
    @pytest.mark.parametrize("scale_factor", [0.2, 0.5, 1.0])
    def test_native_deployment(self, benchmark, quarry, scale_factor):
        benchmark.group = "F3 native deployment"
        benchmark.name = f"SF {scale_factor}"

        def setup():
            return (make_database(scale_factor),), {}

        def deploy(database):
            return quarry.deploy("native", source_database=database)

        result = benchmark.pedantic(deploy, setup=setup, rounds=3)
        assert result.stats.loaded["fact_table_revenue"] >= 0
        assert result.stats.loaded["fact_table_netprofit"] > 0

    def test_shape_execution_scales_roughly_linearly(self, quarry):
        import time

        seconds = {}
        for scale_factor in (0.25, 1.0):
            database = make_database(scale_factor)
            samples = []
            for __ in range(3):
                started = time.perf_counter()
                quarry.deploy("native", source_database=database)
                samples.append(time.perf_counter() - started)
            seconds[scale_factor] = sorted(samples)[1]
        ratio = seconds[1.0] / seconds[0.25]
        # 4x the data should cost between ~1.5x and ~12x (roughly linear,
        # generous bounds for timing noise on small inputs).
        assert 1.5 < ratio < 12
