"""MD integrity constraints and summarizability validation.

"For each new, changed, or removed requirement, an updated DW design must
go through a series of validation processes to guarantee [...] the
soundness of the updated design solutions (i.e., meeting MD integrity
constraints [9])" (§1).  This module implements those validation
processes over :class:`repro.mdmodel.model.MDSchema`:

* structural constraints — facts have measures and dimension links,
  links reference existing dimensions/levels, hierarchies reference
  existing levels and start at a base level a fact can link,
* summarizability constraints (after Mazón et al.'s survey, [9]) —
  aggregation functions must be compatible with measure additivity
  (e.g. a non-additive measure such as a ratio cannot be SUMmed;
  semi-additive measures such as stock levels may not be summed along
  their restricted dimension).

``validate`` returns all problems at once; ``check`` raises
:class:`repro.errors.MDConstraintViolation` if any ERROR-severity
problem exists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import MDConstraintViolation
from repro.mdmodel.model import (
    SCD2_COLUMNS,
    Additivity,
    AggregationFunction,
    MDSchema,
    SCDPolicy,
)


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One validation finding."""

    severity: Severity
    element: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.element}: {self.message}"


#: Aggregation functions that are distributive and thus always safe to
#: compute along any hierarchy roll-up.
_DISTRIBUTIVE = {
    AggregationFunction.SUM,
    AggregationFunction.MIN,
    AggregationFunction.MAX,
    AggregationFunction.COUNT,
}


def validate(schema: MDSchema) -> List[Violation]:
    """Run all MD integrity checks; returns every finding."""
    violations: List[Violation] = []
    violations.extend(_validate_dimensions(schema))
    violations.extend(_validate_facts(schema))
    return violations


def check(schema: MDSchema) -> None:
    """Raise :class:`MDConstraintViolation` when the schema is unsound."""
    errors = [v for v in validate(schema) if v.severity is Severity.ERROR]
    if errors:
        raise MDConstraintViolation(errors)


def is_sound(schema: MDSchema) -> bool:
    """Whether the schema has no ERROR-severity violations."""
    return not any(v.severity is Severity.ERROR for v in validate(schema))


def _validate_dimensions(schema: MDSchema) -> List[Violation]:
    violations: List[Violation] = []
    for dimension in schema.dimensions.values():
        element = f"dimension {dimension.name!r}"
        if not dimension.levels:
            violations.append(
                Violation(Severity.ERROR, element, "has no levels")
            )
            continue
        if not dimension.hierarchies:
            violations.append(
                Violation(Severity.ERROR, element, "has no hierarchies")
            )
        covered = set()
        for hierarchy in dimension.hierarchies:
            for level_name in hierarchy.levels:
                if level_name not in dimension.levels:
                    violations.append(
                        Violation(
                            Severity.ERROR,
                            element,
                            f"hierarchy {hierarchy.name!r} references "
                            f"unknown level {level_name!r}",
                        )
                    )
                covered.add(level_name)
        orphans = set(dimension.levels) - covered
        for level_name in sorted(orphans):
            violations.append(
                Violation(
                    Severity.WARNING,
                    element,
                    f"level {level_name!r} is in no hierarchy "
                    f"(unreachable for roll-up)",
                )
            )
        for level in dimension.levels.values():
            if not level.attributes:
                violations.append(
                    Violation(
                        Severity.ERROR,
                        element,
                        f"level {level.name!r} has no attributes",
                    )
                )
            violations.extend(_validate_scd(dimension, level, element))
    return violations


def _validate_scd(dimension, level, element: str) -> List[Violation]:
    """Validity-window constraints for SCD-typed levels.

    A TYPE2 level grows validity-window columns in its dimension table;
    those names must not collide with declared attributes, the level
    needs a key to identify the business entity across versions, and an
    SCD level other than a hierarchy base cannot be honoured by the ETL
    (only base levels are loaded row-by-row from the sources).
    """
    violations: List[Violation] = []
    if level.scd_policy is SCDPolicy.TYPE0:
        return violations
    if level.key is None:
        violations.append(
            Violation(
                Severity.ERROR,
                element,
                f"level {level.name!r} declares SCD policy "
                f"{level.scd_policy.value} but has no key attribute to "
                f"identify entities across changes",
            )
        )
    if level.scd_policy is SCDPolicy.TYPE2:
        collisions = sorted(set(level.attribute_names()) & set(SCD2_COLUMNS))
        for name in collisions:
            violations.append(
                Violation(
                    Severity.ERROR,
                    element,
                    f"level {level.name!r} attribute {name!r} collides "
                    f"with an SCD2 validity-window column",
                )
            )
        if len(level.attributes) < 2:
            violations.append(
                Violation(
                    Severity.WARNING,
                    element,
                    f"level {level.name!r} is SCD2 but has only its key "
                    f"attribute; no descriptor can ever change",
                )
            )
    if dimension.hierarchies and level.name not in dimension.base_levels():
        violations.append(
            Violation(
                Severity.WARNING,
                element,
                f"level {level.name!r} declares SCD policy "
                f"{level.scd_policy.value} at a non-base level; generated "
                f"ETL only versions hierarchy base levels",
            )
        )
    return violations


def _validate_facts(schema: MDSchema) -> List[Violation]:
    violations: List[Violation] = []
    for fact in schema.facts.values():
        element = f"fact {fact.name!r}"
        if not fact.measures:
            violations.append(Violation(Severity.ERROR, element, "has no measures"))
        if not fact.links:
            violations.append(
                Violation(Severity.ERROR, element, "links no dimensions")
            )
        seen_dimensions = set()
        for link in fact.links:
            if link.dimension in seen_dimensions:
                violations.append(
                    Violation(
                        Severity.ERROR,
                        element,
                        f"links dimension {link.dimension!r} twice",
                    )
                )
            seen_dimensions.add(link.dimension)
            if not schema.has_dimension(link.dimension):
                violations.append(
                    Violation(
                        Severity.ERROR,
                        element,
                        f"links unknown dimension {link.dimension!r}",
                    )
                )
                continue
            dimension = schema.dimension(link.dimension)
            if not dimension.has_level(link.level):
                violations.append(
                    Violation(
                        Severity.ERROR,
                        element,
                        f"links dimension {link.dimension!r} at unknown "
                        f"level {link.level!r}",
                    )
                )
                continue
            # The link level must be a base of some hierarchy, otherwise
            # facts would sit at a coarser granularity than the dimension
            # can roll up from (violating the MD base-granularity rule).
            if dimension.hierarchies and link.level not in dimension.base_levels():
                finer_exists = any(
                    dimension.rolls_up(other, link.level)
                    for other in dimension.levels
                    if other != link.level
                )
                if finer_exists:
                    violations.append(
                        Violation(
                            Severity.WARNING,
                            element,
                            f"links {link.dimension!r} at non-base level "
                            f"{link.level!r}; finer levels cannot be queried",
                        )
                    )
        violations.extend(_validate_measures(fact, element))
    return violations


def _validate_measures(fact, element: str) -> List[Violation]:
    violations: List[Violation] = []
    for measure in fact.measures.values():
        if measure.additivity is Additivity.NON_ADDITIVE:
            if measure.aggregation is AggregationFunction.SUM:
                violations.append(
                    Violation(
                        Severity.ERROR,
                        element,
                        f"non-additive measure {measure.name!r} cannot be "
                        f"SUMmed (summarizability, cf. [9])",
                    )
                )
            elif measure.aggregation in (
                AggregationFunction.MIN,
                AggregationFunction.MAX,
                AggregationFunction.COUNT,
            ):
                # Order statistics and counts remain meaningful.
                pass
            else:
                violations.append(
                    Violation(
                        Severity.WARNING,
                        element,
                        f"non-additive measure {measure.name!r} aggregated "
                        f"with {measure.aggregation.value}; verify semantics",
                    )
                )
        if measure.additivity is Additivity.SEMI_ADDITIVE:
            if measure.aggregation is AggregationFunction.SUM:
                violations.append(
                    Violation(
                        Severity.WARNING,
                        element,
                        f"semi-additive measure {measure.name!r} SUMmed; "
                        f"sums along the restricted dimension are invalid",
                    )
                )
        if measure.aggregation not in _DISTRIBUTIVE:
            violations.append(
                Violation(
                    Severity.WARNING,
                    element,
                    f"measure {measure.name!r} uses non-distributive "
                    f"{measure.aggregation.value}; pre-aggregated roll-ups "
                    f"must keep auxiliary counts",
                )
            )
    return violations
