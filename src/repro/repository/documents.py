"""An embedded document store with Mongo-style queries.

Documents are plain JSON-compatible dicts with a required ``_id``.
Filters support equality on (dotted) paths plus the operators
``$eq $ne $gt $gte $lt $lte $in $nin $exists $regex`` and the
conjunctions ``$and $or $not``.

Collections support secondary (field-value) indexes on declared dotted
paths, maintained on every write.  A small query planner routes
top-level equality and ``$in`` filters through an index and falls back
to a full scan for everything else; candidates from any route are still
verified against the full query, so an index can change only *how fast*
a query answers, never *what* it answers.

Collections are thread-safe: every public read and write holds the
collection's reentrant lock, so concurrent design sessions can share one
store.  The lock is per collection — sessions namespacing their state
into distinct collections never contend with each other.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.locks import new_rlock

from repro.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    RepositoryError,
)

_OPERATORS = {
    "$eq", "$ne", "$gt", "$gte", "$lt", "$lte",
    "$in", "$nin", "$exists", "$regex",
}


def _resolve_path(document: dict, path: str):
    """Value at a dotted path; (value, found) pair."""
    current = document
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return None, False
    return current, True


def _sort_group(value):
    """Type-bucketed total order over document values.

    Values only ever compare against values of the same bucket, so a
    heterogeneously-typed sort key can never raise ``TypeError`` and no
    value is coerced into another type.  Booleans get their own bucket
    (``True == 1`` in Python, but a bool is not a number here), ints and
    floats share the number bucket, and anything exotic (lists, dicts)
    falls back to a repr ordering within its own type name.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("number", value)
    if isinstance(value, str):
        return ("string", value)
    return (type(value).__name__, repr(value))


def _find_sort_key(document: dict, path: str):
    """Sort key for :meth:`Collection.find`: missing first, then NULL,
    then present values grouped by type — falsy values (``0``, ``""``,
    ``False``) sort as themselves, never collapsed."""
    value, found = _resolve_path(document, path)
    if not found:
        return (0, ("", ""))
    if value is None:
        return (1, ("", ""))
    return (2, _sort_group(value))


def _compare(op: str, value, expected) -> bool:
    if op == "$eq":
        return value == expected
    if op == "$ne":
        return value != expected
    if op in ("$gt", "$gte", "$lt", "$lte"):
        if value is None:
            return False
        try:
            if op == "$gt":
                return value > expected
            if op == "$gte":
                return value >= expected
            if op == "$lt":
                return value < expected
            return value <= expected
        except TypeError:
            return False
    if op == "$in":
        return value in expected
    if op == "$nin":
        return value not in expected
    if op == "$regex":
        return isinstance(value, str) and re.search(expected, value) is not None
    raise RepositoryError(f"unknown operator {op!r}")


def matches(document: dict, query: dict) -> bool:
    """Whether a document satisfies a filter query."""
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
            continue
        if key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
            continue
        if key == "$not":
            if matches(document, condition):
                return False
            continue
        value, found = _resolve_path(document, key)
        if isinstance(condition, dict) and any(
            op.startswith("$") for op in condition
        ):
            for op, expected in condition.items():
                if op == "$exists":
                    if bool(found) != bool(expected):
                        return False
                    continue
                if op not in _OPERATORS:
                    raise RepositoryError(f"unknown operator {op!r}")
                if not found and op not in ("$ne", "$nin"):
                    return False
                if not _compare(op, value, expected):
                    return False
        else:
            if not found or value != condition:
                return False
    return True


def _query_is_safe(query: dict) -> bool:
    """Whether evaluating ``query`` can never raise, on any document.

    Index routing and limit short-circuiting skip documents a full scan
    would have match-tested; that is only sound when none of those
    skipped evaluations could have raised (unknown operator, malformed
    ``$in``/``$regex`` operand).  Unsafe queries take the plain scan
    path so error behaviour is bit-identical to an unindexed collection.
    """
    for key, condition in query.items():
        if key in ("$and", "$or"):
            if not isinstance(condition, (list, tuple)) or not all(
                isinstance(sub, dict) and _query_is_safe(sub)
                for sub in condition
            ):
                return False
            continue
        if key == "$not":
            if not isinstance(condition, dict) or not _query_is_safe(condition):
                return False
            continue
        if isinstance(condition, dict) and any(
            op.startswith("$") for op in condition
        ):
            for op, expected in condition.items():
                if op == "$exists":
                    continue
                if op not in _OPERATORS:
                    return False
                if op in ("$in", "$nin") and not isinstance(
                    expected, (list, tuple)
                ):
                    return False
                if op == "$regex":
                    if not isinstance(expected, str):
                        return False
                    try:
                        re.compile(expected)
                    except re.error:
                        return False
    return True


class _FieldIndex:
    """Equality index over one dotted path.

    ``buckets`` maps a document's value at the path to the ids holding
    it.  Values that Python cannot hash (lists, dicts) land in the
    ``loose`` set, which every index lookup includes wholesale — the
    full-query verification pass filters them, so unhashable values cost
    a small residual scan instead of wrong answers.  Documents without
    the path are absent entirely: equality and ``$in`` can never match
    a missing field.
    """

    __slots__ = ("path", "buckets", "loose")

    def __init__(self, path: str) -> None:
        self.path = path
        self.buckets: Dict[object, Set] = {}
        self.loose: Set = set()

    def add(self, doc_id, document: dict) -> None:
        value, found = _resolve_path(document, self.path)
        if not found:
            return
        try:
            bucket = self.buckets.setdefault(value, set())
        except TypeError:
            self.loose.add(doc_id)
            return
        bucket.add(doc_id)

    def remove(self, doc_id, document: dict) -> None:
        value, found = _resolve_path(document, self.path)
        if not found:
            return
        try:
            bucket = self.buckets.get(value)
        except TypeError:
            self.loose.discard(doc_id)
            return
        if bucket is not None:
            bucket.discard(doc_id)
            if not bucket:
                del self.buckets[value]

    def lookup(self, values: Iterable) -> Set:
        """Ids whose indexed value *may* equal one of ``values``.

        A superset of the true matches (it always includes ``loose``);
        the caller verifies candidates against the full query.
        """
        ids = set(self.loose)
        for value in values:
            try:
                bucket = self.buckets.get(value)
            except TypeError:
                # An unhashable probe can only equal unhashable stored
                # values, and those are all in ``loose`` already.
                continue
            if bucket:
                ids.update(bucket)
        return ids


class Collection:
    """One named collection of documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Reentrant so compound writes (``delete_many`` -> ``delete``)
        #: and callers that already hold the lock both work.
        self._lock = new_rlock("Collection._lock")
        self._documents: Dict[str, dict] = {}  # guarded-by: Collection._lock
        #: Monotonic insertion position per id, so the ``_id`` fast path
        #: can restore collection order without scanning (replacing an
        #: existing document keeps its position, like dict assignment).
        self._positions: Dict[str, int] = {}  # guarded-by: Collection._lock
        self._next_position = 0  # guarded-by: Collection._lock
        self._indexes: Dict[str, _FieldIndex] = {}  # guarded-by: Collection._lock
        #: Which route answered each read — tests and benchmarks assert
        #: the planner took the cheap path (they read without the lock,
        #: after the writers have quiesced).
        self.stats: Dict[str, int] = {  # guarded-by: Collection._lock [writes]
            "scans": 0, "index_lookups": 0, "id_lookups": 0,
        }

    def _track(self, doc_id) -> None:
        if doc_id not in self._positions:
            self._positions[doc_id] = self._next_position
            self._next_position += 1

    # -- indexes ----------------------------------------------------------

    def create_index(self, path: str) -> None:
        """Declare (idempotently) an equality index on a dotted path.

        Existing documents are backfilled immediately; subsequent writes
        maintain the index incrementally.
        """
        with self._lock:
            if path in self._indexes:
                return
            index = _FieldIndex(path)
            for doc_id, document in self._documents.items():
                index.add(doc_id, document)
            self._indexes[path] = index

    def indexes(self) -> List[str]:
        """Declared index paths, in declaration order."""
        with self._lock:
            return list(self._indexes)

    def _index_add(self, doc_id, document: dict) -> None:
        for index in self._indexes.values():
            index.add(doc_id, document)

    def _index_remove(self, doc_id, document: dict) -> None:
        for index in self._indexes.values():
            index.remove(doc_id, document)

    # -- writes -----------------------------------------------------------

    def insert(self, document: dict) -> str:
        """Insert a document; ``_id`` is required and must be fresh."""
        if "_id" not in document:
            raise RepositoryError("document needs an '_id'")
        doc_id = document["_id"]
        with self._lock:
            if doc_id in self._documents:
                raise DuplicateDocumentError(
                    f"document {doc_id!r} already in collection {self.name!r}"
                )
            stored = dict(document)
            self._documents[doc_id] = stored
            self._track(doc_id)
            self._index_add(doc_id, stored)
        return doc_id

    def replace(self, document: dict) -> str:
        """Insert or overwrite by ``_id`` (upsert)."""
        if "_id" not in document:
            raise RepositoryError("document needs an '_id'")
        doc_id = document["_id"]
        with self._lock:
            previous = self._documents.get(doc_id)
            if previous is not None:
                self._index_remove(doc_id, previous)
            stored = dict(document)
            self._documents[doc_id] = stored
            self._track(doc_id)
            self._index_add(doc_id, stored)
        return doc_id

    def bulk_load(self, documents: Iterable[dict]) -> int:
        """Insert many documents under one lock hold; returns the count.

        The persistence layer uses this to repopulate a collection
        atomically — readers never observe a half-loaded collection.
        """
        with self._lock:
            count = 0
            for document in documents:
                self.insert(document)
                count += 1
            return count

    def update(self, doc_id: str, changes: dict) -> dict:
        """Shallow-merge changes into an existing document."""
        with self._lock:
            document = self.get(doc_id)
            self._index_remove(doc_id, self._documents[doc_id])
            document.update({k: v for k, v in changes.items() if k != "_id"})
            self._documents[doc_id] = document
            self._index_add(doc_id, document)
            return dict(document)

    def delete(self, doc_id: str) -> None:
        with self._lock:
            if doc_id not in self._documents:
                raise DocumentNotFoundError(self.name, doc_id)
            self._index_remove(doc_id, self._documents[doc_id])
            del self._documents[doc_id]
            del self._positions[doc_id]

    def delete_many(self, query: dict) -> int:
        # Materialise the ids first (the generator walks _documents),
        # then delete with full bookkeeping: positions and index entries
        # go too, exactly as in single-document delete.
        with self._lock:
            doomed = [document["_id"] for document in self._matching(query)]
            for doc_id in doomed:
                self.delete(doc_id)
            return len(doomed)

    # -- reads ---------------------------------------------------------------

    def get(self, doc_id: str) -> dict:
        with self._lock:
            if doc_id not in self._documents:
                raise DocumentNotFoundError(self.name, doc_id)
            return dict(self._documents[doc_id])

    def has(self, doc_id: str) -> bool:
        with self._lock:
            return doc_id in self._documents

    def _id_candidates(self, query: dict):
        """Documents narrowed by an ``_id`` condition, or None.

        ``_documents`` is keyed by ``_id``, so a query that pins the id
        (plain equality, ``$eq`` or ``$in``) is answered by direct hash
        lookups instead of a collection scan.
        """
        if "_id" not in query:
            return None
        condition = query["_id"]
        try:
            if isinstance(condition, dict) and any(
                op.startswith("$") for op in condition
            ):
                if set(condition) == {"$eq"}:
                    wanted = [condition["$eq"]]
                elif set(condition) == {"$in"}:
                    seen: set = set()
                    wanted = []
                    for doc_id in condition["$in"]:
                        if doc_id not in seen:
                            seen.add(doc_id)
                            wanted.append(doc_id)
                else:
                    return None
            else:
                wanted = [condition]
            # Restore collection (insertion) order: a scan yields
            # documents in that order, and narrowing by id must not
            # reorder results behind the caller's back.
            hits = [
                doc_id for doc_id in wanted if doc_id in self._documents
            ]
            hits.sort(key=self._positions.__getitem__)
            return [self._documents[doc_id] for doc_id in hits]
        except TypeError:  # unhashable id in the query: scan as before
            return None

    def _index_candidates(self, query: dict):
        """Documents narrowed by a secondary index, or None.

        The planner picks the first top-level field condition that is a
        plain equality, ``$eq`` or a list-valued ``$in`` over an indexed
        path.  (``$in`` on a non-list is left to the scan path: ``in``
        over a string means substring containment there, which a
        per-element index probe cannot reproduce.)
        """
        for path, condition in query.items():
            if path.startswith("$"):
                continue
            index = self._indexes.get(path)
            if index is None:
                continue
            if isinstance(condition, dict) and any(
                op.startswith("$") for op in condition
            ):
                if "$eq" in condition:
                    values = [condition["$eq"]]
                elif "$in" in condition and isinstance(
                    condition["$in"], (list, tuple)
                ):
                    values = list(condition["$in"])
                else:
                    continue
            else:
                values = [condition]
            hits = sorted(
                index.lookup(values), key=self._positions.__getitem__
            )
            return [self._documents[doc_id] for doc_id in hits]
        return None

    def _plan(self, query: Optional[dict]):
        """(candidate documents, whether evaluation may skip documents).

        Candidates come from the ``_id`` fast path, a secondary index,
        or a full scan — always in collection order, always a superset
        of the true matches.  Routes that skip documents are only taken
        for *safe* queries (see :func:`_query_is_safe`), so a query that
        would raise mid-scan still raises identically.
        """
        if not query:
            return self._documents.values(), True
        if not _query_is_safe(query):
            self.stats["scans"] += 1
            return self._documents.values(), False
        narrowed = self._id_candidates(query)
        if narrowed is not None:
            self.stats["id_lookups"] += 1
            return narrowed, True
        narrowed = self._index_candidates(query)
        if narrowed is not None:
            self.stats["index_lookups"] += 1
            return narrowed, True
        self.stats["scans"] += 1
        return self._documents.values(), True

    def _matching(self, query: Optional[dict]) -> Iterator[dict]:
        """Stored documents matching the filter, in collection order.

        Yields the *stored* dicts without copying — callers that hand
        documents out must copy; callers that only count or collect ids
        must not mutate.
        """
        candidates, __ = self._plan(query)
        if not query:
            yield from candidates
            return
        for document in candidates:
            if matches(document, query):
                yield document

    def find(
        self,
        query: Optional[dict] = None,
        sort_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[dict]:
        """All documents matching the filter (copies)."""
        with self._lock:
            candidates, may_skip = self._plan(query)
            stop_early = may_skip and sort_key is None and limit is not None
            results: List[dict] = []
            for document in candidates:
                if stop_early and len(results) >= limit:
                    break
                if query is None or not query or matches(document, query):
                    results.append(dict(document))
        if sort_key is not None:
            results.sort(key=lambda doc: _find_sort_key(doc, sort_key))
        if limit is not None:
            results = results[:limit]
        return results

    def find_one(self, query: Optional[dict] = None) -> Optional[dict]:
        found = self.find(query, limit=1)
        return found[0] if found else None

    def count(self, query: Optional[dict] = None) -> int:
        """Matching-document count, without materialising result copies."""
        with self._lock:
            if query is None:
                return len(self._documents)
            return sum(1 for __ in self._matching(query))

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._documents)

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)


class DocumentStore:
    """A set of named collections (one MongoDB database)."""

    def __init__(self, name: str = "quarry") -> None:
        self.name = name
        self._lock = new_rlock("DocumentStore._lock")
        self._collections: Dict[str, Collection] = {}  # guarded-by: DocumentStore._lock

    def collection(self, name: str) -> Collection:
        """Get (creating on first use) a collection."""
        with self._lock:
            if name not in self._collections:
                self._collections[name] = Collection(name)
            return self._collections[name]

    def collection_names(self) -> List[str]:
        with self._lock:
            return list(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            self._collections.pop(name, None)

    def snapshot(self) -> Dict[str, Dict[str, list]]:
        """A point-in-time view of every collection, taken atomically.

        Acquires the store lock plus every per-collection lock in a
        stable (name-sorted) order before reading anything, so a
        snapshot concurrent with writing sessions can never persist a
        torn view — e.g. a bus event without the artefact it announces.
        The store lock is held throughout, so collections created
        mid-snapshot wait rather than appear half-included.  Writers
        only ever take a single collection lock, so the ordered
        acquisition cannot deadlock against them.
        """
        with self._lock:
            collections = [
                self._collections[name]
                for name in sorted(self._collections)
            ]
            acquired: List[Collection] = []
            try:
                for collection in collections:
                    collection._lock.acquire()  # lock: Collection._lock
                    acquired.append(collection)
                return {
                    "collections": {
                        collection.name: collection.find()  # calls: Collection.find
                        for collection in collections
                    },
                    "indexes": {
                        collection.name: collection.indexes()
                        for collection in collections
                        if collection.indexes()
                    },
                }
            finally:
                for collection in reversed(acquired):
                    collection._lock.release()  # lock: Collection._lock

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._collections
