"""Suite-wide fixtures: the lock-sanitizer cross-check.

When the suite runs under ``REPRO_LOCKSAN=1`` (CI does this for the
concurrency stress tests), every lock-order edge the runtime sanitizer
observed across the whole session is checked against the static
may-acquire-under graph at exit.  An observed edge the analyzer missed
fails the run: either the code grew a lock nesting the model cannot
see (add a ``# calls:``/``# lock:`` annotation) or the analyzer
regressed.
"""

import pytest

from repro.locks import sanitizing


@pytest.fixture(scope="session", autouse=True)
def locksan_cross_check():
    yield
    if not sanitizing():
        return
    from repro.analysis.concurrency.sanitizer import monitor

    divergences = monitor.verify_against_static()
    assert not divergences, (
        "lock sanitizer observed edges outside the static "
        "may-acquire-under graph:\n" + "\n".join(divergences)
    )
