"""Text serialisation of ontologies.

A compact, line-oriented functional syntax standing in for OWL files:

.. code-block:: text

    ontology tpch "TPC-H sources"
    concept Lineitem label "Line item"
    concept Part parent Item
    attribute Lineitem_l_discount Lineitem decimal label "discount"
    relationship Lineitem_order Lineitem Orders N-1 label "of order"

Lines starting with ``#`` are comments.  Strings use double quotes with
``\"`` escaping.  The format round-trips exactly (see tests).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import OntologyParseError
from repro.expressions.types import ScalarType
from repro.ontology.model import (
    Concept,
    DatatypeProperty,
    Multiplicity,
    ObjectProperty,
    Ontology,
)


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def dumps(ontology: Ontology) -> str:
    """Serialise an ontology to its text representation."""
    lines = [f"ontology {ontology.name} {_quote(ontology.description)}"]
    for concept in ontology.concepts():
        parts = [f"concept {concept.id}"]
        if concept.parent is not None:
            parts.append(f"parent {concept.parent}")
        if concept.label is not None:
            parts.append(f"label {_quote(concept.label)}")
        if concept.description:
            parts.append(f"doc {_quote(concept.description)}")
        lines.append(" ".join(parts))
    for prop in ontology.datatype_properties():
        parts = [f"attribute {prop.id} {prop.concept} {prop.range.value}"]
        if prop.label is not None:
            parts.append(f"label {_quote(prop.label)}")
        if prop.description:
            parts.append(f"doc {_quote(prop.description)}")
        lines.append(" ".join(parts))
    for prop in ontology.object_properties():
        parts = [
            f"relationship {prop.id} {prop.domain} {prop.range} "
            f"{prop.multiplicity.value}"
        ]
        if prop.label is not None:
            parts.append(f"label {_quote(prop.label)}")
        if prop.description:
            parts.append(f"doc {_quote(prop.description)}")
        lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def loads(text: str) -> Ontology:
    """Parse the text representation back into an :class:`Ontology`."""
    ontology: Optional[Ontology] = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = _tokenize_line(line, line_no)
        keyword = tokens[0]
        if keyword == "ontology":
            if ontology is not None:
                raise OntologyParseError(
                    f"line {line_no}: duplicate ontology header"
                )
            ontology = _parse_header(tokens, line_no)
            continue
        if ontology is None:
            raise OntologyParseError(
                f"line {line_no}: expected 'ontology' header before {keyword!r}"
            )
        if keyword == "concept":
            ontology.add_concept(_parse_concept(tokens, line_no))
        elif keyword == "attribute":
            ontology.add_datatype_property(_parse_attribute(tokens, line_no))
        elif keyword == "relationship":
            ontology.add_object_property(_parse_relationship(tokens, line_no))
        else:
            raise OntologyParseError(
                f"line {line_no}: unknown directive {keyword!r}"
            )
    if ontology is None:
        raise OntologyParseError("missing 'ontology' header")
    return ontology


def save(ontology: Ontology, path) -> None:
    """Write an ontology to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(ontology))


def load(path) -> Ontology:
    """Read an ontology from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


# -- line-level parsing ------------------------------------------------------


def _tokenize_line(line: str, line_no: int) -> List[str]:
    """Split a line into bare words and quoted strings.

    Quoted strings keep a leading sentinel so later stages can tell the
    word ``label`` from the string ``"label"``.
    """
    tokens: List[str] = []
    index = 0
    length = len(line)
    while index < length:
        char = line[index]
        if char in " \t":
            index += 1
            continue
        if char == '"':
            value, index = _read_quoted(line, index, line_no)
            tokens.append("\0" + value)
            continue
        start = index
        while index < length and line[index] not in ' \t"':
            index += 1
        tokens.append(line[start:index])
    return tokens


def _read_quoted(line: str, start: int, line_no: int) -> Tuple[str, int]:
    index = start + 1
    pieces: List[str] = []
    while index < len(line):
        char = line[index]
        if char == "\\" and index + 1 < len(line):
            pieces.append(line[index + 1])
            index += 2
            continue
        if char == '"':
            return "".join(pieces), index + 1
        pieces.append(char)
        index += 1
    raise OntologyParseError(f"line {line_no}: unterminated string")


def _string_token(token: str, line_no: int) -> str:
    if not token.startswith("\0"):
        raise OntologyParseError(f"line {line_no}: expected a quoted string")
    return token[1:]


def _parse_options(tokens: List[str], line_no: int) -> dict:
    """Parse trailing ``parent X``, ``label "..."``, ``doc "..."`` pairs."""
    options = {}
    index = 0
    while index < len(tokens):
        key = tokens[index]
        if key not in ("parent", "label", "doc"):
            raise OntologyParseError(
                f"line {line_no}: unexpected token {key!r}"
            )
        if index + 1 >= len(tokens):
            raise OntologyParseError(f"line {line_no}: {key} needs a value")
        value = tokens[index + 1]
        if key in ("label", "doc"):
            value = _string_token(value, line_no)
        options[key] = value
        index += 2
    return options


def _parse_header(tokens: List[str], line_no: int) -> Ontology:
    if len(tokens) < 2:
        raise OntologyParseError(f"line {line_no}: ontology header needs a name")
    description = ""
    if len(tokens) >= 3:
        description = _string_token(tokens[2], line_no)
    return Ontology(name=tokens[1], description=description)


def _parse_concept(tokens: List[str], line_no: int) -> Concept:
    if len(tokens) < 2:
        raise OntologyParseError(f"line {line_no}: concept needs an id")
    options = _parse_options(tokens[2:], line_no)
    return Concept(
        id=tokens[1],
        parent=options.get("parent"),
        label=options.get("label"),
        description=options.get("doc", ""),
    )


def _parse_attribute(tokens: List[str], line_no: int) -> DatatypeProperty:
    if len(tokens) < 4:
        raise OntologyParseError(
            f"line {line_no}: attribute needs id, concept and type"
        )
    try:
        scalar_type = ScalarType(tokens[3])
    except ValueError:
        raise OntologyParseError(
            f"line {line_no}: unknown scalar type {tokens[3]!r}"
        ) from None
    options = _parse_options(tokens[4:], line_no)
    return DatatypeProperty(
        id=tokens[1],
        concept=tokens[2],
        range=scalar_type,
        label=options.get("label"),
        description=options.get("doc", ""),
    )


def _parse_relationship(tokens: List[str], line_no: int) -> ObjectProperty:
    if len(tokens) < 5:
        raise OntologyParseError(
            f"line {line_no}: relationship needs id, domain, range, multiplicity"
        )
    try:
        multiplicity = Multiplicity(tokens[4])
    except ValueError:
        raise OntologyParseError(
            f"line {line_no}: unknown multiplicity {tokens[4]!r}"
        ) from None
    options = _parse_options(tokens[5:], line_no)
    return ObjectProperty(
        id=tokens[1],
        domain=tokens[2],
        range=tokens[3],
        multiplicity=multiplicity,
        label=options.get("label"),
        description=options.get("doc", ""),
    )
