"""Lint rules over multidimensional schemas (``QRY4xx``).

These mirror the MD integrity constraints of
:mod:`repro.mdmodel.constraints` — which stays the deployment-time
enforcement point — but report through the shared diagnostics framework
with stable codes, and add checks that need context the constraint
checker does not have (ontology provenance for to-one reachability,
cross-level attribute duplication).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.diagnostics import Diagnostic, Severity, diag, rule
from repro.errors import QuarryError
from repro.mdmodel.model import Additivity, AggregationFunction

#: Distributive aggregation functions: safe to roll up from
#: pre-aggregated partials without auxiliary columns.
_DISTRIBUTIVE = {
    AggregationFunction.SUM,
    AggregationFunction.MIN,
    AggregationFunction.MAX,
    AggregationFunction.COUNT,
}

#: Aggregations that stay meaningful for non-additive measures.
_ORDER_SAFE = {
    AggregationFunction.MIN,
    AggregationFunction.MAX,
    AggregationFunction.COUNT,
}


@rule("QRY401", "dimension has no levels", "md", Severity.ERROR)
def _no_levels(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY401",
            f"dimension {dimension.name!r} has no levels",
            node=dimension.name,
            hint="give the dimension at least one level or drop it",
        )
        for dimension in context.schema.dimensions.values()
        if not dimension.levels
    ]


@rule("QRY402", "dimension has no hierarchies", "md", Severity.ERROR)
def _no_hierarchies(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY402",
            f"dimension {dimension.name!r} has no hierarchies",
            node=dimension.name,
            hint="declare a hierarchy over the levels",
        )
        for dimension in context.schema.dimensions.values()
        if dimension.levels and not dimension.hierarchies
    ]


@rule("QRY403", "hierarchy references unknown level", "md", Severity.ERROR)
def _unknown_hierarchy_level(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        for hierarchy in dimension.hierarchies:
            for level_name in hierarchy.levels:
                if level_name not in dimension.levels:
                    out.append(
                        diag(
                            "QRY403",
                            f"hierarchy {hierarchy.name!r} of dimension "
                            f"{dimension.name!r} references unknown level "
                            f"{level_name!r}",
                            node=dimension.name,
                            attribute=level_name,
                        )
                    )
    return out


@rule("QRY404", "level is in no hierarchy", "md", Severity.WARNING)
def _orphan_level(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        covered = {
            level_name
            for hierarchy in dimension.hierarchies
            for level_name in hierarchy.levels
        }
        for level_name in sorted(set(dimension.levels) - covered):
            out.append(
                diag(
                    "QRY404",
                    f"level {level_name!r} of dimension {dimension.name!r} "
                    f"is in no hierarchy (unreachable for roll-up)",
                    node=dimension.name,
                    attribute=level_name,
                    hint="add the level to a hierarchy or remove it",
                )
            )
    return out


@rule("QRY405", "level has no attributes", "md", Severity.ERROR)
def _empty_level(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        for level in dimension.levels.values():
            if not level.attributes:
                out.append(
                    diag(
                        "QRY405",
                        f"level {level.name!r} of dimension "
                        f"{dimension.name!r} has no attributes",
                        node=dimension.name,
                        attribute=level.name,
                    )
                )
    return out


@rule("QRY406", "duplicate attribute across levels", "md", Severity.WARNING)
def _duplicate_attributes(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        owners: Dict[str, str] = {}
        for level in dimension.levels.values():
            seen_here = set()
            for attribute in level.attributes:
                name = attribute.name
                if name in seen_here:
                    out.append(
                        diag(
                            "QRY406",
                            f"level {level.name!r} of dimension "
                            f"{dimension.name!r} declares attribute "
                            f"{name!r} twice",
                            node=dimension.name,
                            attribute=name,
                        )
                    )
                    continue
                seen_here.add(name)
                owner = owners.get(name)
                if owner is not None:
                    out.append(
                        diag(
                            "QRY406",
                            f"attribute {name!r} appears in both levels "
                            f"{owner!r} and {level.name!r} of dimension "
                            f"{dimension.name!r}",
                            node=dimension.name,
                            attribute=name,
                            hint="rename one of the attributes; duplicated "
                            "names make roll-up results ambiguous",
                        )
                    )
                else:
                    owners[name] = level.name
    return out


@rule("QRY407", "fact has no measures", "md", Severity.ERROR)
def _no_measures(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY407",
            f"fact {fact.name!r} has no measures",
            node=fact.name,
            hint="a fact needs at least one measure to be analysable",
        )
        for fact in context.schema.facts.values()
        if not fact.measures
    ]


@rule("QRY408", "fact links no dimensions", "md", Severity.ERROR)
def _no_links(context) -> Iterable[Diagnostic]:
    return [
        diag(
            "QRY408",
            f"fact {fact.name!r} links no dimensions",
            node=fact.name,
            hint="an unlinked fact cannot be sliced or rolled up",
        )
        for fact in context.schema.facts.values()
        if not fact.links
    ]


@rule("QRY409", "broken dimension link", "md", Severity.ERROR)
def _broken_links(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for fact in context.schema.facts.values():
        seen = set()
        for link in fact.links:
            if link.dimension in seen:
                out.append(
                    diag(
                        "QRY409",
                        f"fact {fact.name!r} links dimension "
                        f"{link.dimension!r} twice",
                        node=fact.name,
                        attribute=link.dimension,
                    )
                )
            seen.add(link.dimension)
            if not context.schema.has_dimension(link.dimension):
                out.append(
                    diag(
                        "QRY409",
                        f"fact {fact.name!r} links unknown dimension "
                        f"{link.dimension!r}",
                        node=fact.name,
                        attribute=link.dimension,
                    )
                )
                continue
            dimension = context.schema.dimension(link.dimension)
            if not dimension.has_level(link.level):
                out.append(
                    diag(
                        "QRY409",
                        f"fact {fact.name!r} links dimension "
                        f"{link.dimension!r} at unknown level {link.level!r}",
                        node=fact.name,
                        attribute=link.dimension,
                    )
                )
    return out


@rule("QRY410", "fact linked at non-base level", "md", Severity.WARNING)
def _non_base_link(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for fact in context.schema.facts.values():
        for link in fact.links:
            if not context.schema.has_dimension(link.dimension):
                continue
            dimension = context.schema.dimension(link.dimension)
            if not dimension.has_level(link.level):
                continue
            if not dimension.hierarchies or link.level in dimension.base_levels():
                continue
            finer_exists = any(
                dimension.rolls_up(other, link.level)
                for other in dimension.levels
                if other != link.level
            )
            if finer_exists:
                out.append(
                    diag(
                        "QRY410",
                        f"fact {fact.name!r} links {link.dimension!r} at "
                        f"non-base level {link.level!r}; finer levels "
                        f"cannot be queried",
                        node=fact.name,
                        attribute=link.dimension,
                        hint="link at the hierarchy's base level",
                    )
                )
    return out


@rule("QRY411", "aggregation incompatible with additivity", "md", Severity.ERROR)
def _additivity(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for fact in context.schema.facts.values():
        for measure in fact.measures.values():
            if measure.additivity is Additivity.NON_ADDITIVE:
                if measure.aggregation is AggregationFunction.SUM:
                    out.append(
                        diag(
                            "QRY411",
                            f"non-additive measure {measure.name!r} of fact "
                            f"{fact.name!r} cannot be SUMmed "
                            f"(summarizability)",
                            node=fact.name,
                            attribute=measure.name,
                            hint="use MIN/MAX/COUNT or model the measure "
                            "from additive components",
                        )
                    )
                elif measure.aggregation not in _ORDER_SAFE:
                    out.append(
                        diag(
                            "QRY411",
                            f"non-additive measure {measure.name!r} of fact "
                            f"{fact.name!r} aggregated with "
                            f"{measure.aggregation.value}; verify semantics",
                            node=fact.name,
                            attribute=measure.name,
                            severity=Severity.WARNING,
                        )
                    )
            elif measure.additivity is Additivity.SEMI_ADDITIVE:
                if measure.aggregation is AggregationFunction.SUM:
                    out.append(
                        diag(
                            "QRY411",
                            f"semi-additive measure {measure.name!r} of fact "
                            f"{fact.name!r} SUMmed; sums along the "
                            f"restricted dimension are invalid",
                            node=fact.name,
                            attribute=measure.name,
                            severity=Severity.WARNING,
                        )
                    )
    return out


@rule("QRY412", "non-distributive aggregation", "md", Severity.INFO)
def _non_distributive(context) -> Iterable[Diagnostic]:
    out: List[Diagnostic] = []
    for fact in context.schema.facts.values():
        for measure in fact.measures.values():
            if measure.aggregation not in _DISTRIBUTIVE:
                out.append(
                    diag(
                        "QRY412",
                        f"measure {measure.name!r} of fact {fact.name!r} "
                        f"uses non-distributive "
                        f"{measure.aggregation.value}; pre-aggregated "
                        f"roll-ups must keep auxiliary counts",
                        node=fact.name,
                        attribute=measure.name,
                    )
                )
    return out


@rule("QRY413", "dimension unreachable over to-one paths", "md", Severity.WARNING)
def _to_one_reachability(context) -> Iterable[Diagnostic]:
    """A linked dimension whose level concept the fact's concept cannot
    reach over functional (to-one) ontology properties.

    Runs only when an ontology graph is attached and both ends carry
    concept provenance; quiet otherwise.
    """
    graph = context.ontology_graph
    if graph is None:
        return []
    out: List[Diagnostic] = []
    for fact in context.schema.facts.values():
        if fact.concept is None:
            continue
        for link in fact.links:
            if not context.schema.has_dimension(link.dimension):
                continue
            dimension = context.schema.dimension(link.dimension)
            if not dimension.has_level(link.level):
                continue
            concept = dimension.levels[link.level].concept
            if concept is None:
                continue
            try:
                path = graph.to_one_path(fact.concept, concept)
            except QuarryError:
                continue  # unknown concept: provenance is stale, stay quiet
            if path is None:
                out.append(
                    diag(
                        "QRY413",
                        f"fact {fact.name!r} (concept {fact.concept!r}) has "
                        f"no to-one path to level {link.level!r} of "
                        f"dimension {link.dimension!r} (concept "
                        f"{concept!r}); each fact instance may map to "
                        f"many dimension members",
                        node=fact.name,
                        attribute=link.dimension,
                        hint="check the ontology's functional properties "
                        "or the dimension's grain",
                    )
                )
    return out
