"""The differential oracle: what makes a trial pass or fail.

A flow trial passes when

* ``Executor(mode="columnar")`` and ``Executor(mode="legacy")`` load
  the same rows *in the same order* into every target table — or raise
  the same error (``TypeName: message``), and
* the flow survives an xLM round-trip: ``dumps(loads(dumps(flow)))``
  is byte-identical and the reloaded flow re-executes to the same
  outcome.

A query trial passes when ``Collection.find``/``count`` agree with the
naive reference over the same documents.

Row canonicalisation is ``repr``-based rather than value-based on
purpose: ``0 == False == 0.0`` in Python, so a value-level comparison
would silently excuse an engine that turns ``False`` into ``0``; the
``repr`` keeps the type visible.  It also tolerates unhashable values,
which :class:`repro.fuzz.datagen.LooseDatabase` lets through.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.executor import Executor
from repro.fuzz.datagen import LooseDatabase
from repro.fuzz.flowgen import FlowTrial
from repro.fuzz.querygen import (
    QueryTrial,
    reference_count,
    reference_find,
)
from repro.xformats import xlm

Outcome = Tuple[str, object]


def canonical_rows(rows) -> List[str]:
    """An order-sensitive, type-strict fingerprint of a loaded table.

    Both engine modes promise fully deterministic row order (stable
    NULLs-first sorts, insertion-ordered groups, first-occurrence
    distinct), so the oracle compares ordered lists, not multisets —
    an order bug in either mode is a real divergence.
    """
    return [repr(sorted(row.items())) for row in rows]


def execute_flow(mode: str, trial: FlowTrial, flow=None) -> Outcome:
    """Run the trial's flow (or a substitute) on a fresh database.

    Returns ``("ok", {target: canonical rows})`` or
    ``("error", "TypeName: message")`` — both engines must produce the
    *same* outcome, errors included.
    """
    database = LooseDatabase.from_specs(trial.tables)
    executor = Executor(database, mode=mode)
    flow = flow if flow is not None else trial.flow
    try:
        executor.execute(flow)
    except Exception as exc:  # error parity is part of the contract
        return ("error", f"{type(exc).__name__}: {exc}")
    targets = sorted(
        {node.table for node in flow.nodes() if node.kind == "Loader"}
    )
    return (
        "ok",
        {target: canonical_rows(database.scan(target).rows) for target in targets},
    )


def _describe_outcomes(label: str, left: Outcome, right: Outcome) -> str:
    left_kind, left_value = left
    right_kind, right_value = right
    if left_kind != right_kind or left_kind == "error":
        return (
            f"{label}: legacy -> {left_kind} ({left_value!r}), "
            f"columnar -> {right_kind} ({right_value!r})"
        )
    for target in sorted(left_value):
        if left_value[target] != right_value.get(target):
            return (
                f"{label}: table {target!r}: legacy "
                f"{left_value[target][:3]!r} ({len(left_value[target])} rows) "
                f"vs columnar {right_value.get(target, [])[:3]!r} "
                f"({len(right_value.get(target, []))} rows)"
            )
    return f"{label}: outcomes differ"


def check_flow_trial(trial: FlowTrial) -> Optional[str]:
    """``None`` when the trial passes, else a categorised description.

    The category is the text before the first colon; the shrinker uses
    it to keep a reduced trial failing *for the same reason*.
    """
    legacy = execute_flow("legacy", trial)
    columnar = execute_flow("columnar", trial)
    if legacy != columnar:
        return _describe_outcomes("mode-divergence", legacy, columnar)

    text = xlm.dumps(trial.flow)
    try:
        reloaded = xlm.loads(text)
        text_again = xlm.dumps(reloaded)
    except Exception as exc:
        return f"roundtrip: xLM reload failed: {type(exc).__name__}: {exc}"
    if text_again != text:
        return "roundtrip: dumps(loads(dumps(flow))) is not byte-identical"
    replayed = execute_flow("columnar", trial, flow=reloaded)
    if replayed != columnar:
        return _describe_outcomes("roundtrip", columnar, replayed)
    return None


def _query_outcome(compute) -> Outcome:
    try:
        return ("ok", compute())
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}")


def _canonical_documents(documents: List[dict]) -> List[str]:
    # Order-SENSITIVE: find() promises collection order (or sort order).
    return [repr(sorted(document.items())) for document in documents]


def check_query_trial(trial: QueryTrial) -> Optional[str]:
    """Differential check of the document store against the reference.

    Index declarations are split around the writes: even positions are
    created up front (exercising incremental maintenance on every
    replace), odd positions after (exercising the backfill path).

    The trial runs in its session's namespaced collection of a shared
    :class:`~repro.repository.documents.DocumentStore`; decoy documents
    are written into *other* sessions' collections first and checked
    untouched afterwards — session isolation is part of the contract.
    """
    from repro.repository import DocumentStore
    from repro.repository.metadata import namespaced

    store = DocumentStore()
    for session, documents in sorted(trial.decoys.items()):
        decoy_collection = store.collection(namespaced("fuzz", session))
        for document in documents:
            decoy_collection.replace(document)
    collection = store.collection(namespaced("fuzz", trial.session))
    for position, path in enumerate(trial.indexes):
        if position % 2 == 0:
            collection.create_index(path)
    for document in trial.documents:
        collection.replace(document)
    for position, path in enumerate(trial.indexes):
        if position % 2 == 1:
            collection.create_index(path)

    actual = _query_outcome(
        lambda: _canonical_documents(
            collection.find(trial.query, trial.sort_key, trial.limit)
        )
    )
    expected = _query_outcome(
        lambda: _canonical_documents(
            reference_find(
                trial.documents, trial.query, trial.sort_key, trial.limit
            )
        )
    )
    if actual != expected:
        return (
            f"query-divergence: find() -> {actual!r}, reference -> "
            f"{expected!r} (query={trial.query!r}, "
            f"sort_key={trial.sort_key!r}, limit={trial.limit!r})"
        )

    actual_count = _query_outcome(lambda: collection.count(trial.query))
    expected_count = _query_outcome(
        lambda: reference_count(trial.documents, trial.query)
    )
    if actual_count != expected_count:
        return (
            f"query-divergence: count() -> {actual_count!r}, reference -> "
            f"{expected_count!r} (query={trial.query!r})"
        )

    for session, documents in sorted(trial.decoys.items()):
        observed = _query_outcome(
            lambda s=session: _canonical_documents(
                store.collection(namespaced("fuzz", s)).find()
            )
        )
        untouched = _query_outcome(
            lambda d=documents: _canonical_documents(reference_find(d))
        )
        if observed != untouched:
            return (
                f"session-leakage: session {session!r} collection -> "
                f"{observed!r}, expected {untouched!r} "
                f"(trial session {trial.session!r})"
            )
    return None
