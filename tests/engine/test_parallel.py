"""The partitioned parallel engine against its serial reference.

Every test forces chunking (``parallel_row_threshold`` far below the
data size) and compares ``mode="parallel"`` against ``mode="columnar"``
— the contract is byte-identical results: row order, NULL placement,
group order, float bits and error messages all included.
"""

import random

import pytest

from repro.engine import Database, Executor, TableDef
from repro.engine.parallel import chunk_ranges
from repro.errors import ExecutionError
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    EtlFlow,
    Join,
    JoinType,
    Loader,
    Projection,
    Selection,
    Sort,
)
from repro.expressions import ScalarType

from tests.etlmodel.conftest import build_revenue_flow

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL

ROWS = 503  # odd on purpose: chunks must handle uneven splits


def make_database(rows: int = ROWS) -> Database:
    rng = random.Random(11)
    database = Database()
    database.create_table(
        TableDef(
            "facts",
            {"k": INT, "fk": INT, "cat": STR, "amount": DEC},
        )
    )
    database.insert_many(
        "facts",
        [
            {
                "k": index,
                "fk": rng.randrange(40) if rng.random() > 0.1 else None,
                "cat": rng.choice(["a", "b", "c", None]),
                "amount": (
                    rng.uniform(-50, 50) if rng.random() > 0.1 else None
                ),
            }
            for index in range(rows)
        ],
    )
    database.create_table(TableDef("dims", {"dk": INT, "label": STR}))
    database.insert_many(
        "dims",
        # Duplicate keys included: the join must fan out identically.
        [{"dk": value % 30, "label": f"L{value}"} for value in range(35)],
    )
    return database


def run_modes(build_flow, make_db=make_database, workers=3):
    """Execute a flow in both modes on fresh twin databases."""
    outcomes = []
    for mode in ("columnar", "parallel"):
        database = make_db()
        executor = Executor(
            database, mode=mode, workers=workers, parallel_row_threshold=2
        )
        try:
            with executor:
                executor.execute(build_flow())
        except ExecutionError as exc:
            outcomes.append(("error", str(exc)))
            continue
        relation = database.scan("out")
        outcomes.append(
            (
                "ok",
                relation.attribute_names(),
                [sorted(row.items()) for row in relation.rows],
            )
        )
    return outcomes


def assert_identical(build_flow, make_db=make_database, workers=3):
    columnar, parallel = run_modes(build_flow, make_db, workers)
    assert parallel == columnar


class TestChunkRanges:
    def test_even_and_uneven_splits(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]
        assert chunk_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_degenerate_inputs_stay_single_range(self):
        assert chunk_ranges(10, 1) == [(0, 10)]
        assert chunk_ranges(1, 4) == [(0, 1)]
        assert chunk_ranges(0, 4) == [(0, 0)]

    def test_more_workers_than_rows(self):
        ranges = chunk_ranges(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]


class TestOperatorEquivalence:
    def test_filter_chain_derive_projection(self):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Selection("sel", predicate="amount > 0"),
                DerivedAttribute(
                    "der", output="double", expression="amount * 2"
                ),
                Projection("proj", columns=("k", "cat", "double")),
                Loader("load", table="out"),
            )
            return flow

        assert_identical(build)

    def test_join_with_duplicates_and_null_keys(self):
        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("facts", table="facts"))
            flow.add(Datastore("dims", table="dims"))
            flow.add(
                Join(
                    "join", left_keys=("fk",), right_keys=("dk",)
                )
            )
            flow.connect("facts", "join")
            flow.connect("dims", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        assert_identical(build)

    def test_left_outer_join_null_placement(self):
        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("facts", table="facts"))
            flow.add(Datastore("dims", table="dims"))
            flow.add(
                Join(
                    "join",
                    left_keys=("fk",),
                    right_keys=("dk",),
                    join_type=JoinType.LEFT,
                )
            )
            flow.connect("facts", "join")
            flow.connect("dims", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        assert_identical(build)

    def test_multi_key_join(self):
        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("left", table="facts"))
            flow.add(
                Projection("lp", columns=("k", "fk", "cat"))
            )
            flow.connect("left", "lp")
            flow.add(Datastore("right", table="facts"))
            flow.add(
                Projection("rp", columns=("fk", "cat", "amount"))
            )
            flow.connect("right", "rp")
            flow.add(
                Join(
                    "join",
                    left_keys=("fk", "cat"),
                    right_keys=("fk", "cat"),
                )
            )
            flow.connect("lp", "join")
            flow.connect("rp", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        assert_identical(build)

    def test_aggregation_group_order_and_float_bits(self):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Aggregation(
                    "agg",
                    group_by=("cat", "fk"),
                    aggregates=(
                        AggregationSpec("SUM", "amount", "total"),
                        AggregationSpec("AVERAGE", "amount", "mean"),
                        AggregationSpec("COUNT", "k", "n"),
                        AggregationSpec("MIN", "k", "low"),
                    ),
                ),
                Loader("load", table="out"),
            )
            return flow

        # Exact equality on unrounded float sums/means: the merge must
        # fold the serial value sequences, not partial per-chunk sums.
        assert_identical(build)

    def test_global_aggregate_single_row(self):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Aggregation(
                    "agg",
                    group_by=(),
                    aggregates=(
                        AggregationSpec("SUM", "amount", "total"),
                    ),
                ),
                Loader("load", table="out"),
            )
            return flow

        assert_identical(build)

    def test_sort_stability_and_distinct(self):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Projection("proj", columns=("cat", "fk")),
                Distinct("dis"),
                Sort("sort", keys=("cat",)),
                Loader("load", table="out"),
            )
            return flow

        assert_identical(build)

    def test_revenue_flow_end_to_end(self):
        from repro.sources import tpch

        def run(mode):
            database = Database("tpch")
            database.load_source(
                tpch.schema(), tpch.generate(scale_factor=0.3, seed=77)
            )
            executor = Executor(
                database, mode=mode, workers=4, parallel_row_threshold=64
            )
            with executor:
                executor.execute(build_revenue_flow())
            target = database.scan("fact_table_revenue")
            return [sorted(row.items()) for row in target.rows]

        assert run("parallel") == run("columnar")


class TestErrorParity:
    def test_chain_error_matches_serial(self):
        # amount is NULL in some rows; "amount + 'x'" fails identically
        # row-for-row in both modes (parallel falls back to the serial
        # per-node path to reproduce the exact failure).
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Selection("sel", predicate="amount > 0"),
                DerivedAttribute(
                    "der", output="bad", expression="amount + cat"
                ),
                Loader("load", table="out"),
            )
            return flow

        columnar, parallel = run_modes(build)
        assert parallel == columnar

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown executor mode"):
            Executor(Database(), mode="threads")
        with pytest.raises(ValueError, match="workers"):
            Executor(Database(), mode="parallel", workers=0)


class TestSerialFallback:
    def test_small_inputs_stay_serial_zero_copy(self):
        database = make_database(rows=10)
        executor = Executor(
            database, mode="parallel", workers=4,
            parallel_row_threshold=4096,
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="k >= 0"),
            Loader("load", table="out"),
        )
        with executor:
            executor.execute(flow, keep_intermediate=True)
            # All rows kept: the serial filter returns its input
            # relation unchanged (zero copy), and below the threshold
            # the parallel engine must take that exact path.
            assert (
                executor.relations["sel"] is executor.relations["src"]
            )
        assert executor._pool_instance is None  # never spun up

    def test_pool_is_reused_and_closeable(self):
        database = make_database(rows=50)
        executor = Executor(
            database, mode="parallel", workers=2, parallel_row_threshold=2
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="k >= 0"),
            Loader("load", table="out"),
        )
        executor.execute(flow)
        pool = executor._pool_instance
        assert pool is not None
        flow2 = EtlFlow("t2")
        flow2.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="k < 10"),
            Loader("load", table="out2"),
        )
        executor.execute(flow2)
        assert executor._pool_instance is pool
        executor.close()
        assert executor._pool_instance is None


class TestStatsParity:
    def test_filter_counts_survive_chunk_merge(self):
        database = make_database()
        executor = Executor(
            database, mode="parallel", workers=3, parallel_row_threshold=2
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="amount > 0"),
            Projection("proj", columns=("k", "amount")),
            Loader("load", table="out"),
        )
        with executor:
            stats = executor.execute(flow)
        reference = Executor(make_database(), mode="columnar").execute(flow)
        for name in ("sel", "proj", "load"):
            assert (
                stats.node(name).output_rows
                == reference.node(name).output_rows
            )
