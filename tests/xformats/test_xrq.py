"""Unit tests for the xRQ format."""

import pytest

from repro.core.requirements import RequirementBuilder
from repro.errors import XrqFormatError
from repro.mdmodel import AggregationFunction
from repro.xformats import xrq

from tests.core.conftest import build_revenue_requirement


class TestSerialisation:
    def test_figure4_shape(self):
        text = xrq.dumps(build_revenue_requirement())
        assert '<cube id="IR1">' in text
        assert '<concept id="Part_p_name" />' in text
        assert "<function>Lineitem_l_extendedprice" in text
        assert "<operator>=</operator>" in text
        assert "<value" in text and "SPAIN" in text
        assert '<dimension refID="Part_p_name" />' in text
        assert "<function>AVERAGE</function>" in text

    def test_roundtrip(self):
        requirement = build_revenue_requirement()
        parsed = xrq.loads(xrq.dumps(requirement))
        assert parsed.id == requirement.id
        assert parsed.description == requirement.description
        assert parsed.dimensions == requirement.dimensions
        assert parsed.measures == requirement.measures
        assert parsed.aggregations == requirement.aggregations
        assert [s.predicate for s in parsed.slicers] == [
            "Nation_n_name = 'SPAIN'"
        ]

    def test_roundtrip_is_stable(self):
        text = xrq.dumps(build_revenue_requirement())
        assert xrq.dumps(xrq.loads(text)) == text

    def test_complex_slicer_uses_predicate_element(self):
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .where("Lineitem_l_quantity > 5 and Lineitem_l_tax < 0.05")
            .build()
        )
        text = xrq.dumps(requirement)
        assert "<predicate>" in text
        parsed = xrq.loads(text)
        assert parsed.slicers[0].predicate == (
            "Lineitem_l_quantity > 5 and Lineitem_l_tax < 0.05"
        )

    def test_numeric_and_date_slicer_values(self):

        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .where("Lineitem_l_quantity >= 10")
            .where("Lineitem_l_shipdate < date '1995-01-01'")
            .build()
        )
        parsed = xrq.loads(xrq.dumps(requirement))
        assert parsed.slicers[0].predicate == "Lineitem_l_quantity >= 10"
        assert parsed.slicers[1].predicate == (
            "Lineitem_l_shipdate < date '1995-01-01'"
        )

    def test_string_value_with_quote(self):
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .where("Customer_c_name = 'O''Brien'")
            .build()
        )
        parsed = xrq.loads(xrq.dumps(requirement))
        assert parsed.slicers[0].predicate == "Customer_c_name = 'O''Brien'"


class TestParsingErrors:
    def test_not_xml(self):
        with pytest.raises(XrqFormatError):
            xrq.loads("this is not xml")

    def test_wrong_root(self):
        with pytest.raises(XrqFormatError):
            xrq.loads("<notacube/>")

    def test_missing_id(self):
        with pytest.raises(XrqFormatError):
            xrq.loads("<cube/>")

    def test_measure_without_function(self):
        text = (
            '<cube id="R"><measures><concept id="m"/></measures></cube>'
        )
        with pytest.raises(XrqFormatError):
            xrq.loads(text)

    def test_bad_aggregation_order(self):
        text = (
            '<cube id="R"><aggregations>'
            '<aggregation order="first">'
            '<dimension refID="d"/><measure refID="m"/>'
            "<function>SUM</function></aggregation>"
            "</aggregations></cube>"
        )
        with pytest.raises(XrqFormatError):
            xrq.loads(text)

    def test_bad_aggregation_function(self):
        text = (
            '<cube id="R"><aggregations>'
            '<aggregation order="1">'
            '<dimension refID="d"/><measure refID="m"/>'
            "<function>MEDIAN</function></aggregation>"
            "</aggregations></cube>"
        )
        with pytest.raises(XrqFormatError):
            xrq.loads(text)

    def test_unknown_slicer_element(self):
        text = '<cube id="R"><slicers><bogus/></slicers></cube>'
        with pytest.raises(XrqFormatError):
            xrq.loads(text)

    def test_unknown_value_type(self):
        text = (
            '<cube id="R"><slicers><comparison>'
            '<concept id="x"/><operator>=</operator>'
            '<value type="blob">x</value>'
            "</comparison></slicers></cube>"
        )
        with pytest.raises(XrqFormatError):
            xrq.loads(text)

    def test_minimal_document_parses(self):
        requirement = xrq.loads('<cube id="R"/>')
        assert requirement.id == "R"
        assert requirement.measures == []

    def test_aggregation_function_spellings(self):
        text = (
            '<cube id="R"><aggregations>'
            '<aggregation order="1">'
            '<dimension refID="d"/><measure refID="m"/>'
            "<function>avg</function></aggregation>"
            "</aggregations></cube>"
        )
        parsed = xrq.loads(text)
        assert parsed.aggregations[0].function is AggregationFunction.AVG
