"""AST node classes for the expression language.

Nodes are immutable dataclasses.  Each node renders back to concrete
syntax via :func:`to_text` / ``str()``, which the parsers and serialisers
rely on for round-tripping expressions through xRQ/xLM documents.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Tuple, Union

#: Operator precedence used when rendering (must mirror the parser).
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "in": 4,
    "=": 4,
    "!=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


@dataclass(frozen=True)
class Expression:
    """Base class for all expression nodes."""

    def attributes(self) -> frozenset:
        """The set of attribute names referenced by this expression."""
        raise NotImplementedError

    def precedence(self) -> int:
        """Binding strength used when rendering back to text."""
        return 10

    def __str__(self) -> str:
        return to_text(self)


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, boolean, date or NULL."""

    value: Union[int, float, str, bool, datetime.date, None]

    def attributes(self) -> frozenset:
        return frozenset()


@dataclass(frozen=True)
class Attribute(Expression):
    """A reference to a named attribute of the current row."""

    name: str

    def attributes(self) -> frozenset:
        return frozenset({self.name})


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary operation: ``-x`` or ``not x``."""

    operator: str
    operand: Expression

    def attributes(self) -> frozenset:
        return self.operand.attributes()

    def precedence(self) -> int:
        # Prefix minus binds tighter than multiplication (the parser reads
        # its operand with binding power 6); NOT sits just below comparison.
        return 6 if self.operator == "-" else 3


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary operation: arithmetic, comparison, logical, or ``in``."""

    operator: str
    left: Expression
    right: Expression

    def attributes(self) -> frozenset:
        return self.left.attributes() | self.right.attributes()

    def precedence(self) -> int:
        return _PRECEDENCE[self.operator]


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A call to a built-in scalar function, e.g. ``year(o_orderdate)``."""

    name: str
    arguments: Tuple[Expression, ...] = field(default_factory=tuple)

    def attributes(self) -> frozenset:
        names: frozenset = frozenset()
        for argument in self.arguments:
            names |= argument.attributes()
        return names


@dataclass(frozen=True)
class ValueList(Expression):
    """A parenthesised list of literals, the right operand of ``in``."""

    items: Tuple[Expression, ...]

    def attributes(self) -> frozenset:
        names: frozenset = frozenset()
        for item in self.items:
            names |= item.attributes()
        return names


def _render_literal(value) -> str:
    """Render a literal value back to concrete syntax."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"date '{value.isoformat()}'"
    return repr(value)


def to_text(node: Expression) -> str:
    """Render an AST back to parseable concrete syntax."""
    if isinstance(node, Literal):
        return _render_literal(node.value)
    if isinstance(node, Attribute):
        return node.name
    if isinstance(node, UnaryOp):
        inner = to_text(node.operand)
        # <= so that -(a * b) and not (not x) keep their structure.
        if node.operand.precedence() <= node.precedence():
            inner = f"({inner})"
        if node.operator == "not":
            return f"not {inner}"
        return f"{node.operator}{inner}"
    if isinstance(node, BinaryOp):
        left = to_text(node.left)
        right = to_text(node.right)
        if node.left.precedence() < node.precedence():
            left = f"({left})"
        # Right side needs parentheses at equal precedence too, because
        # rendering is left-associative.
        if node.right.precedence() <= node.precedence() and not isinstance(
            node.right, ValueList
        ):
            right = f"({right})"
        return f"{left} {node.operator} {right}"
    if isinstance(node, FunctionCall):
        arguments = ", ".join(to_text(argument) for argument in node.arguments)
        return f"{node.name}({arguments})"
    if isinstance(node, ValueList):
        items = ", ".join(to_text(item) for item in node.items)
        return f"({items})"
    raise TypeError(f"cannot render node {node!r}")


def substitute(node: Expression, renaming: dict) -> Expression:
    """Return a copy of the expression with attributes renamed.

    ``renaming`` maps old attribute names to new ones; attributes not in
    the map are kept.  Used when ETL operations are re-rooted during
    integration and when requirement concepts are bound to source columns.
    """
    if isinstance(node, Literal):
        return node
    if isinstance(node, Attribute):
        return Attribute(renaming.get(node.name, node.name))
    if isinstance(node, UnaryOp):
        return UnaryOp(node.operator, substitute(node.operand, renaming))
    if isinstance(node, BinaryOp):
        return BinaryOp(
            node.operator,
            substitute(node.left, renaming),
            substitute(node.right, renaming),
        )
    if isinstance(node, FunctionCall):
        return FunctionCall(
            node.name,
            tuple(substitute(argument, renaming) for argument in node.arguments),
        )
    if isinstance(node, ValueList):
        return ValueList(tuple(substitute(item, renaming) for item in node.items))
    raise TypeError(f"cannot substitute in node {node!r}")


def conjuncts(node: Expression) -> list:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if isinstance(node, BinaryOp) and node.operator == "and":
        return conjuncts(node.left) + conjuncts(node.right)
    return [node]


def conjoin(predicates: list) -> Expression:
    """Combine predicates with AND; a single predicate is returned as-is."""
    if not predicates:
        raise ValueError("conjoin requires at least one predicate")
    result = predicates[0]
    for predicate in predicates[1:]:
        result = BinaryOp("and", result, predicate)
    return result
