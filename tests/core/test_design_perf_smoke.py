"""Tier-1 smoke test of the design-pipeline benchmark.

Runs ``benchmarks.run_design.run_suite`` at a tiny size and asserts the
equivalence gates pass, plus — via the integration-call counters, not
wall-clock — that the incremental paths have not silently regressed to
full rebuilds.  Keeping this in the default test run means a change
that breaks incrementality fails CI even when it is functionally
correct.
"""

from repro import Quarry
from repro.sources import tpch

from benchmarks._workloads import ROW_COUNTS, requirement_corpus
from benchmarks.run_design import run_suite


class TestBenchmarkSmoke:
    def test_tiny_suite_is_equivalence_clean(self):
        report, mismatches = run_suite(sizes=(4,), rounds=1, headline_size=4)
        assert mismatches == []
        assert report["all_results_identical"]
        assert report["design_sizes"]["4"]["results_identical"]
        assert report["ontology"]["results_identical"]
        assert report["repository"]["results_identical"]

    def test_incremental_paths_stay_sub_linear(self):
        # Counter-based, not timing-based: robust on loaded CI machines.
        report, __ = run_suite(sizes=(4,), rounds=1, headline_size=4)
        at_4 = report["design_sizes"]["4"]
        assert at_4["integrations_per_change"] == 1  # not 4
        assert at_4["integrations_for_remove_last"] == 0


class TestCounterHook:
    def test_add_does_one_integration_not_n(self):
        corpus = requirement_corpus(5)
        quarry = Quarry(
            tpch.ontology(), tpch.schema(), tpch.mappings(),
            row_counts=ROW_COUNTS,
        )
        for requirement in corpus[:4]:
            quarry.add_requirement(requirement)
        before = dict(quarry.integration_counts)
        quarry.add_requirement(corpus[4])
        assert quarry.integration_counts["md"] - before["md"] == 1
        assert quarry.integration_counts["etl"] - before["etl"] == 1
