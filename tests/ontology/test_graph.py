"""Unit tests for ontology graph traversals.

The fixture mirrors the shape of the TPC-H ontology used in the paper's
running example: Lineitem is the transaction concept, with to-one chains
Lineitem -> Orders -> Customer -> Nation -> Region and
Lineitem -> Partsupp -> {Part, Supplier -> Nation}.
"""

import pytest

from repro.expressions import ScalarType
from repro.ontology import OntologyBuilder, OntologyGraph


@pytest.fixture
def graph():
    ontology = (
        OntologyBuilder("mini-tpch")
        .concept("Region")
        .concept("Nation")
        .concept("Customer")
        .concept("Orders")
        .concept("Supplier")
        .concept("Part")
        .concept("Partsupp")
        .concept("Lineitem")
        .attribute("Lineitem_price", "Lineitem", ScalarType.DECIMAL)
        .relationship("nation_region", "Nation", "Region", "N-1")
        .relationship("customer_nation", "Customer", "Nation", "N-1")
        .relationship("orders_customer", "Orders", "Customer", "N-1")
        .relationship("supplier_nation", "Supplier", "Nation", "N-1")
        .relationship("partsupp_part", "Partsupp", "Part", "N-1")
        .relationship("partsupp_supplier", "Partsupp", "Supplier", "N-1")
        .relationship("lineitem_orders", "Lineitem", "Orders", "N-1")
        .relationship("lineitem_partsupp", "Lineitem", "Partsupp", "N-1")
        .build()
    )
    return OntologyGraph(ontology)


class TestNeighbours:
    def test_forward_and_backward_hops(self, graph):
        steps = list(graph.neighbours("Nation"))
        targets = {step.target for step in steps}
        assert targets == {"Region", "Customer", "Supplier"}

    def test_forward_flag(self, graph):
        steps = {step.target: step for step in graph.neighbours("Nation")}
        assert steps["Region"].forward is True
        assert steps["Customer"].forward is False

    def test_to_one_neighbours_exclude_reverse_fk(self, graph):
        targets = {step.target for step in graph.to_one_neighbours("Nation")}
        assert targets == {"Region"}


class TestToOneClosure:
    def test_closure_from_lineitem_reaches_all_dimensions(self, graph):
        closure = graph.to_one_closure("Lineitem")
        assert set(closure) == {
            "Orders",
            "Partsupp",
            "Customer",
            "Part",
            "Supplier",
            "Nation",
            "Region",
        }

    def test_closure_paths_are_shortest(self, graph):
        closure = graph.to_one_closure("Lineitem")
        # Nation is reachable both via Customer (3 hops) and Supplier
        # (3 hops); either way the path must have length 3.
        assert len(closure["Nation"]) == 3
        assert len(closure["Region"]) == 4

    def test_closure_from_leaf_is_small(self, graph):
        assert set(graph.to_one_closure("Region")) == set()
        assert set(graph.to_one_closure("Nation")) == {"Region"}

    def test_to_one_path_direction_matters(self, graph):
        assert graph.to_one_path("Lineitem", "Part") is not None
        assert graph.to_one_path("Part", "Lineitem") is None

    def test_to_one_path_to_self_is_empty(self, graph):
        path = graph.to_one_path("Part", "Part")
        assert path is not None
        assert len(path) == 0

    def test_path_concepts_enumerates_route(self, graph):
        path = graph.to_one_path("Lineitem", "Part")
        assert path.concepts() == ["Lineitem", "Partsupp", "Part"]

    def test_paths_are_to_one(self, graph):
        closure = graph.to_one_closure("Lineitem")
        for path in closure.values():
            assert path.is_to_one(graph.ontology)


class TestShortestPath:
    def test_undirected_path_crosses_fk_direction(self, graph):
        path = graph.shortest_path("Part", "Supplier")
        assert path is not None
        assert path.concepts() == ["Part", "Partsupp", "Supplier"]
        assert not path.is_to_one(graph.ontology)

    def test_unreachable_returns_none(self, graph):
        lonely = (
            OntologyBuilder("lonely").concept("A").concept("B").build()
        )
        lonely_graph = OntologyGraph(lonely)
        assert lonely_graph.shortest_path("A", "B") is None
        assert not lonely_graph.connected("A", "B")

    def test_connected(self, graph):
        assert graph.connected("Region", "Part")

    def test_steiner_tree_paths(self, graph):
        paths = graph.steiner_tree_paths("Lineitem", ["Part", "Nation", "Lineitem"])
        assert set(paths) == {"Part", "Nation"}
        assert paths["Part"].source == "Lineitem"


class TestDegreeSignals:
    def test_fan_in_marks_shared_levels(self, graph):
        # Nation is referenced by Customer and Supplier -> fan-in 2.
        assert graph.fan_in("Nation") == 2
        assert graph.fan_in("Lineitem") == 0

    def test_fan_out_marks_fact_candidates(self, graph):
        assert graph.fan_out("Lineitem") == 2
        assert graph.fan_out("Partsupp") == 2
        assert graph.fan_out("Region") == 0
