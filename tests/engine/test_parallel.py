"""The partitioned parallel engine against its serial reference.

Every test forces chunking (``parallel_row_threshold`` far below the
data size) and compares ``mode="parallel"`` against ``mode="columnar"``
— the contract is byte-identical results: row order, NULL placement,
group order, float bits and error messages all included.  The
equivalence and error-parity suites sweep **both worker pools**
(``thread`` and ``process``): the shared-memory transport and
recompile-in-worker path must not change a single byte.
"""

import os
import random
import sys

import pytest

from repro.engine import Database, Executor, TableDef
from repro.engine.parallel import (
    DEFAULT_PARALLEL_ROW_THRESHOLD,
    DEFAULT_PROCESS_ROW_THRESHOLD,
    chunk_ranges,
    slice_relation,
)
from repro.errors import ExecutionError
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    EtlFlow,
    Join,
    JoinType,
    Loader,
    Projection,
    Selection,
    Sort,
)
from repro.expressions import ScalarType

from tests.etlmodel.conftest import build_revenue_flow

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL

ROWS = 503  # odd on purpose: chunks must handle uneven splits

POOLS = ("thread", "process")


def make_database(rows: int = ROWS) -> Database:
    rng = random.Random(11)
    database = Database()
    database.create_table(
        TableDef(
            "facts",
            {"k": INT, "fk": INT, "cat": STR, "amount": DEC},
        )
    )
    database.insert_many(
        "facts",
        [
            {
                "k": index,
                "fk": rng.randrange(40) if rng.random() > 0.1 else None,
                "cat": rng.choice(["a", "b", "c", None]),
                "amount": (
                    rng.uniform(-50, 50) if rng.random() > 0.1 else None
                ),
            }
            for index in range(rows)
        ],
    )
    database.create_table(TableDef("dims", {"dk": INT, "label": STR}))
    database.insert_many(
        "dims",
        # Duplicate keys included: the join must fan out identically.
        [{"dk": value % 30, "label": f"L{value}"} for value in range(35)],
    )
    return database


def run_modes(build_flow, make_db=make_database, workers=3, pool="thread"):
    """Execute a flow in both modes on fresh twin databases."""
    outcomes = []
    for mode in ("columnar", "parallel"):
        database = make_db()
        executor = Executor(
            database,
            mode=mode,
            workers=workers,
            parallel_row_threshold=2,
            pool=pool,
        )
        try:
            with executor:
                executor.execute(build_flow())
        except ExecutionError as exc:
            outcomes.append(("error", str(exc)))
            continue
        relation = database.scan("out")
        outcomes.append(
            (
                "ok",
                relation.attribute_names(),
                [sorted(row.items()) for row in relation.rows],
            )
        )
    return outcomes


def assert_identical(build_flow, make_db=make_database, workers=3, pool="thread"):
    columnar, parallel = run_modes(build_flow, make_db, workers, pool)
    assert parallel == columnar


class TestChunkRanges:
    def test_even_and_uneven_splits(self):
        assert chunk_ranges(10, 2) == [(0, 5), (5, 10)]
        assert chunk_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_degenerate_inputs_stay_single_range(self):
        assert chunk_ranges(10, 1) == [(0, 10)]
        assert chunk_ranges(1, 4) == [(0, 1)]
        assert chunk_ranges(0, 4) == [(0, 0)]

    def test_more_workers_than_rows(self):
        ranges = chunk_ranges(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]


@pytest.mark.parametrize("pool", POOLS)
class TestOperatorEquivalence:
    def test_filter_chain_derive_projection(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Selection("sel", predicate="amount > 0"),
                DerivedAttribute(
                    "der", output="double", expression="amount * 2"
                ),
                Projection("proj", columns=("k", "cat", "double")),
                Loader("load", table="out"),
            )
            return flow

        assert_identical(build, pool=pool)

    def test_join_with_duplicates_and_null_keys(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("facts", table="facts"))
            flow.add(Datastore("dims", table="dims"))
            flow.add(
                Join(
                    "join", left_keys=("fk",), right_keys=("dk",)
                )
            )
            flow.connect("facts", "join")
            flow.connect("dims", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        assert_identical(build, pool=pool)

    def test_left_outer_join_null_placement(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("facts", table="facts"))
            flow.add(Datastore("dims", table="dims"))
            flow.add(
                Join(
                    "join",
                    left_keys=("fk",),
                    right_keys=("dk",),
                    join_type=JoinType.LEFT,
                )
            )
            flow.connect("facts", "join")
            flow.connect("dims", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        assert_identical(build, pool=pool)

    def test_multi_key_join(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("left", table="facts"))
            flow.add(
                Projection("lp", columns=("k", "fk", "cat"))
            )
            flow.connect("left", "lp")
            flow.add(Datastore("right", table="facts"))
            flow.add(
                Projection("rp", columns=("fk", "cat", "amount"))
            )
            flow.connect("right", "rp")
            flow.add(
                Join(
                    "join",
                    left_keys=("fk", "cat"),
                    right_keys=("fk", "cat"),
                )
            )
            flow.connect("lp", "join")
            flow.connect("rp", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        assert_identical(build, pool=pool)

    def test_aggregation_group_order_and_float_bits(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Aggregation(
                    "agg",
                    group_by=("cat", "fk"),
                    aggregates=(
                        AggregationSpec("SUM", "amount", "total"),
                        AggregationSpec("AVERAGE", "amount", "mean"),
                        AggregationSpec("COUNT", "k", "n"),
                        AggregationSpec("MIN", "k", "low"),
                    ),
                ),
                Loader("load", table="out"),
            )
            return flow

        # Exact equality on unrounded float sums/means: the merge must
        # fold the serial value sequences, not partial per-chunk sums.
        assert_identical(build, pool=pool)

    def test_global_aggregate_single_row(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Aggregation(
                    "agg",
                    group_by=(),
                    aggregates=(
                        AggregationSpec("SUM", "amount", "total"),
                    ),
                ),
                Loader("load", table="out"),
            )
            return flow

        assert_identical(build, pool=pool)

    def test_sort_stability_and_distinct(self, pool):
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Projection("proj", columns=("cat", "fk")),
                Distinct("dis"),
                Sort("sort", keys=("cat",)),
                Loader("load", table="out"),
            )
            return flow

        assert_identical(build, pool=pool)

    def test_revenue_flow_end_to_end(self, pool):
        from repro.sources import tpch

        def run(mode):
            database = Database("tpch")
            database.load_source(
                tpch.schema(), tpch.generate(scale_factor=0.3, seed=77)
            )
            executor = Executor(
                database,
                mode=mode,
                workers=4,
                parallel_row_threshold=64,
                pool=pool,
            )
            with executor:
                executor.execute(build_revenue_flow())
            target = database.scan("fact_table_revenue")
            return [sorted(row.items()) for row in target.rows]

        assert run("parallel") == run("columnar")


class TestErrorParity:
    @pytest.mark.parametrize("pool", POOLS)
    def test_chain_error_matches_serial(self, pool):
        # amount is NULL in some rows; "amount + 'x'" fails identically
        # row-for-row in both modes (parallel falls back to the serial
        # per-node path to reproduce the exact failure).
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Selection("sel", predicate="amount > 0"),
                DerivedAttribute(
                    "der", output="bad", expression="amount + cat"
                ),
                Loader("load", table="out"),
            )
            return flow

        columnar, parallel = run_modes(build, pool=pool)
        assert parallel == columnar

    @pytest.mark.parametrize("pool", POOLS)
    def test_unhashable_join_key_message_matches_serial(self, pool):
        # list-valued keys are unhashable: the error message must be
        # the serial engine's full-column scan message, whatever chunk
        # tripped first and whichever pool probed.  The strict database
        # rejects lists on insert, so the fuzzer's loose duck-type
        # carries them to the operators.
        from repro.fuzz.datagen import LooseDatabase, TableSpec

        def make_db():
            return LooseDatabase.from_specs(
                [
                    TableSpec(
                        "facts",
                        {"k": INT, "fk": INT},
                        [
                            {"k": i, "fk": [i] if i == 37 else i}
                            for i in range(60)
                        ],
                    ),
                    TableSpec(
                        "dims",
                        {"dk": INT, "v": INT},
                        [{"dk": i, "v": i * 10} for i in range(40)],
                    ),
                ]
            )

        def build():
            flow = EtlFlow("t")
            flow.add(Datastore("facts", table="facts"))
            flow.add(Datastore("dims", table="dims"))
            flow.add(Join("join", left_keys=("fk",), right_keys=("dk",)))
            flow.connect("facts", "join")
            flow.connect("dims", "join")
            flow.add(Loader("load", table="out"))
            flow.connect("join", "load")
            return flow

        columnar, parallel = run_modes(build, make_db=make_db, pool=pool)
        assert columnar[0] == "error"
        assert parallel == columnar

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown executor mode"):
            Executor(Database(), mode="threads")
        with pytest.raises(ValueError, match="workers"):
            Executor(Database(), mode="parallel", workers=0)
        with pytest.raises(ValueError, match="unknown worker pool"):
            Executor(Database(), mode="parallel", pool="fibers")


class TestSerialFallback:
    def test_small_inputs_stay_serial_zero_copy(self):
        database = make_database(rows=10)
        executor = Executor(
            database, mode="parallel", workers=4,
            parallel_row_threshold=4096,
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="k >= 0"),
            Loader("load", table="out"),
        )
        with executor:
            executor.execute(flow, keep_intermediate=True)
            # All rows kept: the serial filter returns its input
            # relation unchanged (zero copy), and below the threshold
            # the parallel engine must take that exact path.
            assert (
                executor.relations["sel"] is executor.relations["src"]
            )
        assert executor._pool_instance is None  # never spun up

    def test_pool_is_reused_and_closeable(self):
        database = make_database(rows=50)
        executor = Executor(
            database, mode="parallel", workers=2, parallel_row_threshold=2
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="k >= 0"),
            Loader("load", table="out"),
        )
        executor.execute(flow)
        pool = executor._pool_instance
        assert pool is not None
        flow2 = EtlFlow("t2")
        flow2.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="k < 10"),
            Loader("load", table="out2"),
        )
        executor.execute(flow2)
        assert executor._pool_instance is pool
        executor.close()
        assert executor._pool_instance is None


def _simple_flow(predicate="k >= 0", out="out"):
    flow = EtlFlow("t")
    flow.chain(
        Datastore("src", table="facts"),
        Selection("sel", predicate=predicate),
        Loader("load", table=out),
    )
    return flow


class TestProcessPoolLifecycle:
    def test_worker_death_is_honest_and_pool_replaced(self):
        database = make_database(rows=60)
        executor = Executor(
            database,
            mode="parallel",
            workers=2,
            parallel_row_threshold=2,
            pool="process",
        )
        with executor:
            executor.execute(_simple_flow())
            broken = executor._pool_instance
            assert broken is not None
            # Kill a worker mid-"task": the pool breaks, which must
            # surface as an honest ExecutionError — not a hang, not a
            # half-merged result — and the broken pool is discarded.
            future = broken.submit(os._exit, 13)
            with pytest.raises(ExecutionError, match="worker process died"):
                executor._chunk_results([future])
            assert executor._pool_instance is None
            # The executor stays usable: the next parallel node spawns
            # a fresh pool.
            executor.execute(_simple_flow("k < 10", out="out2"))
            assert executor._pool_instance is not None
            assert executor._pool_instance is not broken
            assert len(database.scan("out2")) == 10
        assert executor._pool_instance is None  # context exit shut it down

    def test_task_exception_does_not_break_pool(self):
        # An exception *raised by the task* (here: a division by zero
        # hit after recompiling in the worker) is a normal error path —
        # the pool survives and is reused.
        database = make_database(rows=60)
        executor = Executor(
            database,
            mode="parallel",
            workers=2,
            parallel_row_threshold=2,
            pool="process",
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            DerivedAttribute(
                "der", output="bad", expression="amount / (k - 10)"
            ),
            Loader("load", table="out"),
        )
        with executor:
            with pytest.raises(ExecutionError):
                executor.execute(flow)
            pool = executor._pool_instance
            assert pool is not None
            executor.execute(_simple_flow(out="out2"))
            assert executor._pool_instance is pool

    def test_start_method_selection(self, monkeypatch):
        import multiprocessing

        from repro.engine import shm

        if sys.platform not in ("darwin", "win32") and (
            "fork" in multiprocessing.get_all_start_methods()
        ):
            assert shm.process_context().get_start_method() == "fork"
        # macOS (and Windows) must select spawn: fork is unsafe there.
        monkeypatch.setattr(shm.sys, "platform", "darwin")
        assert shm.process_context().get_start_method() == "spawn"


class TestPoolAwareThreshold:
    def test_defaults_resolve_per_pool(self):
        thread = Executor(Database(), mode="parallel")
        process = Executor(Database(), mode="parallel", pool="process")
        assert thread._parallel_threshold == DEFAULT_PARALLEL_ROW_THRESHOLD
        assert process._parallel_threshold == DEFAULT_PROCESS_ROW_THRESHOLD
        assert (
            DEFAULT_PROCESS_ROW_THRESHOLD > DEFAULT_PARALLEL_ROW_THRESHOLD
        )

    def test_explicit_threshold_wins(self):
        executor = Executor(
            Database(),
            mode="parallel",
            pool="process",
            parallel_row_threshold=7,
        )
        assert executor._parallel_threshold == 7

    def test_small_inputs_never_spawn_process_pool(self):
        database = make_database(rows=10)
        executor = Executor(database, mode="parallel", pool="process")
        with executor:
            executor.execute(_simple_flow())
        assert executor._pool_instance is None  # never spun up


class TestReadSetShipping:
    def test_chain_spec_is_compacted_to_read_set(self):
        from repro.engine.executor import _build_chain_spec

        database = make_database(rows=20)
        relation = database.scan_columns("facts")  # k, fk, cat, amount
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="amount > 0"),
            Projection("proj", columns=("k", "amount")),
            Loader("load", table="out"),
        )
        spec = _build_chain_spec(flow, ["sel", "proj"], relation)
        # fk and cat are neither read by the filter nor kept by the
        # projection: they must not be sliced or transported at all.
        assert spec.input_names == ("k", "amount")
        assert dict(spec.output_schema).keys() == {"k", "amount"}
        ((kind, text, positions, counter),) = spec.steps
        assert kind == "filter"
        assert positions == (1,)  # amount, renumbered into the read-set
        assert spec.output_positions == (0, 1)

    def test_compacted_chain_results_match_serial(self):
        # The chain above, end to end, in both pools.
        def build():
            flow = EtlFlow("t")
            flow.chain(
                Datastore("src", table="facts"),
                Selection("sel", predicate="amount > 0"),
                Projection("proj", columns=("k", "amount")),
                Loader("load", table="out"),
            )
            return flow

        for pool in POOLS:
            assert_identical(build, pool=pool)

    def test_slice_relation_names_subset(self):
        database = make_database(rows=20)
        relation = database.scan_columns("facts")
        part = slice_relation(relation, 5, 10, names=["k", "amount"])
        assert list(part.schema) == ["k", "amount"]
        assert part.length == 5
        assert part.columns["k"] == relation.columns["k"][5:10]
        assert part.columns["amount"] == relation.columns["amount"][5:10]


class TestStatsParity:
    @pytest.mark.parametrize("pool", POOLS)
    def test_filter_counts_survive_chunk_merge(self, pool):
        database = make_database()
        executor = Executor(
            database,
            mode="parallel",
            workers=3,
            parallel_row_threshold=2,
            pool=pool,
        )
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="facts"),
            Selection("sel", predicate="amount > 0"),
            Projection("proj", columns=("k", "amount")),
            Loader("load", table="out"),
        )
        with executor:
            stats = executor.execute(flow)
        reference = Executor(make_database(), mode="columnar").execute(flow)
        for name in ("sel", "proj", "load"):
            assert (
                stats.node(name).output_rows
                == reference.node(name).output_rows
            )
