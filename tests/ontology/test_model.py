"""Unit tests for the ontology model."""

import pytest

from repro.errors import (
    DuplicateDefinitionError,
    UnknownConceptError,
    UnknownPropertyError,
)
from repro.expressions import ScalarType
from repro.ontology import (
    Concept,
    DatatypeProperty,
    Multiplicity,
    ObjectProperty,
    Ontology,
    OntologyBuilder,
)


@pytest.fixture
def shop():
    return (
        OntologyBuilder("shop", description="toy retail domain")
        .concept("Item", label="Catalog item")
        .concept("Product", parent="Item", label="Product")
        .concept("Customer")
        .concept("Sale", label="Sale")
        .attribute("Product_name", "Product", ScalarType.STRING, label="name")
        .attribute("Sale_amount", "Sale", ScalarType.DECIMAL)
        .relationship("Sale_product", "Sale", "Product", "N-1", label="sold product")
        .relationship("Sale_customer", "Sale", "Customer", Multiplicity.MANY_TO_ONE)
        .build()
    )


class TestMultiplicity:
    def test_to_one(self):
        assert Multiplicity.MANY_TO_ONE.to_one
        assert Multiplicity.ONE_TO_ONE.to_one
        assert not Multiplicity.ONE_TO_MANY.to_one
        assert not Multiplicity.MANY_TO_MANY.to_one

    def test_inverse(self):
        assert Multiplicity.MANY_TO_ONE.inverse is Multiplicity.ONE_TO_MANY
        assert Multiplicity.ONE_TO_MANY.inverse is Multiplicity.MANY_TO_ONE
        assert Multiplicity.ONE_TO_ONE.inverse is Multiplicity.ONE_TO_ONE
        assert Multiplicity.MANY_TO_MANY.inverse is Multiplicity.MANY_TO_MANY

    def test_inverse_is_involution(self):
        for multiplicity in Multiplicity:
            assert multiplicity.inverse.inverse is multiplicity


class TestLookup:
    def test_concept_lookup(self, shop):
        assert shop.concept("Product").label == "Product"

    def test_unknown_concept_raises(self, shop):
        with pytest.raises(UnknownConceptError):
            shop.concept("Nope")

    def test_datatype_property_lookup(self, shop):
        prop = shop.datatype_property("Sale_amount")
        assert prop.range is ScalarType.DECIMAL

    def test_unknown_property_raises(self, shop):
        with pytest.raises(UnknownPropertyError):
            shop.datatype_property("Nope")
        with pytest.raises(UnknownPropertyError):
            shop.object_property("Nope")

    def test_contains(self, shop):
        assert "Product" in shop
        assert "Sale_amount" in shop
        assert "Sale_product" in shop
        assert "Nope" not in shop

    def test_has_methods(self, shop):
        assert shop.has_concept("Sale")
        assert not shop.has_concept("Sale_amount")
        assert shop.has_datatype_property("Sale_amount")
        assert shop.has_object_property("Sale_customer")

    def test_size(self, shop):
        assert shop.size() == (4, 2, 2)


class TestReferentialIntegrity:
    def test_duplicate_concept_id_rejected(self, shop):
        with pytest.raises(DuplicateDefinitionError):
            shop.add_concept(Concept(id="Product"))

    def test_id_namespace_is_shared_across_kinds(self, shop):
        with pytest.raises(DuplicateDefinitionError):
            shop.add_concept(Concept(id="Sale_amount"))

    def test_unknown_parent_rejected(self):
        ontology = Ontology(name="x")
        with pytest.raises(UnknownConceptError):
            ontology.add_concept(Concept(id="A", parent="Missing"))

    def test_attribute_on_unknown_concept_rejected(self, shop):
        with pytest.raises(UnknownConceptError):
            shop.add_datatype_property(
                DatatypeProperty(id="x", concept="Missing", range=ScalarType.STRING)
            )

    def test_relationship_to_unknown_concept_rejected(self, shop):
        with pytest.raises(UnknownConceptError):
            shop.add_object_property(
                ObjectProperty(id="x", domain="Sale", range="Missing")
            )


class TestIterationAndLabels:
    def test_datatype_properties_filtered_by_concept(self, shop):
        names = [prop.id for prop in shop.datatype_properties("Product")]
        assert names == ["Product_name"]

    def test_datatype_properties_of_unknown_concept_raises(self, shop):
        with pytest.raises(UnknownConceptError):
            list(shop.datatype_properties("Missing"))

    def test_properties_from_and_to(self, shop):
        from_sale = {prop.id for prop in shop.properties_from("Sale")}
        assert from_sale == {"Sale_product", "Sale_customer"}
        to_product = {prop.id for prop in shop.properties_to("Product")}
        assert to_product == {"Sale_product"}

    def test_find_by_label_matches_label_and_id(self, shop):
        assert shop.find_by_label("Sale") == ["Sale"]
        assert shop.find_by_label("sold product") == ["Sale_product"]

    def test_find_by_label_is_case_insensitive(self, shop):
        assert shop.find_by_label("catalog ITEM") == ["Item"]

    def test_display_name_falls_back_to_id(self, shop):
        assert shop.concept("Customer").display_name == "Customer"
        assert shop.concept("Item").display_name == "Catalog item"
