"""End-to-end tests of the Quarry facade (Figure 1 / the demo scenarios)."""

import pytest

from repro import Quarry, QuarryError, RequirementBuilder
from repro.engine import Database, OlapQuery, query_star
from repro.sources import tpch

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)


@pytest.fixture
def quarry():
    return Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())


@pytest.fixture
def loaded_db():
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(0.2, seed=3))
    return database


class TestScenarioDWDesign:
    """Demo scenario 1: from requirement to initial design."""

    def test_add_requirement_produces_unified_design(self, quarry):
        report = quarry.add_requirement(build_revenue_requirement())
        assert report.action == "added"
        md, etl = quarry.unified_design()
        assert md.has_fact("fact_table_revenue")
        assert set(md.dimensions) == {"Part", "Supplier"}
        assert etl.validate() == []

    def test_elicitor_assists_requirement_definition(self, quarry):
        elicitor = quarry.elicitor()
        suggestions = elicitor.suggest_dimensions("Lineitem")
        assert {s.element_id for s in suggestions} >= {"Part", "Supplier"}
        resolution = quarry.vocabulary().resolve("nation name")
        assert resolution.element_id == "Nation_n_name"

    def test_artifacts_stored_in_repository(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        repo = quarry.repository
        assert repo.requirement_ids() == ["IR1"]
        assert repo.partial_design_ids() == ["IR1"]
        md, etl, requirements = repo.load_unified_design("current")
        assert requirements == ["IR1"]
        assert md.has_fact("fact_table_revenue")

    def test_duplicate_requirement_id_rejected(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        with pytest.raises(QuarryError):
            quarry.add_requirement(build_revenue_requirement())

    def test_status_snapshot(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        status = quarry.status()
        assert status.requirements == ["IR1"]
        assert status.facts == ["fact_table_revenue"]
        assert status.complexity > 0
        assert status.etl_operations > 10
        assert status.estimated_etl_cost > 0


class TestScenarioAccommodatingChanges:
    """Demo scenario 2: add / change / remove requirements."""

    def test_incremental_addition_keeps_all_satisfied(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        quarry.add_requirement(build_quantity_requirement())
        assert quarry.satisfiability_problems() == []
        md, __ = quarry.unified_design()
        assert len(md.facts) == 3
        # Part is conformed between IR1 and IR2.
        assert len([d for d in md.dimensions if d.startswith("Part")]) == 1

    def test_change_requirement(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        changed = (
            RequirementBuilder("IR1", "revenue per brand now")
            .measure(
                "revenue",
                "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
                "SUM",
            )
            .per("Part_p_brand")
            .build()
        )
        report = quarry.change_requirement(changed)
        assert report.action == "changed"
        md, __ = quarry.unified_design()
        fact = md.fact("fact_table_revenue")
        assert fact.grain == ["p_brand"]
        assert quarry.satisfiability_problems() == []

    def test_remove_requirement_rebuilds(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        report = quarry.remove_requirement("IR1")
        assert report.action == "removed"
        md, etl = quarry.unified_design()
        assert not md.has_fact("fact_table_revenue")
        assert md.has_fact("fact_table_netprofit")
        assert etl.requirements == {"IR2"}
        assert quarry.repository.requirement_ids() == ["IR2"]

    def test_remove_unknown_rejected(self, quarry):
        with pytest.raises(QuarryError):
            quarry.remove_requirement("ghost")
        with pytest.raises(QuarryError):
            quarry.change_requirement(build_revenue_requirement("ghost"))

    def test_integration_reduces_cost_versus_separate(self, quarry):
        quarry.add_requirement(build_revenue_requirement())
        report = quarry.add_requirement(build_netprofit_requirement())
        assert report.etl_consolidation.cost_unified < (
            report.etl_consolidation.cost_separate
        )
        assert report.md_integration.saving > 0


class TestScenarioDeployment:
    """Demo scenario 3: generate executables and run them."""

    def test_deploy_all_platforms(self, quarry, loaded_db):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        ddl_result = quarry.deploy("postgres")
        assert "CREATE TABLE fact_table_revenue" in ddl_result.artifacts["ddl"]
        ktr_result = quarry.deploy("pdi")
        assert "<transformation>" in ktr_result.artifacts["ktr"]
        native = quarry.deploy("native", source_database=loaded_db)
        assert native.stats.loaded["fact_table_revenue"] > 0
        assert native.stats.loaded["fact_table_netprofit"] > 0
        deployments = quarry.repository.deployments_of("current")
        assert {d["platform"] for d in deployments} == {
            "postgres", "pdi", "native",
        }

    def test_deployed_star_answers_both_requirements(self, quarry, loaded_db):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        quarry.deploy("native", source_database=loaded_db)
        revenue = query_star(
            loaded_db,
            OlapQuery(
                fact_table="fact_table_revenue",
                group_by=["p_name"],
                aggregates=[("AVERAGE", "revenue", "avg_rev")],
            ),
        )
        netprofit = query_star(
            loaded_db,
            OlapQuery(
                fact_table="fact_table_netprofit",
                group_by=["p_brand"],
                aggregates=[("SUM", "netprofit", "total")],
            ),
        )
        assert len(netprofit) > 0
        assert all(row["total"] is not None for row in netprofit.rows)
        # dim_Part serves both facts (conformed dimension).
        part_columns = loaded_db.scan("dim_Part").attribute_names()
        assert {"p_name", "p_brand"} <= set(part_columns)


class TestPersistence:
    def test_save_and_resume_session(self, quarry, tmp_path):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        path = tmp_path / "quarry.json"
        quarry.save_to(path)
        resumed = Quarry.load_from(path, tpch.schema(), tpch.mappings())
        md, etl = resumed.unified_design()
        original_md, original_etl = quarry.unified_design()
        assert set(md.facts) == set(original_md.facts)
        assert set(md.dimensions) == set(original_md.dimensions)
        assert set(etl.node_names()) == set(original_etl.node_names())
        assert [r.id for r in resumed.requirements()] == ["IR1", "IR2"]

    def test_load_from_empty_repository_rejected(self, tmp_path):
        from repro.repository import MetadataRepository

        path = tmp_path / "empty.json"
        MetadataRepository().save_to(path)
        with pytest.raises(QuarryError):
            Quarry.load_from(path, tpch.schema(), tpch.mappings())
