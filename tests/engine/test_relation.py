"""Unit tests for the Relation container."""

import pytest

from repro.errors import EngineError
from repro.engine import Relation
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
DEC = ScalarType.DECIMAL
STR = ScalarType.STRING


@pytest.fixture
def people():
    relation = Relation(schema={"id": INT, "name": STR, "score": DEC})
    relation.extend(
        [
            {"id": 2, "name": "bob", "score": 1.5},
            {"id": 1, "name": "ann", "score": 2.0},
            {"id": 3, "name": "cat", "score": None},
        ]
    )
    return relation


class TestRowChecking:
    def test_append_accepts_valid_row(self, people):
        people.append({"id": 4, "name": "dan", "score": 0.5})
        assert len(people) == 4

    def test_missing_attribute_rejected(self, people):
        with pytest.raises(EngineError):
            people.append({"id": 4, "name": "dan"})

    def test_extra_attribute_rejected(self, people):
        with pytest.raises(EngineError):
            people.append({"id": 4, "name": "dan", "score": 1.0, "x": 1})

    def test_type_mismatch_rejected(self, people):
        with pytest.raises(EngineError):
            people.append({"id": "four", "name": "dan", "score": 1.0})

    def test_null_always_allowed(self, people):
        people.append({"id": 4, "name": None, "score": None})

    def test_integer_accepted_for_decimal(self, people):
        people.append({"id": 4, "name": "dan", "score": 3})

    def test_decimal_not_accepted_for_integer(self, people):
        with pytest.raises(EngineError):
            people.append({"id": 4.5, "name": "dan", "score": 1.0})

    def test_bool_is_not_integer(self):
        relation = Relation(schema={"n": INT})
        with pytest.raises(EngineError):
            relation.append({"n": True})


class TestOperations:
    def test_project_subsets_and_reorders(self, people):
        projected = people.project(["name", "id"])
        assert projected.attribute_names() == ["name", "id"]
        assert projected.rows[0] == {"name": "bob", "id": 2}

    def test_project_unknown_column_rejected(self, people):
        with pytest.raises(EngineError):
            people.project(["ghost"])

    def test_distinct_preserves_first_occurrence(self):
        relation = Relation(schema={"a": INT})
        relation.extend([{"a": 1}, {"a": 2}, {"a": 1}])
        assert [row["a"] for row in relation.distinct().rows] == [1, 2]

    def test_sorted_by(self, people):
        ordered = people.sorted_by(["id"])
        assert [row["id"] for row in ordered.rows] == [1, 2, 3]

    def test_sorted_by_puts_nulls_first(self, people):
        ordered = people.sorted_by(["score"])
        assert ordered.rows[0]["score"] is None

    def test_sorted_descending(self, people):
        ordered = people.sorted_by(["id"], descending=True)
        assert [row["id"] for row in ordered.rows] == [3, 2, 1]

    def test_sort_unknown_key_rejected(self, people):
        with pytest.raises(EngineError):
            people.sorted_by(["ghost"])

    def test_head(self, people):
        assert len(people.head(2)) == 2
        assert len(people.head(10)) == 3

    def test_iteration(self, people):
        assert sum(1 for __ in people) == 3
