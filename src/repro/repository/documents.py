"""An embedded document store with Mongo-style queries.

Documents are plain JSON-compatible dicts with a required ``_id``.
Filters support equality on (dotted) paths plus the operators
``$eq $ne $gt $gte $lt $lte $in $nin $exists $regex`` and the
conjunctions ``$and $or $not``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from repro.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    RepositoryError,
)

_OPERATORS = {
    "$eq", "$ne", "$gt", "$gte", "$lt", "$lte",
    "$in", "$nin", "$exists", "$regex",
}


def _resolve_path(document: dict, path: str):
    """Value at a dotted path; (value, found) pair."""
    current = document
    for part in path.split("."):
        if isinstance(current, dict) and part in current:
            current = current[part]
        else:
            return None, False
    return current, True


def _sort_group(value):
    """Type-bucketed total order over document values.

    Values only ever compare against values of the same bucket, so a
    heterogeneously-typed sort key can never raise ``TypeError`` and no
    value is coerced into another type.  Booleans get their own bucket
    (``True == 1`` in Python, but a bool is not a number here), ints and
    floats share the number bucket, and anything exotic (lists, dicts)
    falls back to a repr ordering within its own type name.
    """
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("number", value)
    if isinstance(value, str):
        return ("string", value)
    return (type(value).__name__, repr(value))


def _find_sort_key(document: dict, path: str):
    """Sort key for :meth:`Collection.find`: missing first, then NULL,
    then present values grouped by type — falsy values (``0``, ``""``,
    ``False``) sort as themselves, never collapsed."""
    value, found = _resolve_path(document, path)
    if not found:
        return (0, ("", ""))
    if value is None:
        return (1, ("", ""))
    return (2, _sort_group(value))


def _compare(op: str, value, expected) -> bool:
    if op == "$eq":
        return value == expected
    if op == "$ne":
        return value != expected
    if op in ("$gt", "$gte", "$lt", "$lte"):
        if value is None:
            return False
        try:
            if op == "$gt":
                return value > expected
            if op == "$gte":
                return value >= expected
            if op == "$lt":
                return value < expected
            return value <= expected
        except TypeError:
            return False
    if op == "$in":
        return value in expected
    if op == "$nin":
        return value not in expected
    if op == "$regex":
        return isinstance(value, str) and re.search(expected, value) is not None
    raise RepositoryError(f"unknown operator {op!r}")


def matches(document: dict, query: dict) -> bool:
    """Whether a document satisfies a filter query."""
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
            continue
        if key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
            continue
        if key == "$not":
            if matches(document, condition):
                return False
            continue
        value, found = _resolve_path(document, key)
        if isinstance(condition, dict) and any(
            op.startswith("$") for op in condition
        ):
            for op, expected in condition.items():
                if op == "$exists":
                    if bool(found) != bool(expected):
                        return False
                    continue
                if op not in _OPERATORS:
                    raise RepositoryError(f"unknown operator {op!r}")
                if not found and op not in ("$ne", "$nin"):
                    return False
                if not _compare(op, value, expected):
                    return False
        else:
            if not found or value != condition:
                return False
    return True


class Collection:
    """One named collection of documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: Dict[str, dict] = {}
        #: Monotonic insertion position per id, so the ``_id`` fast path
        #: can restore collection order without scanning (replacing an
        #: existing document keeps its position, like dict assignment).
        self._positions: Dict[str, int] = {}
        self._next_position = 0

    def _track(self, doc_id) -> None:
        if doc_id not in self._positions:
            self._positions[doc_id] = self._next_position
            self._next_position += 1

    # -- writes -----------------------------------------------------------

    def insert(self, document: dict) -> str:
        """Insert a document; ``_id`` is required and must be fresh."""
        if "_id" not in document:
            raise RepositoryError("document needs an '_id'")
        doc_id = document["_id"]
        if doc_id in self._documents:
            raise DuplicateDocumentError(
                f"document {doc_id!r} already in collection {self.name!r}"
            )
        self._documents[doc_id] = dict(document)
        self._track(doc_id)
        return doc_id

    def replace(self, document: dict) -> str:
        """Insert or overwrite by ``_id`` (upsert)."""
        if "_id" not in document:
            raise RepositoryError("document needs an '_id'")
        self._documents[document["_id"]] = dict(document)
        self._track(document["_id"])
        return document["_id"]

    def update(self, doc_id: str, changes: dict) -> dict:
        """Shallow-merge changes into an existing document."""
        document = self.get(doc_id)
        document.update({k: v for k, v in changes.items() if k != "_id"})
        self._documents[doc_id] = document
        return dict(document)

    def delete(self, doc_id: str) -> None:
        if doc_id not in self._documents:
            raise DocumentNotFoundError(self.name, doc_id)
        del self._documents[doc_id]
        del self._positions[doc_id]

    def delete_many(self, query: dict) -> int:
        doomed = [doc["_id"] for doc in self.find(query)]
        for doc_id in doomed:
            del self._documents[doc_id]
        return len(doomed)

    # -- reads ---------------------------------------------------------------

    def get(self, doc_id: str) -> dict:
        if doc_id not in self._documents:
            raise DocumentNotFoundError(self.name, doc_id)
        return dict(self._documents[doc_id])

    def has(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def _candidates(self, query: Optional[dict]):
        """Documents that could match, narrowed by ``_id`` when possible.

        ``_documents`` is keyed by ``_id``, so a query that pins the id
        (plain equality, ``$eq`` or ``$in``) is answered by direct hash
        lookups instead of a collection scan.  Candidates are still
        verified against the *full* query by the caller, so every other
        condition keeps its usual meaning.  Returns an iterable of
        documents.
        """
        if not query or "_id" not in query:
            return self._documents.values()
        condition = query["_id"]
        try:
            if isinstance(condition, dict) and any(
                op.startswith("$") for op in condition
            ):
                if set(condition) == {"$eq"}:
                    wanted = [condition["$eq"]]
                elif set(condition) == {"$in"}:
                    seen: set = set()
                    wanted = []
                    for doc_id in condition["$in"]:
                        if doc_id not in seen:
                            seen.add(doc_id)
                            wanted.append(doc_id)
                else:
                    return self._documents.values()
            else:
                wanted = [condition]
            # Restore collection (insertion) order: a scan yields
            # documents in that order, and narrowing by id must not
            # reorder results behind the caller's back.
            hits = [
                doc_id for doc_id in wanted if doc_id in self._documents
            ]
            hits.sort(key=self._positions.__getitem__)
            return [self._documents[doc_id] for doc_id in hits]
        except TypeError:  # unhashable id in the query: scan as before
            return self._documents.values()

    def find(
        self,
        query: Optional[dict] = None,
        sort_key: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[dict]:
        """All documents matching the filter (copies)."""
        results = [
            dict(document)
            for document in self._candidates(query)
            if query is None or matches(document, query)
        ]
        if sort_key is not None:
            results.sort(key=lambda doc: _find_sort_key(doc, sort_key))
        if limit is not None:
            results = results[:limit]
        return results

    def find_one(self, query: Optional[dict] = None) -> Optional[dict]:
        found = self.find(query, limit=1)
        return found[0] if found else None

    def count(self, query: Optional[dict] = None) -> int:
        if query is None:
            return len(self._documents)
        return sum(
            1 for doc in self._candidates(query) if matches(doc, query)
        )

    def ids(self) -> List[str]:
        return list(self._documents)

    def __len__(self) -> int:
        return len(self._documents)


class DocumentStore:
    """A set of named collections (one MongoDB database)."""

    def __init__(self, name: str = "quarry") -> None:
        self.name = name
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get (creating on first use) a collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def collection_names(self) -> List[str]:
        return list(self._collections)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._collections
