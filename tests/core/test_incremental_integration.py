"""Incremental integration must be indistinguishable from a rebuild.

The checkpoint-based delta updates (``change_requirement`` /
``remove_requirement`` re-integrating only the affected suffix) rest on
integration being a deterministic left fold over the requirement order.
These tests drive random add/change/remove sequences and assert after
every single operation that the incremental unified design is byte-equal
(xMD + xLM serialisations, same order) to a Quarry built from scratch in
the same order — plus counter-based assertions that the incremental
paths really do sub-linear work.
"""

import random

import pytest

from repro import Quarry
from repro.sources import tpch
from repro.xformats import xlm, xmd

from benchmarks._workloads import ROW_COUNTS, requirement_corpus

CORPUS = requirement_corpus(6)
BY_ID = {requirement.id: requirement for requirement in CORPUS}


def fresh_quarry() -> Quarry:
    return Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )


def fingerprint(quarry: Quarry):
    md_schema, etl_flow = quarry.unified_design()
    return (
        xmd.dumps(md_schema),
        xlm.dumps(etl_flow),
        [requirement.id for requirement in quarry.requirements()],
    )


def reference_for(order):
    reference = fresh_quarry()
    for requirement_id in order:
        reference.add_requirement(BY_ID[requirement_id])
    return reference


class TestRandomSequences:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_equals_rebuild_after_every_operation(self, seed):
        rng = random.Random(seed)
        quarry = fresh_quarry()
        order = []  # the test's own mirror of the requirement order
        for __ in range(10):
            unused = [r.id for r in CORPUS if r.id not in order]
            moves = ["add"] * bool(unused) + ["change", "remove"] * bool(order)
            move = rng.choice(moves)
            if move == "add":
                requirement_id = rng.choice(unused)
                quarry.add_requirement(BY_ID[requirement_id])
                order.append(requirement_id)
            elif move == "change":
                requirement_id = rng.choice(order)
                quarry.change_requirement(BY_ID[requirement_id])
                order.remove(requirement_id)
                order.append(requirement_id)  # change re-adds at the end
            else:
                requirement_id = rng.choice(order)
                quarry.remove_requirement(requirement_id)
                order.remove(requirement_id)
            assert fingerprint(quarry) == fingerprint(reference_for(order))

    def test_explicit_rebuild_is_a_no_op_on_the_design(self):
        quarry = fresh_quarry()
        for requirement in CORPUS[:4]:
            quarry.add_requirement(requirement)
        before = fingerprint(quarry)
        quarry.rebuild()
        assert fingerprint(quarry) == before


class TestIntegrationCounts:
    def test_add_integrates_exactly_once(self):
        quarry = fresh_quarry()
        for requirement in CORPUS[:5]:
            quarry.add_requirement(requirement)
        assert quarry.integration_counts == {"md": 5, "etl": 5}
        quarry.add_requirement(requirement_corpus(6)[5])
        assert quarry.integration_counts == {"md": 6, "etl": 6}

    def test_change_of_last_is_constant_work(self):
        quarry = fresh_quarry()
        for requirement in CORPUS[:5]:
            quarry.add_requirement(requirement)
        before = dict(quarry.integration_counts)
        quarry.change_requirement(CORPUS[4])
        assert quarry.integration_counts["md"] - before["md"] == 1
        assert quarry.integration_counts["etl"] - before["etl"] == 1

    def test_remove_of_last_is_free(self):
        quarry = fresh_quarry()
        for requirement in CORPUS[:5]:
            quarry.add_requirement(requirement)
        before = dict(quarry.integration_counts)
        quarry.remove_requirement(CORPUS[4].id)
        assert quarry.integration_counts == before

    def test_remove_of_first_refolds_only_the_suffix(self):
        quarry = fresh_quarry()
        for requirement in CORPUS[:5]:
            quarry.add_requirement(requirement)
        before = dict(quarry.integration_counts)
        quarry.remove_requirement(CORPUS[0].id)
        assert quarry.integration_counts["md"] - before["md"] == 4
