"""The Quarry facade: the end-to-end DW design lifecycle (Figure 1).

Since the service decomposition, ``Quarry`` is a thin backward
compatible shim over one :class:`~repro.core.services.DesignSession`:
the four components — Requirements Elicitation, Requirements
Interpretation, Design Integration, Design Deployment — are
session-scoped services that communicate only through typed artifact
envelopes (xRQ/xMD/xLM payloads) on a synchronous
:class:`~repro.core.services.ArtifactBus`, with every envelope logged
in the metadata repository:

.. code-block:: text

    Requirements Elicitor -> Requirements Interpreter
        -> Design Integrator (MD + ETL) -> Design Deployer
    with every artefact stored in the MetadataRepository (xRQ/xMD/xLM).

Typical use::

    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    report = quarry.add_requirement(requirement)     # incremental design
    md, etl = quarry.unified_design()
    result = quarry.deploy("native", source_database=db)

``add_requirement`` / ``change_requirement`` / ``remove_requirement``
implement the demo's "accommodating a DW design to changes" scenario;
after every step the unified design is validated for soundness (MD
integrity constraints) and satisfiability of all requirements met so
far.  Pass ``session="..."`` to run several isolated design sessions
over one shared repository (see :class:`DesignSession` for the full
service-level API).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.deployer import Deployer, DeploymentResult
from repro.core.interpreter import PartialDesign
from repro.core.requirements import Elicitor
from repro.core.requirements.model import InformationRequirement
from repro.core.requirements.vocabulary import Vocabulary
from repro.core.services.integration import (
    retarget_loaders as _retarget_loaders,  # noqa: F401  back-compat alias
)
from repro.core.services.reports import ChangeReport, DesignStatus
from repro.core.services.session import DesignSession
from repro.engine.database import Database
from repro.errors import QuarryError
from repro.etlmodel.cost import CostModel
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.complexity import ComplexityWeights, DEFAULT_WEIGHTS
from repro.mdmodel.model import MDSchema
from repro.ontology.model import Ontology
from repro.repository.metadata import DEFAULT_SESSION, MetadataRepository
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema

__all__ = ["ChangeReport", "DesignStatus", "Quarry"]


class Quarry:
    """End-to-end system for managing the DW design lifecycle."""

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        repository: Optional[MetadataRepository] = None,
        md_weights: ComplexityWeights = DEFAULT_WEIGHTS,
        cost_model: Optional[CostModel] = None,
        align_etl: bool = True,
        complement: bool = True,
        row_counts: Optional[Dict[str, int]] = None,
        session: str = DEFAULT_SESSION,
        scd_policies: Optional[Dict[str, object]] = None,
        scd_effective_date: str = "1970-01-01",
    ) -> None:
        self._session = DesignSession(
            ontology,
            schema,
            mappings,
            repository=repository,
            session=session,
            md_weights=md_weights,
            cost_model=cost_model,
            align_etl=align_etl,
            complement=complement,
            row_counts=row_counts,
            scd_policies=scd_policies,
            scd_effective_date=scd_effective_date,
        )

    # -- component access ---------------------------------------------------

    @property
    def session(self) -> DesignSession:
        """The design session this facade fronts."""
        return self._session

    @property
    def repository(self) -> MetadataRepository:
        return self._session.repository

    @property
    def deployer(self) -> Deployer:
        return self._session.deployer

    @property
    def integration_counts(self) -> Dict[str, int]:
        """How many MD / ETL integration calls this instance has made —
        the observable that incremental changes stay sub-linear."""
        return self._session.integration_counts

    def elicitor(self) -> Elicitor:
        """The Requirements Elicitor backend over this domain."""
        return self._session.elicitor()

    def vocabulary(self) -> Vocabulary:
        """Business-vocabulary resolution over this domain."""
        return self._session.vocabulary()

    # -- lifecycle ------------------------------------------------------------

    def add_requirement(
        self, requirement: InformationRequirement
    ) -> ChangeReport:
        """Interpret, integrate and validate one new requirement."""
        return self._session.add_requirement(requirement)

    def add_requirement_xrq(self, xrq_text: str) -> ChangeReport:
        """Add a requirement delivered as an xRQ document.

        This is the wire format the Requirements Elicitor posts to the
        Requirements Interpreter in the original service architecture.
        """
        return self._session.add_requirement_xrq(xrq_text)

    def add_partial_design(
        self,
        requirement: InformationRequirement,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
    ) -> ChangeReport:
        """Integrate a partial design produced by an *external* tool.

        "Quarry allows plugging in other external design tools, with the
        assumption that the provided partial designs are sound [...] and
        that they satisfy an end-user requirement" (§2.2) — assumptions
        the interpretation service re-validates before integrating.
        """
        return self._session.add_partial_design(
            requirement, md_schema, etl_flow
        )

    def change_requirement(
        self, requirement: InformationRequirement
    ) -> ChangeReport:
        """Replace an existing requirement and rebuild the design."""
        return self._session.change_requirement(requirement)

    def remove_requirement(self, requirement_id: str) -> ChangeReport:
        """Drop a requirement and re-integrate the ones after it.

        Integration is a deterministic left fold over the requirement
        order, so the design up to the removed requirement is untouched:
        the checkpoint just before it is restored and only the suffix is
        re-integrated.  Removing the most recent requirement therefore
        costs no integration calls at all.
        """
        return self._session.remove_requirement(requirement_id)

    def rebuild(self) -> None:
        """Re-integrate every partial design from scratch.

        The pre-incremental code path, kept as the reference the
        incremental updates are verified (and benchmarked) against —
        both produce the same deterministic fold over the requirement
        order, so their results are identical.
        """
        self._session.rebuild()

    # -- design evolution -------------------------------------------------------

    def rename_concept(self, old_id: str, new_id: str):
        """Rename an ontology concept; affected designs follow.

        Re-interprets only the requirements whose partial designs touch
        the concept and re-folds the unified design from the earliest
        affected checkpoint — never from scratch.
        """
        return self._session.rename_concept(old_id, new_id)

    def split_concept(
        self, concept: str, new_concept: str, properties, relationship=None
    ):
        """Carve a new concept (same source table) out of an existing one."""
        return self._session.split_concept(
            concept, new_concept, properties, relationship=relationship
        )

    def merge_concepts(self, source: str, target: str):
        """Fold one concept into another (same source table)."""
        return self._session.merge_concepts(source, target)

    def retype_property(self, property_id: str, new_type):
        """Change a datatype property's range type."""
        return self._session.retype_property(property_id, new_type)

    # -- validation ------------------------------------------------------------

    def satisfiability_problems(self) -> List[str]:
        """Structural satisfiability check of the unified design."""
        return self._session.satisfiability_problems()

    # -- views -------------------------------------------------------------------

    def unified_design(self) -> Tuple[MDSchema, EtlFlow]:
        """The current unified MD schema and ETL flow."""
        return self._session.unified_design()

    def requirements(self) -> List[InformationRequirement]:
        return self._session.requirements()

    def partial_design(self, requirement_id: str) -> PartialDesign:
        return self._session.partial_design(requirement_id)

    def status(self) -> DesignStatus:
        """Summary metrics of the current unified design."""
        return self._session.status()

    # -- static analysis ---------------------------------------------------------------

    def lint(self, *, disable=(), only=None):
        """Lint the unified design: ETL flow plus MD schema.

        Returns a merged :class:`repro.analysis.LintReport`.  The flow
        is linted against the source schema (typed datastores) and the
        MD schema against the domain ontology (to-one reachability).
        """
        return self._session.lint(disable=disable, only=only)

    # -- deployment ------------------------------------------------------------------

    def deploy(
        self,
        platform: str,
        source_database: Optional[Database] = None,
        lint_gate: bool = True,
    ) -> DeploymentResult:
        """Deploy the unified design; records the artefacts in the repo.

        Deployment is gated on the linter: ERROR-severity findings raise
        :class:`repro.errors.LintError` before anything is deployed,
        while warnings are reported through the ``lint`` artifact of the
        result (and the recorded deployment).  Pass ``lint_gate=False``
        to skip the gate.
        """
        return self._session.deploy(
            platform, source_database=source_database, lint_gate=lint_gate
        )

    # -- persistence --------------------------------------------------------------------

    def save_to(self, path) -> None:
        """Persist the metadata repository (requirements + designs).

        The whole underlying document store is saved — including the
        fold checkpoints, the session state and the bus event log — so
        ``load_from`` resumes the session *incrementally* instead of
        re-interpreting every requirement.
        """
        self._session.repository.save_to(path)

    @classmethod
    def load_from(
        cls,
        path,
        schema: SourceSchema,
        mappings: SourceMappings,
        session: str = DEFAULT_SESSION,
        **kwargs,
    ) -> "Quarry":
        """Resume a design session from a persisted repository.

        The ontology is read back from the repository.  Stores written
        by this version carry the full fold state (partial designs,
        checkpoints, insertion order), which is restored directly —
        zero integration calls, so later changes stay incremental.
        Legacy stores without session state fall back to re-adding the
        requirements in their stored order.
        """
        repository = MetadataRepository.load_from(path)
        scoped = repository.for_session(session)
        ontology_names = scoped.ontology_names()
        if not ontology_names:
            raise QuarryError("repository holds no ontology")
        ontology = scoped.load_ontology(ontology_names[0])
        quarry = cls(
            ontology,
            schema,
            mappings,
            repository=repository,
            session=session,
            **kwargs,
        )
        if quarry._session.restore():
            return quarry
        # Legacy store: re-run the pipeline over the stored order.
        if "current" in scoped.unified_design_names():
            __, __, stored_order = scoped.load_unified_design("current")
        else:
            stored_order = []
        for requirement_id in stored_order:
            quarry.add_requirement(scoped.load_requirement(requirement_id))
        return quarry
