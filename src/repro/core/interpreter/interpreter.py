"""The Requirements Interpreter facade.

Wires mapper -> MD generation -> ETL generation and validates both
outputs before releasing them ("Quarry automates the process of
validating each requirement with regard to the MD integrity constraints
and its translation into MD schema and ETL process designs", §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.interpreter.etl_generation import EtlGenerator
from repro.core.interpreter.mapper import RequirementMapper
from repro.core.interpreter.md_generation import MDGenerator
from repro.core.requirements.model import InformationRequirement
from repro.errors import InterpretationError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.propagation import propagate
from repro.mdmodel import constraints
from repro.mdmodel.model import MDSchema
from repro.ontology.model import Ontology
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema


@dataclass
class PartialDesign:
    """A partial design for one requirement.

    Usually the interpreter's output; ``mapping`` is ``None`` when the
    partial design came from an external design tool (§2.2 allows
    plugging those in, assuming sound designs that satisfy the
    requirement — which :meth:`repro.core.quarry.Quarry.add_partial_design`
    re-checks anyway).
    """

    requirement: InformationRequirement
    mapping: "RequirementMapping | None"
    md_schema: MDSchema
    etl_flow: EtlFlow


class Interpreter:
    """Translates information requirements into partial designs."""

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        complement: bool = True,
        scd_policies: Optional[Dict[str, object]] = None,
        scd_effective_date: str = "1970-01-01",
    ) -> None:
        problems = mappings.validate(ontology, schema)
        if problems:
            raise InterpretationError(
                "source mappings are inconsistent: " + "; ".join(problems)
            )
        self._ontology = ontology
        self._schema = schema
        self._mappings = mappings
        self._mapper = RequirementMapper(ontology)
        self._md_generator = MDGenerator(
            ontology,
            mappings,
            complement=complement,
            scd_policies=scd_policies,
        )
        self._etl_generator = EtlGenerator(
            ontology, schema, mappings, scd_effective_date=scd_effective_date
        )

    @property
    def scd_policies(self):
        """The MD generator's concept -> SCD policy map (mutable)."""
        return self._md_generator.scd_policies

    def interpret(self, requirement: InformationRequirement) -> PartialDesign:
        """Produce validated partial MD + ETL designs for a requirement.

        Raises :class:`InterpretationError` when the requirement cannot
        be grounded, and propagates MD/ETL validation errors when a
        generated design would be unsound (which would indicate a bug —
        the generators are constructive).
        """
        mapping = self._mapper.map(requirement)
        md_schema = self._md_generator.generate(mapping)
        constraints.check(md_schema)
        etl_flow = self._etl_generator.generate(mapping, md_schema)
        etl_flow.check()
        propagate(etl_flow, self._schema)
        return PartialDesign(
            requirement=requirement,
            mapping=mapping,
            md_schema=md_schema,
            etl_flow=etl_flow,
        )
