"""Graph algorithms over the object-property structure of an ontology.

The Requirements Elicitor and the Requirements Interpreter both treat the
ontology as a graph whose nodes are concepts and whose edges are object
properties.  Two traversals matter for MD design:

* **to-one paths** — chains of relationships where every hop is
  functional (``N-1`` or ``1-1``).  A concept reachable from a fact
  concept over a to-one path is a valid aggregation level: each fact
  instance rolls up to exactly one instance of it.  These paths are the
  backbone of dimension-hierarchy discovery (Figure 2's suggestions).
* **join paths** — undirected shortest paths used by the ETL generator
  to connect the source tables that a requirement touches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ontology.model import Multiplicity, ObjectProperty, Ontology


@dataclass(frozen=True)
class PathStep:
    """One hop in a concept path.

    ``forward`` is True when the hop follows the property from domain to
    range, False when it traverses the property in reverse.
    """

    property_id: str
    source: str
    target: str
    forward: bool

    def multiplicity(self, ontology: Ontology) -> Multiplicity:
        """Effective multiplicity of the hop in traversal direction."""
        prop = ontology.object_property(self.property_id)
        return prop.multiplicity if self.forward else prop.multiplicity.inverse


@dataclass(frozen=True)
class ConceptPath:
    """A path between two concepts as a sequence of :class:`PathStep`."""

    steps: Tuple[PathStep, ...]

    @property
    def source(self) -> str:
        return self.steps[0].source

    @property
    def target(self) -> str:
        return self.steps[-1].target

    def __len__(self) -> int:
        return len(self.steps)

    def concepts(self) -> List[str]:
        """All concepts along the path, source first."""
        nodes = [self.steps[0].source]
        for step in self.steps:
            nodes.append(step.target)
        return nodes

    def is_to_one(self, ontology: Ontology) -> bool:
        """Whether every hop is functional in traversal direction."""
        return all(step.multiplicity(ontology).to_one for step in self.steps)


class OntologyGraph:
    """Adjacency-indexed view of an ontology for path queries."""

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._forward: Dict[str, List[ObjectProperty]] = {}
        self._backward: Dict[str, List[ObjectProperty]] = {}
        for concept in ontology.concepts():
            self._forward[concept.id] = []
            self._backward[concept.id] = []
        for prop in ontology.object_properties():
            self._forward[prop.domain].append(prop)
            self._backward[prop.range].append(prop)

    @property
    def ontology(self) -> Ontology:
        return self._ontology

    # -- neighbourhood -------------------------------------------------------

    def neighbours(self, concept_id: str) -> Iterator[PathStep]:
        """All single hops leaving ``concept_id``, in both directions."""
        self._ontology.concept(concept_id)
        for prop in self._forward.get(concept_id, ()):
            yield PathStep(prop.id, concept_id, prop.range, forward=True)
        for prop in self._backward.get(concept_id, ()):
            yield PathStep(prop.id, concept_id, prop.domain, forward=False)

    def to_one_neighbours(self, concept_id: str) -> Iterator[PathStep]:
        """Single hops from ``concept_id`` that are functional."""
        for step in self.neighbours(concept_id):
            if step.multiplicity(self._ontology).to_one:
                yield step

    # -- functional closure ----------------------------------------------------

    def to_one_closure(self, concept_id: str) -> Dict[str, ConceptPath]:
        """All concepts reachable from ``concept_id`` over to-one paths.

        Returns a map target concept -> shortest to-one path.  The source
        itself is not included.  This is the dimension-candidate set for
        a fact centred on ``concept_id``.
        """
        paths: Dict[str, ConceptPath] = {}
        queue = deque([(concept_id, ())])
        visited = {concept_id}
        while queue:
            current, steps = queue.popleft()
            for step in self.to_one_neighbours(current):
                if step.target in visited:
                    continue
                visited.add(step.target)
                path = ConceptPath(steps + (step,))
                paths[step.target] = path
                queue.append((step.target, path.steps))
        return paths

    def to_one_path(self, source: str, target: str) -> Optional[ConceptPath]:
        """Shortest to-one path from source to target, or None."""
        if source == target:
            return ConceptPath(())
        return self.to_one_closure(source).get(target)

    # -- undirected shortest paths ----------------------------------------------

    def shortest_path(self, source: str, target: str) -> Optional[ConceptPath]:
        """Shortest undirected path between two concepts, or None.

        Used by the ETL generator to find the join route between the
        source tables a requirement touches, regardless of FK direction.
        """
        self._ontology.concept(source)
        self._ontology.concept(target)
        if source == target:
            return ConceptPath(())
        queue = deque([(source, ())])
        visited = {source}
        while queue:
            current, steps = queue.popleft()
            for step in self.neighbours(current):
                if step.target in visited:
                    continue
                visited.add(step.target)
                path_steps = steps + (step,)
                if step.target == target:
                    return ConceptPath(path_steps)
                queue.append((step.target, path_steps))
        return None

    def steiner_tree_paths(self, anchor: str, targets: List[str]) -> Dict[str, ConceptPath]:
        """Shortest paths from an anchor concept to each target concept.

        A greedy approximation of the join tree connecting all concepts a
        requirement mentions: each target is connected to the anchor via
        its shortest path.  Targets that are unreachable are omitted.
        """
        paths = {}
        for target in targets:
            if target == anchor:
                continue
            path = self.shortest_path(anchor, target)
            if path is not None:
                paths[target] = path
        return paths

    def connected(self, source: str, target: str) -> bool:
        """Whether two concepts are connected ignoring edge direction."""
        return self.shortest_path(source, target) is not None

    # -- degree statistics --------------------------------------------------------

    def fan_in(self, concept_id: str) -> int:
        """Number of to-one arcs arriving at ``concept_id``.

        A concept many others roll up to (high fan-in) is a strong
        dimension-level candidate; the elicitor uses this signal when
        ranking suggestions.
        """
        count = 0
        for prop in self._backward.get(concept_id, ()):
            if prop.multiplicity.to_one:
                count += 1
        for prop in self._forward.get(concept_id, ()):
            if prop.multiplicity.inverse.to_one:
                count += 1
        return count

    def fan_out(self, concept_id: str) -> int:
        """Number of to-one arcs leaving ``concept_id``.

        A concept with high to-one fan-out references many others — the
        signature of an event/transaction concept, i.e. a fact candidate.
        """
        return sum(1 for _ in self.to_one_neighbours(concept_id))
