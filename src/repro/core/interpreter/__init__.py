"""The Requirements Interpreter.

"Each information requirement defined by a user is then translated by
the Requirements Interpreter to a partial DW design.  In particular,
Requirements Interpreter maps an input information requirement to
underlying data sources (i.e., by means of a domain ontology [...] and
corresponding source schema mappings), and semi-automatically generates
MD schema and ETL process designs that satisfy such requirement" (§2.2).

The implementation follows the GEM approach [11]:

* :mod:`repro.core.interpreter.mapper` — requirement -> ontology roles
  (fact concept identification, dimension/slicer path discovery),
* :mod:`repro.core.interpreter.md_generation` — partial MD schema,
* :mod:`repro.core.interpreter.etl_generation` — partial ETL flow,
* :mod:`repro.core.interpreter.interpreter` — the facade tying the
  stages together and validating the outputs.
"""

from repro.core.interpreter.interpreter import (
    Interpreter,
    PartialDesign,
)
from repro.core.interpreter.mapper import RequirementMapping

__all__ = ["Interpreter", "PartialDesign", "RequirementMapping"]
