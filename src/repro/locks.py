"""Named lock construction for the concurrency-disciplined modules.

Every lock in the lock-bearing modules (document store, engine caches,
artifact bus, serving layer) is created through :func:`new_lock` /
:func:`new_rlock` with a stable ``Class.attribute`` name.  The name is
the unit of the concurrency discipline:

* the static analyzer (:mod:`repro.analysis.concurrency`) reads the
  name literal at the construction site, so every acquisition maps to
  a stable lock class without type inference;
* the runtime sanitizer (enabled with ``REPRO_LOCKSAN=1``) wraps the
  lock and records per-thread acquisition stacks and the observed
  lock-order graph under the same names, so runtime observations and
  static verdicts are directly comparable.

Without ``REPRO_LOCKSAN`` these factories return plain ``threading``
primitives — zero overhead on the production path.
"""

from __future__ import annotations

import os
import threading


def sanitizing() -> bool:
    """Whether the runtime lock sanitizer is enabled for new locks."""
    return os.environ.get("REPRO_LOCKSAN", "") not in ("", "0")


def new_lock(name: str):
    """A non-reentrant mutex named for the attribute that will hold it."""
    if sanitizing():
        from repro.analysis.concurrency.sanitizer import SanitizedLock

        return SanitizedLock(name, reentrant=False)
    return threading.Lock()


def new_rlock(name: str):
    """A reentrant mutex named for the attribute that will hold it."""
    if sanitizing():
        from repro.analysis.concurrency.sanitizer import SanitizedLock

        return SanitizedLock(name, reentrant=True)
    return threading.RLock()
