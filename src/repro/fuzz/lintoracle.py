"""The static/dynamic agreement oracle: the linter versus the engine.

For every seed a random flow trial is linted and executed, and the two
verdicts must agree on the error classes the linter claims to decide:

* **Certain failures fail** — a flow flagged ``QRY202`` (an unhashable
  source value provably reaches a hashing operation) must raise in BOTH
  engine modes.  A clean execution means the taint analysis overclaimed.
* **Clean flows run clean** — a flow with no structural (``QRY00x``),
  hashability (``QRY202``/``QRY203``) or propagation (``QRY204``)
  findings must not die with a static-class error (unhashable values,
  union incompatibility, schema propagation / type-check / validation
  failures) in either mode.  Runtime value errors (``1/0``, NULL
  comparisons, cross-type comparisons the evaluator rejects lazily)
  stay out of scope: the linter does not claim to predict them.

Warnings (``QRY203``: *possibly* unhashable) deliberately block nothing
— the analysis is three-valued exactly so that "may fail" never has to
agree with anything.

Disagreements shrink like any other fuzz failure and freeze into the
regression corpus as ``"lint"`` entries.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.analysis import LintReport, lint
from repro.fuzz.datagen import inject_unhashable, make_tables
from repro.fuzz.flowgen import FlowTrial, build_flow
from repro.fuzz.oracle import execute_flow
from repro.sources.schema import SourceSchema, make_table


class LintTrial(FlowTrial):
    """A flow trial checked for static/dynamic agreement, not parity."""


def trial_lint_inputs(
    trial: FlowTrial,
) -> Tuple[SourceSchema, Dict[str, list]]:
    """A trial's declared table schemas and rows, in lint() form.

    The declared types are used as-is: injected unhashable values are
    precisely the kind of data the type system cannot see, which is the
    scenario the hashability taint exists for.
    """
    schema = SourceSchema("fuzz")
    for table in trial.tables:
        schema.add_table(make_table(table.name, list(table.schema.items())))
    rows = {table.name: table.rows for table in trial.tables}
    return schema, rows


def lint_flow_trial(trial: FlowTrial) -> LintReport:
    source_schema, rows = trial_lint_inputs(trial)
    return lint(trial.flow, source_schema=source_schema, tables=rows)


#: Codes whose presence means the linter predicts (or cannot rule out)
#: a static-class execution failure; direction A only applies without them.
_UNCLEAN = (
    "QRY001",
    "QRY002",
    "QRY003",
    "QRY004",
    "QRY005",
    "QRY202",
    "QRY203",
    "QRY204",
)

#: Error-message fingerprints of the failure classes the linter decides.
_STATIC_SUBSTRINGS = ("unhashable value", "not union-compatible")
_STATIC_PREFIXES = (
    "SchemaPropagationError:",
    "TypeCheckError:",
    "FlowValidationError:",
)


def _static_class(message: str) -> bool:
    if any(fragment in message for fragment in _STATIC_SUBSTRINGS):
        return True
    return message.startswith(_STATIC_PREFIXES)


def check_lint_trial(trial: FlowTrial) -> Optional[str]:
    """``None`` when linter and engine agree, else a description.

    The category (text before the first colon) is ``lint-divergence``
    so the shrinker preserves the failure class while minimising.
    """
    report = lint_flow_trial(trial)
    codes = set(report.codes())

    legacy = execute_flow("legacy", trial)
    columnar = execute_flow("columnar", trial)

    if "QRY202" in codes:
        # Direction B: a definite hazard must actually kill the flow.
        for mode, outcome in (("legacy", legacy), ("columnar", columnar)):
            kind, _detail = outcome
            if kind != "error":
                finding = report.by_code("QRY202")[0]
                return (
                    f"lint-divergence: QRY202 at {finding.location()} but "
                    f"{mode} executed cleanly ({finding.message})"
                )
        return None

    if codes.isdisjoint(_UNCLEAN):
        # Direction A: no static findings, so no static-class failures.
        for mode, outcome in (("legacy", legacy), ("columnar", columnar)):
            kind, detail = outcome
            if kind == "error" and _static_class(str(detail)):
                return (
                    f"lint-divergence: lint-clean flow failed in {mode} "
                    f"with static-class error {detail!r} "
                    f"(diagnostics: {report.codes()})"
                )
    return None


def build_lint_trial(seed: int) -> LintTrial:
    """The deterministic lint trial for a seed.

    Same recipe as :func:`repro.fuzz.flowgen.build_flow_trial` but on
    an independent RNG stream and with unhashable values injected far
    more often (the agreement oracle's most interesting region).
    """
    rng = random.Random(f"lint:{seed}")
    tables = make_tables(rng)
    notes = []
    if rng.random() < 0.5 and inject_unhashable(rng, tables):
        notes.append("unhashable value injected")
    flow = build_flow(rng, tables)
    return LintTrial(tables=tables, flow=flow, seed=seed, notes=notes)


def shrink_lint_trial(trial: FlowTrial, budget: int = 250) -> FlowTrial:
    from repro.fuzz.shrink import shrink_flow_trial

    return shrink_flow_trial(trial, check=check_lint_trial, budget=budget)
