"""xRQ — the XML format for information requirements.

Mirrors the snippet in Figure 4 of the paper: a ``<cube>`` with
``<dimensions>``, ``<measures>`` (with ``<function>`` derivations),
``<slicers>`` (``<comparison>`` triples, plus a generic ``<predicate>``
escape hatch for non-triple slicers) and ``<aggregations>``.
"""

from __future__ import annotations

import datetime
import xml.etree.ElementTree as ET

from repro.core.requirements.model import (
    InformationRequirement,
    RequirementAggregation,
    RequirementDimension,
    RequirementMeasure,
    RequirementSlicer,
)
from repro.errors import XrqFormatError
from repro.mdmodel.model import AggregationFunction
from repro.xformats import xmlutil


def dumps(requirement: InformationRequirement) -> str:
    """Serialise a requirement to xRQ."""
    root = ET.Element("cube", {"id": requirement.id})
    if requirement.description:
        xmlutil.sub(root, "description", requirement.description)
    dimensions = xmlutil.sub(root, "dimensions")
    for dimension in requirement.dimensions:
        xmlutil.sub(dimensions, "concept", id=dimension.property)
    measures = xmlutil.sub(root, "measures")
    for measure in requirement.measures:
        concept = xmlutil.sub(measures, "concept", id=measure.name)
        xmlutil.sub(concept, "function", measure.expression)
    slicers = xmlutil.sub(root, "slicers")
    for slicer in requirement.slicers:
        _write_slicer(slicers, slicer)
    aggregations = xmlutil.sub(root, "aggregations")
    for aggregation in requirement.aggregations:
        element = xmlutil.sub(aggregations, "aggregation", order=aggregation.order)
        xmlutil.sub(element, "dimension", refID=aggregation.dimension)
        xmlutil.sub(element, "measure", refID=aggregation.measure)
        xmlutil.sub(element, "function", aggregation.function.value)
    return xmlutil.render(root)


def _write_slicer(parent: ET.Element, slicer: RequirementSlicer) -> None:
    triple = slicer.as_comparison()
    if triple is None:
        xmlutil.sub(parent, "predicate", slicer.predicate)
        return
    property_id, operator, value = triple
    comparison = xmlutil.sub(parent, "comparison")
    xmlutil.sub(comparison, "concept", id=property_id)
    xmlutil.sub(comparison, "operator", operator)
    value_element = xmlutil.sub(comparison, "value", _render_value(value))
    value_element.set("type", _value_type(value))


def _render_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def _value_type(value) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "decimal"
    if isinstance(value, datetime.date):
        return "date"
    return "string"


def loads(text: str) -> InformationRequirement:
    """Parse an xRQ document back into a requirement."""
    root = xmlutil.parse_document(text, "cube", XrqFormatError)
    requirement = InformationRequirement(
        id=xmlutil.attribute(root, "id", XrqFormatError),
        description=xmlutil.optional_text(root, "description") or "",
    )
    dimensions = root.find("dimensions")
    if dimensions is not None:
        for concept in dimensions.findall("concept"):
            requirement.dimensions.append(
                RequirementDimension(
                    property=xmlutil.attribute(concept, "id", XrqFormatError)
                )
            )
    measures = root.find("measures")
    if measures is not None:
        for concept in measures.findall("concept"):
            requirement.measures.append(
                RequirementMeasure(
                    name=xmlutil.attribute(concept, "id", XrqFormatError),
                    expression=xmlutil.child_text(
                        concept, "function", XrqFormatError
                    ),
                )
            )
    slicers = root.find("slicers")
    if slicers is not None:
        for element in slicers:
            requirement.slicers.append(_read_slicer(element))
    aggregations = root.find("aggregations")
    if aggregations is not None:
        for element in aggregations.findall("aggregation"):
            requirement.aggregations.append(_read_aggregation(element))
    return requirement


def _read_slicer(element: ET.Element) -> RequirementSlicer:
    if element.tag == "predicate":
        return RequirementSlicer(predicate=element.text or "")
    if element.tag != "comparison":
        raise XrqFormatError(f"unexpected slicer element <{element.tag}>")
    concept = xmlutil.child(element, "concept", XrqFormatError)
    property_id = xmlutil.attribute(concept, "id", XrqFormatError)
    operator = xmlutil.child_text(element, "operator", XrqFormatError)
    value_element = xmlutil.child(element, "value", XrqFormatError)
    literal = _parse_value(value_element)
    return RequirementSlicer(predicate=f"{property_id} {operator} {literal}")


def _parse_value(element: ET.Element) -> str:
    """Render the typed <value> back into expression syntax."""
    text = element.text or ""
    value_type = element.get("type", "string")
    if value_type == "string":
        escaped = text.replace("'", "''")
        return f"'{escaped}'"
    if value_type == "date":
        return f"date '{text}'"
    if value_type in ("integer", "decimal", "boolean"):
        return text
    raise XrqFormatError(f"unknown value type {value_type!r}")


def _read_aggregation(element: ET.Element) -> RequirementAggregation:
    order_text = xmlutil.attribute(element, "order", XrqFormatError)
    try:
        order = int(order_text)
    except ValueError:
        raise XrqFormatError(f"invalid aggregation order {order_text!r}") from None
    dimension = xmlutil.child(element, "dimension", XrqFormatError)
    measure = xmlutil.child(element, "measure", XrqFormatError)
    function = xmlutil.child_text(element, "function", XrqFormatError)
    try:
        parsed_function = AggregationFunction.parse(function)
    except Exception as exc:
        raise XrqFormatError(str(exc)) from exc
    return RequirementAggregation(
        order=order,
        dimension=xmlutil.attribute(dimension, "refID", XrqFormatError),
        measure=xmlutil.attribute(measure, "refID", XrqFormatError),
        function=parsed_function,
    )
