"""The expression compiler must be observationally identical to the
tree-walking interpreter — values, NULL semantics and error messages."""

import datetime

import pytest

from repro.errors import EvaluationError
from repro.expressions import compile_expression, evaluate, parse
from repro.expressions.compiler import compile_tree


def both(text, row):
    """(interpreter result, row_fn result, column_fn result)."""
    compiled = compile_expression(text)
    interpreted = evaluate(parse(text), row)
    via_row = compiled.row_fn(row)
    via_columns = compiled.column_fn(
        *[row[name] for name in compiled.attributes]
    )
    return interpreted, via_row, via_columns


def assert_agree(text, row, expected):
    interpreted, via_row, via_columns = both(text, row)
    assert interpreted == expected
    assert via_row == expected
    assert via_columns == expected
    # NULL and False must not be conflated by ==.
    assert (interpreted is None) == (via_row is None) == (via_columns is None)


class TestValueEquivalence:
    def test_arithmetic(self):
        assert_agree("price * (1 - discount)", {"price": 10.0, "discount": 0.1}, 9.0)

    def test_null_propagation(self):
        assert_agree("price * 2", {"price": None}, None)

    def test_comparison(self):
        assert_agree("a < b", {"a": 1, "b": 2}, True)
        assert_agree("a < b", {"a": None, "b": 2}, None)

    def test_kleene_and_or(self):
        assert_agree("a and b", {"a": None, "b": False}, False)
        assert_agree("a and b", {"a": None, "b": True}, None)
        assert_agree("a or b", {"a": None, "b": True}, True)
        assert_agree("a or b", {"a": None, "b": False}, None)

    def test_short_circuit_skips_errors(self):
        # The right operand would fail; short-circuiting must avoid it
        # exactly as the interpreter does.
        row = {"flag": False, "text": "x"}
        assert_agree("flag and text + 1 > 0", row, False)

    def test_in_list(self):
        assert_agree("n in ('a', 'b')", {"n": "a"}, True)
        assert_agree("n in ('a', 'b')", {"n": "c"}, False)
        assert_agree("n in ('a', null)", {"n": "c"}, None)

    def test_functions(self):
        assert_agree("upper(n)", {"n": "spain"}, "SPAIN")
        assert_agree("coalesce(a, 7)", {"a": None}, 7)

    def test_unary(self):
        assert_agree("-x", {"x": 3}, -3)
        assert_agree("not x", {"x": False}, True)
        assert_agree("not x", {"x": None}, None)

    def test_date_literals_via_constant_pool(self):
        compiled = compile_expression("d >= date '1997-01-01'")
        row = {"d": datetime.date(1997, 6, 1)}
        assert compiled.row_fn(row) is True
        assert "_consts[" in compiled.row_source

    def test_constant_expression_has_no_attributes(self):
        compiled = compile_expression("1 + 2 * 3")
        assert compiled.attributes == ()
        assert compiled.column_fn() == 7


class TestErrorEquivalence:
    @pytest.mark.parametrize(
        "text,row",
        [
            ("a + b", {"a": "x", "b": 1}),
            ("a / b", {"a": 1, "b": 0}),
            ("-a", {"a": "x"}),
            ("ghost + 1", {"a": 1}),
            ("nosuchfn(a)", {"a": 1}),
        ],
    )
    def test_messages_match_interpreter(self, text, row):
        with pytest.raises(EvaluationError) as interpreted:
            evaluate(parse(text), row)
        compiled = compile_expression(text)
        with pytest.raises(EvaluationError) as via_row:
            compiled.row_fn(row)
        assert str(via_row.value) == str(interpreted.value)

    def test_parse_errors_propagate(self):
        from repro.errors import ExpressionError

        with pytest.raises(ExpressionError):
            compile_expression("1 +")


class TestCachingAndStructure:
    def test_compile_cache_returns_same_object(self):
        assert compile_expression("x + 1") is compile_expression("x + 1")

    def test_parse_cache_returns_same_tree(self):
        assert parse("x + 1") is parse("x + 1")

    def test_attributes_in_first_evaluation_order(self):
        compiled = compile_expression("b + a * b - c")
        assert compiled.attributes == ("b", "a", "c")

    def test_callable_protocol_uses_row_form(self):
        compiled = compile_expression("x * 2")
        assert compiled({"x": 21}) == 42

    def test_compile_tree_direct(self):
        compiled = compile_tree(parse("x > 1"), "x > 1")
        assert compiled.text == "x > 1"
        assert compiled.column_fn(5) is True

    def test_generated_sources_are_exposed(self):
        compiled = compile_expression("x > 1 and y < 2")
        assert "def _compiled_row(row):" in compiled.row_source
        assert "def _compiled_columns(" in compiled.column_source


class TestColumnBatchEvaluation:
    def test_map_over_columns(self):
        compiled = compile_expression("price * (1 - discount)")
        columns = {
            "price": [10.0, 20.0, None],
            "discount": [0.1, 0.5, 0.2],
        }
        ordered = [columns[name] for name in compiled.attributes]
        assert list(map(compiled.column_fn, *ordered)) == [9.0, 10.0, None]
