"""Tests for the ETL Process Integrator (Figure 3, ETL side)."""

import pytest

from repro.core.integrator import EtlIntegrator
from repro.core.interpreter import Interpreter
from repro.errors import IntegrationError
from repro.etlmodel import EtlFlow
from repro.etlmodel.propagation import propagate
from repro.sources import tpch

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)

ROWS = {
    "lineitem": 6000, "orders": 1500, "customer": 150,
    "nation": 25, "region": 5, "part": 200, "partsupp": 400,
    "supplier": 10,
}


@pytest.fixture(scope="module")
def interpreter():
    return Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())


@pytest.fixture(scope="module")
def partials(interpreter):
    return {
        "IR1": interpreter.interpret(build_revenue_requirement()),
        "IR2": interpreter.interpret(build_netprofit_requirement()),
        "IR3": interpreter.interpret(build_quantity_requirement()),
    }


def consolidate_all(partials, keys, integrator=None, row_counts=None):
    integrator = integrator or EtlIntegrator()
    unified = EtlFlow(name="unified")
    result = None
    for key in keys:
        result = integrator.consolidate(
            unified, partials[key].etl_flow, row_counts=row_counts
        )
        unified = result.flow
    return unified, result


class TestReuse:
    def test_first_requirement_adds_everything(self, partials):
        __, result = consolidate_all(partials, ["IR1"])
        assert result.reused == []
        assert len(result.added) == len(partials["IR1"].etl_flow)

    def test_second_requirement_reuses_shared_prefix(self, partials):
        __, result = consolidate_all(partials, ["IR1", "IR2"])
        # IR2 shares the lineitem/partsupp/part extractions and the
        # lineitem-partsupp-part join spine with IR1.
        assert result.reuse_ratio > 0.2
        assert any("DATASTORE_lineitem" in name for name in result.reused)

    def test_identical_requirement_fully_reused(self, partials, interpreter):
        unified, __ = consolidate_all(partials, ["IR1"])
        duplicate = interpreter.interpret(build_revenue_requirement("IR1"))
        result = EtlIntegrator().consolidate(unified, duplicate.etl_flow)
        assert result.added == []
        assert result.reuse_ratio == 1.0
        assert len(result.flow) == len(unified)

    def test_unified_flow_is_valid_and_typed(self, partials):
        unified, __ = consolidate_all(partials, ["IR1", "IR2", "IR3"])
        assert unified.validate() == []
        propagate(unified, tpch.schema())

    def test_requirements_accumulate(self, partials):
        unified, __ = consolidate_all(partials, ["IR1", "IR2", "IR3"])
        assert unified.requirements == {"IR1", "IR2", "IR3"}

    def test_inputs_not_mutated(self, partials):
        before = len(partials["IR1"].etl_flow)
        consolidate_all(partials, ["IR1", "IR2"])
        assert len(partials["IR1"].etl_flow) == before


class TestWidening:
    def test_shared_dimension_branch_widened(self, partials):
        unified, result = consolidate_all(partials, ["IR1", "IR2"])
        # IR1 projects p_name into dim_Part, IR2 projects p_brand: after
        # consolidation a single branch projects both.
        loaders = [
            node for node in unified.nodes()
            if node.kind == "Loader" and node.table == "dim_Part"
        ]
        assert len(loaders) == 1
        project = next(
            node for node in unified.nodes()
            if node.kind == "Projection" and "dim_Part" in node.name
        )
        assert set(project.columns) >= {"p_name", "p_brand"}
        assert result.widened  # something was widened

    def test_widened_flow_executes_correctly(self, partials):
        from repro.engine import Database, Executor

        unified, __ = consolidate_all(partials, ["IR1", "IR2"])
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=9))
        stats = Executor(database).execute(unified)
        assert stats.loaded["fact_table_revenue"] > 0
        assert stats.loaded["fact_table_netprofit"] > 0
        part_columns = database.scan("dim_Part").attribute_names()
        assert set(part_columns) >= {"p_name", "p_brand"}


class TestCostModel:
    def test_integrated_flow_cheaper_than_separate(self, partials):
        __, result = consolidate_all(
            partials, ["IR1", "IR2"], row_counts=ROWS
        )
        assert result.cost_unified < result.cost_separate
        assert result.cost_saving > 0


class TestAlignment:
    """Equivalence-rule alignment increases found overlap (A1)."""

    def _manual_variants(self):
        from repro.etlmodel import (
            Datastore, Extraction, Loader, Selection,
        )

        def early_filter():
            flow = EtlFlow("early", requirements={"A"})
            flow.chain(
                Datastore("DATASTORE_nation", table="nation",
                          columns=("n_name", "n_nationkey")),
                Selection("SEL", predicate="n_name = 'SPAIN'"),
                Extraction("EXTRACTION_nation",
                           columns=("n_name", "n_nationkey")),
                Loader("LOAD_a", table="out_a"),
            )
            return flow

        def late_filter():
            flow = EtlFlow("late", requirements={"B"})
            flow.chain(
                Datastore("DATASTORE_nation", table="nation",
                          columns=("n_name", "n_nationkey")),
                Extraction("EXTRACTION_nation",
                           columns=("n_name", "n_nationkey")),
                Selection("SEL", predicate="n_name = 'SPAIN'"),
                Loader("LOAD_b", table="out_b"),
            )
            return flow

        return early_filter(), late_filter()

    def test_alignment_finds_reordered_overlap(self):
        early, late = self._manual_variants()
        aligned = EtlIntegrator(align=True).consolidate(early, late)
        # Everything except the loader unifies once orders align.
        assert len(aligned.added) == 1
        assert aligned.added[0].startswith("LOAD")

    def test_without_alignment_overlap_is_missed(self):
        early, late = self._manual_variants()
        unaligned = EtlIntegrator(align=False).consolidate(early, late)
        assert len(unaligned.added) > 1

    def test_alignment_never_reduces_reuse_on_generated_flows(self, partials):
        __, aligned = consolidate_all(
            partials, ["IR1", "IR2"], EtlIntegrator(align=True)
        )
        __, unaligned = consolidate_all(
            partials, ["IR1", "IR2"], EtlIntegrator(align=False)
        )
        assert len(aligned.reused) >= 0  # both are valid
        assert aligned.flow.validate() == []
        assert unaligned.flow.validate() == []


class TestLoaderConflicts:
    def test_same_table_different_content_rejected(self):
        from repro.etlmodel import Datastore, Extraction, Loader, Selection

        def flow(name, predicate):
            result = EtlFlow(name)
            result.chain(
                Datastore("D", table="t", columns=("a",)),
                Selection("S", predicate=predicate),
                Loader("L", table="same_table"),
            )
            return result

        with pytest.raises(IntegrationError):
            EtlIntegrator().consolidate(
                flow("one", "a = 'x'"), flow("two", "a = 'y'")
            )
