"""The Quarry facade: the end-to-end DW design lifecycle (Figure 1).

Wires the four components through the communication & metadata layer:

.. code-block:: text

    Requirements Elicitor -> Requirements Interpreter
        -> Design Integrator (MD + ETL) -> Design Deployer
    with every artefact stored in the MetadataRepository (xRQ/xMD/xLM).

Typical use::

    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    report = quarry.add_requirement(requirement)     # incremental design
    md, etl = quarry.unified_design()
    result = quarry.deploy("native", source_database=db)

``add_requirement`` / ``change_requirement`` / ``remove_requirement``
implement the demo's "accommodating a DW design to changes" scenario;
after every step the unified design is validated for soundness (MD
integrity constraints) and satisfiability of all requirements met so
far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.deployer import Deployer, DeploymentResult
from repro.core.integrator import (
    EtlConsolidation,
    EtlIntegrator,
    MDIntegration,
    MDIntegrator,
)
from repro.core.interpreter import Interpreter, PartialDesign
from repro.core.requirements import Elicitor
from repro.core.requirements.model import InformationRequirement
from repro.core.requirements.vocabulary import Vocabulary
from repro.errors import IntegrationError, LintError, QuarryError
from repro.engine.database import Database
from repro.etlmodel.cost import CostModel
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.complexity import ComplexityWeights, DEFAULT_WEIGHTS, analyze
from repro.mdmodel.model import MDSchema
from repro.ontology.model import Ontology
from repro.repository.metadata import MetadataRepository
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema


def _retarget_loaders(flow: EtlFlow, md_result: MDIntegration) -> EtlFlow:
    """Follow the MD integrator's renames/merges on the ETL side.

    When a partial fact merged into (or was renamed to) a differently
    named unified fact, or a partial dimension merged into another, the
    partial flow's loaders must target the *unified* table names before
    consolidation.  Returns a rewritten copy (or the input flow when no
    rename applies).
    """
    from repro.etlmodel.ops import Loader

    renames = {}
    for decision in md_result.decisions:
        if decision.partial_element == decision.unified_element:
            continue
        if decision.kind == "fact":
            renames[decision.partial_element] = decision.unified_element
        else:
            renames[f"dim_{decision.partial_element}"] = (
                f"dim_{decision.unified_element}"
            )
    if not renames:
        return flow
    rewritten = flow.copy()
    for name in rewritten.node_names():
        operation = rewritten.node(name)
        if isinstance(operation, Loader) and operation.table in renames:
            rewritten.replace_node(
                name,
                Loader(
                    name,
                    table=renames[operation.table],
                    mode=operation.mode,
                ),
            )
    return rewritten


@dataclass
class ChangeReport:
    """What one lifecycle change did."""

    requirement_id: str
    action: str  # added | changed | removed
    partial: Optional[PartialDesign] = None
    md_integration: Optional[MDIntegration] = None
    etl_consolidation: Optional[EtlConsolidation] = None


@dataclass
class DesignStatus:
    """Snapshot of the current unified design."""

    requirements: List[str]
    facts: List[str]
    dimensions: List[str]
    complexity: float
    etl_operations: int
    estimated_etl_cost: float


class Quarry:
    """End-to-end system for managing the DW design lifecycle."""

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        repository: Optional[MetadataRepository] = None,
        md_weights: ComplexityWeights = DEFAULT_WEIGHTS,
        cost_model: Optional[CostModel] = None,
        align_etl: bool = True,
        complement: bool = True,
        row_counts: Optional[Dict[str, int]] = None,
    ) -> None:
        self._ontology = ontology
        self._schema = schema
        self._mappings = mappings
        self._repository = (
            repository if repository is not None else MetadataRepository()
        )
        self._repository.save_ontology(ontology)
        self._interpreter = Interpreter(
            ontology, schema, mappings, complement=complement
        )
        self._md_weights = md_weights
        self._md_integrator = MDIntegrator(weights=md_weights)
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._etl_integrator = EtlIntegrator(
            cost_model=self._cost_model, align=align_etl
        )
        self._deployer = Deployer(source_schema=schema)
        self._row_counts = row_counts
        self._partials: Dict[str, PartialDesign] = {}
        self._order: List[str] = []
        self._unified_md = MDSchema(name="unified")
        self._unified_etl = EtlFlow(name="unified")
        # Unified design after each commit, aligned with self._order:
        # _checkpoints[i] is the state after integrating _order[:i + 1].
        # Stored by reference — integrate()/consolidate() copy their
        # inputs, so a committed snapshot is never mutated afterwards.
        self._checkpoints: List[Tuple[MDSchema, EtlFlow]] = []
        #: How many MD / ETL integration calls this instance has made —
        #: the observable that incremental changes stay sub-linear.
        self.integration_counts: Dict[str, int] = {"md": 0, "etl": 0}

    # -- component access ---------------------------------------------------

    @property
    def repository(self) -> MetadataRepository:
        return self._repository

    @property
    def deployer(self) -> Deployer:
        return self._deployer

    def elicitor(self) -> Elicitor:
        """The Requirements Elicitor backend over this domain."""
        return Elicitor(self._ontology)

    def vocabulary(self) -> Vocabulary:
        """Business-vocabulary resolution over this domain."""
        return Vocabulary(self._ontology)

    # -- lifecycle ------------------------------------------------------------

    def add_requirement(self, requirement: InformationRequirement) -> ChangeReport:
        """Interpret, integrate and validate one new requirement."""
        if requirement.id in self._partials:
            raise QuarryError(
                f"requirement {requirement.id!r} already exists; use "
                f"change_requirement"
            )
        partial = self._interpreter.interpret(requirement)
        md_result, etl_result = self._integrate_partial(partial)
        self._commit(requirement, partial, md_result, etl_result)
        return ChangeReport(
            requirement_id=requirement.id,
            action="added",
            partial=partial,
            md_integration=md_result,
            etl_consolidation=etl_result,
        )

    def add_requirement_xrq(self, xrq_text: str) -> ChangeReport:
        """Add a requirement delivered as an xRQ document.

        This is the wire format the Requirements Elicitor posts to the
        Requirements Interpreter in the original service architecture.
        """
        from repro.xformats import xrq

        return self.add_requirement(xrq.loads(xrq_text))

    def add_partial_design(
        self,
        requirement: InformationRequirement,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
    ) -> ChangeReport:
        """Integrate a partial design produced by an *external* tool.

        "Quarry allows plugging in other external design tools, with the
        assumption that the provided partial designs are sound [...] and
        that they satisfy an end-user requirement" (§2.2) — assumptions
        this method re-validates before integrating: the requirement
        must be well-formed against the ontology, the MD schema must
        meet the integrity constraints, the flow must validate, type
        and claim the requirement, and the star must carry the
        requirement's measures.
        """
        from repro.etlmodel.propagation import propagate
        from repro.mdmodel import constraints

        if requirement.id in self._partials:
            raise QuarryError(
                f"requirement {requirement.id!r} already exists; use "
                f"change_requirement"
            )
        requirement.check(self._ontology)
        constraints.check(md_schema)
        etl_flow.check()
        propagate(etl_flow, self._schema)
        if requirement.id not in etl_flow.requirements:
            raise QuarryError(
                f"external flow does not claim requirement {requirement.id!r}"
            )
        for measure in requirement.measures:
            carried = any(
                measure.name in fact.measures
                for fact in md_schema.facts.values()
            )
            if not carried:
                raise QuarryError(
                    f"external MD schema has no measure {measure.name!r}; "
                    f"it does not satisfy requirement {requirement.id!r}"
                )
        partial = PartialDesign(
            requirement=requirement,
            mapping=None,
            md_schema=md_schema,
            etl_flow=etl_flow,
        )
        md_result, etl_result = self._integrate_partial(partial)
        self._commit(requirement, partial, md_result, etl_result)
        return ChangeReport(
            requirement_id=requirement.id,
            action="added",
            partial=partial,
            md_integration=md_result,
            etl_consolidation=etl_result,
        )

    def change_requirement(self, requirement: InformationRequirement) -> ChangeReport:
        """Replace an existing requirement and rebuild the design."""
        if requirement.id not in self._partials:
            raise QuarryError(f"unknown requirement {requirement.id!r}")
        self.remove_requirement(requirement.id)
        report = self.add_requirement(requirement)
        return ChangeReport(
            requirement_id=requirement.id,
            action="changed",
            partial=report.partial,
            md_integration=report.md_integration,
            etl_consolidation=report.etl_consolidation,
        )

    def remove_requirement(self, requirement_id: str) -> ChangeReport:
        """Drop a requirement and re-integrate the ones after it.

        Integration is a deterministic left fold over the requirement
        order, so the design up to the removed requirement is untouched:
        the checkpoint just before it is restored and only the suffix is
        re-integrated.  Removing the most recent requirement therefore
        costs no integration calls at all.
        """
        if requirement_id not in self._partials:
            raise QuarryError(f"unknown requirement {requirement_id!r}")
        index = self._order.index(requirement_id)
        del self._partials[requirement_id]
        self._order.pop(index)
        self._repository.delete_requirement(requirement_id)
        self._reintegrate_from(index)
        return ChangeReport(requirement_id=requirement_id, action="removed")

    def _integrate_partial(
        self, partial: PartialDesign
    ) -> Tuple[MDIntegration, EtlConsolidation]:
        """Integrate one partial design into the current unified pair."""
        md_result = self._md_integrator.integrate(
            self._unified_md, partial.md_schema
        )
        self.integration_counts["md"] += 1
        etl_flow = _retarget_loaders(partial.etl_flow, md_result)
        etl_result = self._etl_integrator.consolidate(
            self._unified_etl, etl_flow, row_counts=self._row_counts
        )
        self.integration_counts["etl"] += 1
        return md_result, etl_result

    def _commit(self, requirement, partial, md_result, etl_result) -> None:
        self._unified_md = md_result.schema
        self._unified_etl = etl_result.flow
        self._partials[requirement.id] = partial
        self._order.append(requirement.id)
        self._checkpoints.append((self._unified_md, self._unified_etl))
        self._verify_satisfiability()
        self._repository.save_requirement(requirement)
        self._repository.save_partial_design(
            requirement.id, partial.md_schema, partial.etl_flow
        )
        self._repository.save_unified_design(
            "current", self._unified_md, self._unified_etl, list(self._order)
        )

    def rebuild(self) -> None:
        """Re-integrate every partial design from scratch.

        The pre-incremental code path, kept as the reference the
        incremental updates are verified (and benchmarked) against —
        both produce the same deterministic fold over the requirement
        order, so their results are identical.
        """
        self._reintegrate_from(0)

    def _reintegrate_from(self, start: int) -> None:
        """Restore the checkpoint before ``start`` and re-fold the rest."""
        del self._checkpoints[start:]
        if start == 0:
            self._unified_md = MDSchema(name="unified")
            self._unified_etl = EtlFlow(name="unified")
        else:
            self._unified_md, self._unified_etl = self._checkpoints[start - 1]
        for requirement_id in self._order[start:]:
            partial = self._partials[requirement_id]
            md_result, etl_result = self._integrate_partial(partial)
            self._unified_md = md_result.schema
            self._unified_etl = etl_result.flow
            self._checkpoints.append((self._unified_md, self._unified_etl))
        self._verify_satisfiability()
        self._repository.save_unified_design(
            "current", self._unified_md, self._unified_etl, list(self._order)
        )

    # -- validation ------------------------------------------------------------

    def _verify_satisfiability(self) -> None:
        """Every requirement processed so far must still be answerable."""
        problems = self.satisfiability_problems()
        if problems:
            raise IntegrationError(
                "unified design no longer satisfies all requirements: "
                + "; ".join(problems)
            )

    def satisfiability_problems(self) -> List[str]:
        """Structural satisfiability check of the unified design."""
        problems: List[str] = []
        level_properties = {
            attribute.property
            for __, level in self._unified_md.iter_levels()
            for attribute in level.attributes
            if attribute.property is not None
        }
        for requirement_id in self._order:
            requirement = self._partials[requirement_id].requirement
            fact = self._find_serving_fact(requirement)
            if fact is None:
                problems.append(
                    f"{requirement_id}: no fact carries its measures"
                )
                continue
            for dimension in requirement.dimensions:
                if dimension.property not in level_properties:
                    problems.append(
                        f"{requirement_id}: dimension atom "
                        f"{dimension.property!r} not in any level"
                    )
            if requirement_id not in self._unified_etl.requirements:
                problems.append(
                    f"{requirement_id}: unified ETL does not cover it"
                )
        return problems

    def _find_serving_fact(self, requirement):
        for fact in self._unified_md.facts.values():
            if all(
                measure.name in fact.measures
                and fact.measures[measure.name].expression == measure.expression
                for measure in requirement.measures
            ):
                return fact
        return None

    # -- views -------------------------------------------------------------------

    def unified_design(self) -> Tuple[MDSchema, EtlFlow]:
        """The current unified MD schema and ETL flow."""
        return self._unified_md, self._unified_etl

    def requirements(self) -> List[InformationRequirement]:
        return [
            self._partials[requirement_id].requirement
            for requirement_id in self._order
        ]

    def partial_design(self, requirement_id: str) -> PartialDesign:
        try:
            return self._partials[requirement_id]
        except KeyError:
            raise QuarryError(f"unknown requirement {requirement_id!r}") from None

    def status(self) -> DesignStatus:
        """Summary metrics of the current unified design."""
        report = analyze(self._unified_md, self._md_weights)
        return DesignStatus(
            requirements=list(self._order),
            facts=list(self._unified_md.facts),
            dimensions=list(self._unified_md.dimensions),
            complexity=report.score,
            etl_operations=len(self._unified_etl),
            estimated_etl_cost=self._cost_model.total(
                self._unified_etl, self._row_counts
            ),
        )

    # -- static analysis ---------------------------------------------------------------

    def lint(self, *, disable=(), only=None):
        """Lint the unified design: ETL flow plus MD schema.

        Returns a merged :class:`repro.analysis.LintReport`.  The flow
        is linted against the source schema (typed datastores) and the
        MD schema against the domain ontology (to-one reachability).
        """
        from repro.analysis import lint as run_lint

        flow_report = run_lint(
            self._unified_etl,
            source_schema=self._schema,
            disable=disable,
            only=only,
        )
        md_report = run_lint(
            self._unified_md,
            ontology=self._ontology,
            disable=disable,
            only=only,
        )
        return flow_report.merged_with(md_report)

    # -- deployment ------------------------------------------------------------------

    def deploy(
        self,
        platform: str,
        source_database: Optional[Database] = None,
        lint_gate: bool = True,
    ) -> DeploymentResult:
        """Deploy the unified design; records the artefacts in the repo.

        Deployment is gated on the linter: ERROR-severity findings raise
        :class:`repro.errors.LintError` before anything is deployed,
        while warnings are reported through the ``lint`` artifact of the
        result (and the recorded deployment).  Pass ``lint_gate=False``
        to skip the gate.
        """
        lint_report = None
        if lint_gate:
            lint_report = self.lint()
            if not lint_report.ok:
                raise LintError(lint_report.errors)
        result = self._deployer.deploy(
            self._unified_md,
            self._unified_etl,
            platform,
            source_database=source_database,
        )
        if lint_report is not None:
            result.artifacts["lint"] = lint_report.render()
        self._repository.record_deployment(
            "current", platform, dict(result.artifacts)
        )
        return result

    # -- persistence --------------------------------------------------------------------

    def save_to(self, path) -> None:
        """Persist the metadata repository (requirements + designs)."""
        self._repository.save_to(path)

    @classmethod
    def load_from(
        cls,
        path,
        schema: SourceSchema,
        mappings: SourceMappings,
        **kwargs,
    ) -> "Quarry":
        """Resume a design session from a persisted repository.

        The ontology is read back from the repository; requirements are
        re-added in their stored order (re-running interpretation keeps
        the code path single and the state consistent).
        """
        repository = MetadataRepository.load_from(path)
        ontology_names = repository.ontology_names()
        if not ontology_names:
            raise QuarryError("repository holds no ontology")
        ontology = repository.load_ontology(ontology_names[0])
        quarry = cls(ontology, schema, mappings, **kwargs)
        if "current" in repository.unified_design_names():
            __, __, stored_order = repository.load_unified_design("current")
        else:
            stored_order = []
        for requirement_id in stored_order:
            quarry.add_requirement(repository.load_requirement(requirement_id))
        return quarry
