"""Graph algorithms over the object-property structure of an ontology.

The Requirements Elicitor and the Requirements Interpreter both treat the
ontology as a graph whose nodes are concepts and whose edges are object
properties.  Two traversals matter for MD design:

* **to-one paths** — chains of relationships where every hop is
  functional (``N-1`` or ``1-1``).  A concept reachable from a fact
  concept over a to-one path is a valid aggregation level: each fact
  instance rolls up to exactly one instance of it.  These paths are the
  backbone of dimension-hierarchy discovery (Figure 2's suggestions).
* **join paths** — undirected shortest paths used by the ETL generator
  to connect the source tables that a requirement touches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ontology.model import Multiplicity, ObjectProperty, Ontology


@dataclass(frozen=True)
class PathStep:
    """One hop in a concept path.

    ``forward`` is True when the hop follows the property from domain to
    range, False when it traverses the property in reverse.
    """

    property_id: str
    source: str
    target: str
    forward: bool

    def multiplicity(self, ontology: Ontology) -> Multiplicity:
        """Effective multiplicity of the hop in traversal direction."""
        prop = ontology.object_property(self.property_id)
        return prop.multiplicity if self.forward else prop.multiplicity.inverse


@dataclass(frozen=True)
class ConceptPath:
    """A path between two concepts as a sequence of :class:`PathStep`."""

    steps: Tuple[PathStep, ...]

    @property
    def source(self) -> str:
        return self.steps[0].source

    @property
    def target(self) -> str:
        return self.steps[-1].target

    def __len__(self) -> int:
        return len(self.steps)

    def concepts(self) -> List[str]:
        """All concepts along the path, source first."""
        nodes = [self.steps[0].source]
        for step in self.steps:
            nodes.append(step.target)
        return nodes

    def is_to_one(self, ontology: Ontology) -> bool:
        """Whether every hop is functional in traversal direction."""
        return all(step.multiplicity(ontology).to_one for step in self.steps)


class OntologyGraph:
    """Adjacency-indexed view of an ontology for path queries.

    The adjacency (per-concept hop lists, split into all hops and
    functional hops) is derived once per ontology *generation* and the
    to-one closures are memoised per source concept.  Any mutation of
    the underlying ontology bumps its generation counter, which drops
    every derived structure here — a stale closure is never served.

    ``stats`` counts cache behaviour (``closure_computes``,
    ``closure_hits``, ``bfs_expansions``, ``rebuilds``) so tests and
    benchmarks can assert the cheap path was actually taken.
    """

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._generation = -1
        self._steps: Dict[str, Tuple[PathStep, ...]] = {}
        self._to_one_steps: Dict[str, Tuple[PathStep, ...]] = {}
        self._closures: Dict[str, Dict[str, ConceptPath]] = {}
        self.stats: Dict[str, int] = {
            "closure_computes": 0,
            "closure_hits": 0,
            "bfs_expansions": 0,
            "rebuilds": 0,
        }
        self._refresh()

    @property
    def ontology(self) -> Ontology:
        return self._ontology

    # -- cache upkeep --------------------------------------------------------

    def _ensure_current(self) -> None:
        if self._ontology.generation != self._generation:
            self._refresh()

    def _refresh(self) -> None:
        """Re-derive the adjacency for the ontology's current generation."""
        self._generation = self._ontology.generation
        forward: Dict[str, List[ObjectProperty]] = {}
        backward: Dict[str, List[ObjectProperty]] = {}
        for concept in self._ontology.concepts():
            forward[concept.id] = []
            backward[concept.id] = []
        for prop in self._ontology.object_properties():
            forward[prop.domain].append(prop)
            backward[prop.range].append(prop)
        self._steps = {}
        self._to_one_steps = {}
        for concept_id in forward:
            steps = [
                PathStep(prop.id, concept_id, prop.range, forward=True)
                for prop in forward[concept_id]
            ] + [
                PathStep(prop.id, concept_id, prop.domain, forward=False)
                for prop in backward[concept_id]
            ]
            self._steps[concept_id] = tuple(steps)
            self._to_one_steps[concept_id] = tuple(
                step
                for step in steps
                if step.multiplicity(self._ontology).to_one
            )
        self._closures.clear()
        self.stats["rebuilds"] += 1

    # -- neighbourhood -------------------------------------------------------

    def neighbours(self, concept_id: str) -> Iterator[PathStep]:
        """All single hops leaving ``concept_id``, in both directions."""
        self._ensure_current()
        self._ontology.concept(concept_id)
        return iter(self._steps.get(concept_id, ()))

    def to_one_neighbours(self, concept_id: str) -> Iterator[PathStep]:
        """Single hops from ``concept_id`` that are functional."""
        self._ensure_current()
        self._ontology.concept(concept_id)
        return iter(self._to_one_steps.get(concept_id, ()))

    # -- functional closure ----------------------------------------------------

    def to_one_closure(
        self, concept_id: str, use_cache: bool = True
    ) -> Dict[str, ConceptPath]:
        """All concepts reachable from ``concept_id`` over to-one paths.

        Returns a map target concept -> shortest to-one path.  The source
        itself is not included.  This is the dimension-candidate set for
        a fact centred on ``concept_id``.  Pass ``use_cache=False`` to
        bypass the memo (benchmark baseline); the returned dict is a
        fresh copy either way, safe for the caller to mutate.
        """
        self._ensure_current()
        self._ontology.concept(concept_id)
        if use_cache:
            cached = self._closures.get(concept_id)
            if cached is not None:
                self.stats["closure_hits"] += 1
                return dict(cached)
        paths = self._compute_to_one_closure(concept_id)
        if use_cache:
            self._closures[concept_id] = paths
        return dict(paths)

    def _compute_to_one_closure(self, concept_id: str) -> Dict[str, ConceptPath]:
        paths: Dict[str, ConceptPath] = {}
        queue = deque([(concept_id, ())])
        visited = {concept_id}
        self.stats["closure_computes"] += 1
        while queue:
            current, steps = queue.popleft()
            self.stats["bfs_expansions"] += 1
            for step in self._to_one_steps.get(current, ()):
                if step.target in visited:
                    continue
                visited.add(step.target)
                path = ConceptPath(steps + (step,))
                paths[step.target] = path
                queue.append((step.target, path.steps))
        return paths

    def to_one_path(self, source: str, target: str) -> Optional[ConceptPath]:
        """Shortest to-one path from source to target, or None.

        Target-directed: the BFS stops as soon as ``target`` is reached
        instead of materialising the whole closure.  A closure already
        cached for ``source`` is used directly.
        """
        self._ensure_current()
        self._ontology.concept(source)
        if source == target:
            return ConceptPath(())
        cached = self._closures.get(source)
        if cached is not None:
            self.stats["closure_hits"] += 1
            return cached.get(target)
        queue = deque([(source, ())])
        visited = {source}
        while queue:
            current, steps = queue.popleft()
            self.stats["bfs_expansions"] += 1
            for step in self._to_one_steps.get(current, ()):
                if step.target in visited:
                    continue
                visited.add(step.target)
                path_steps = steps + (step,)
                if step.target == target:
                    return ConceptPath(path_steps)
                queue.append((step.target, path_steps))
        return None

    # -- undirected shortest paths ----------------------------------------------

    def shortest_path(self, source: str, target: str) -> Optional[ConceptPath]:
        """Shortest undirected path between two concepts, or None.

        Used by the ETL generator to find the join route between the
        source tables a requirement touches, regardless of FK direction.
        Early-exits the moment the target is discovered.
        """
        self._ensure_current()
        self._ontology.concept(source)
        self._ontology.concept(target)
        if source == target:
            return ConceptPath(())
        queue = deque([(source, ())])
        visited = {source}
        while queue:
            current, steps = queue.popleft()
            self.stats["bfs_expansions"] += 1
            for step in self._steps.get(current, ()):
                if step.target in visited:
                    continue
                visited.add(step.target)
                path_steps = steps + (step,)
                if step.target == target:
                    return ConceptPath(path_steps)
                queue.append((step.target, path_steps))
        return None

    def steiner_tree_paths(self, anchor: str, targets: List[str]) -> Dict[str, ConceptPath]:
        """Shortest paths from an anchor concept to each target concept.

        A greedy approximation of the join tree connecting all concepts a
        requirement mentions: each target is connected to the anchor via
        its shortest path.  Targets that are unreachable are omitted.
        """
        paths = {}
        for target in targets:
            if target == anchor:
                continue
            path = self.shortest_path(anchor, target)
            if path is not None:
                paths[target] = path
        return paths

    def connected(self, source: str, target: str) -> bool:
        """Whether two concepts are connected ignoring edge direction."""
        return self.shortest_path(source, target) is not None

    # -- degree statistics --------------------------------------------------------

    def fan_in(self, concept_id: str) -> int:
        """Number of to-one arcs arriving at ``concept_id``.

        A concept many others roll up to (high fan-in) is a strong
        dimension-level candidate; the elicitor uses this signal when
        ranking suggestions.
        """
        self._ensure_current()
        self._ontology.concept(concept_id)
        return sum(
            1
            for step in self._steps.get(concept_id, ())
            if step.multiplicity(self._ontology).inverse.to_one
        )

    def fan_out(self, concept_id: str) -> int:
        """Number of to-one arcs leaving ``concept_id``.

        A concept with high to-one fan-out references many others — the
        signature of an event/transaction concept, i.e. a fact candidate.
        """
        self._ensure_current()
        self._ontology.concept(concept_id)
        return len(self._to_one_steps.get(concept_id, ()))
