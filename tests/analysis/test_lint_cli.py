"""End-to-end tests for ``python -m repro.lint``."""

import json

import pytest

from repro.expressions.types import ScalarType
from repro.fuzz.corpus import lint_entry, save_entry
from repro.fuzz.datagen import TableSpec
from repro.fuzz.lintoracle import LintTrial
from repro.lint import main
from repro.xformats import xlm

from tests.analysis.conftest import build_acceptance_flow


@pytest.fixture()
def acceptance_json(tmp_path):
    """The acceptance scenario frozen as a corpus-format lint entry."""
    flow, tables = build_acceptance_flow()
    trial = LintTrial(
        tables=[
            TableSpec(
                name="a",
                schema={"id": ScalarType.INTEGER, "x": ScalarType.INTEGER},
                rows=tables["a"],
            ),
            TableSpec(
                name="b",
                schema={"id": ScalarType.INTEGER, "y": ScalarType.INTEGER},
                rows=tables["b"],
            ),
        ],
        flow=flow,
        seed=None,
    )
    path = tmp_path / "acceptance_lint.json"
    save_entry(path, lint_entry(trial, "acceptance scenario"))
    return path


def test_no_arguments_is_usage_error(capsys):
    assert main([]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "QRY001" in out and "QRY413" in out


def test_corpus_entry_reports_all_three_bugs(acceptance_json, capsys):
    assert main([str(acceptance_json)]) == 1  # QRY202 is an ERROR
    out = capsys.readouterr().out
    for code, location in [
        ("QRY101", "widen.z"),
        ("QRY202", "match.id"),
        ("QRY302", "impossible"),
    ]:
        assert f"{code}" in out and location in out


def test_json_output(acceptance_json, capsys):
    assert main(["--json", str(acceptance_json)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    (report,) = payload["reports"]
    codes = {d["code"] for d in report["diagnostics"]}
    assert codes == {"QRY101", "QRY202", "QRY302"}


def test_only_and_disable(acceptance_json, capsys):
    # Warnings alone exit 0.
    assert main(["--only", "QRY302", str(acceptance_json)]) == 0
    assert "QRY302" in capsys.readouterr().out
    assert main(["--disable", "QRY202", str(acceptance_json)]) == 0


def test_unknown_rule_code_is_usage_error(acceptance_json, capsys):
    assert main(["--only", "QRY999", str(acceptance_json)]) == 2
    assert "QRY999" in capsys.readouterr().err


def test_xlm_without_rows_lints_structurally(tmp_path, capsys):
    flow, _tables = build_acceptance_flow()
    path = tmp_path / "acceptance.xlm"
    path.write_text(xlm.dumps(flow))
    # No rows: the hashability ERROR disappears, the satisfiability
    # warning (pure predicate reasoning) and the dead column stay.
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "QRY302" in out
    assert "QRY202" not in out


def test_directory_collects_lintable_files(tmp_path, acceptance_json, capsys):
    assert main([str(tmp_path)]) == 1
    assert "QRY202" in capsys.readouterr().out


def test_missing_file_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "ghost.xlm")]) == 2
    assert "error:" in capsys.readouterr().err


def test_unsupported_suffix_is_usage_error(tmp_path, capsys):
    path = tmp_path / "notes.txt"
    path.write_text("hello")
    assert main([str(path)]) == 2
    assert "cannot lint" in capsys.readouterr().err


def test_demo_design_lints_clean(capsys):
    assert main(["--demo"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s), 1 info(s)" in out
    assert "QRY412" in out
