"""Design-evolution operators and SCD policy threading, end to end.

Four operator families (`rename_concept`, `split_concept`,
`merge_concepts`, `retype_property`) evolve a live design session:
affected partial designs are re-interpreted and the unified design
re-folds from the earliest affected checkpoint — never from scratch.
The invariants pinned here:

* the incrementally evolved design is byte-identical to ``rebuild()``
  and to the artifact-bus replay (``replay_unified_design``),
* every operator publishes a typed ``design.evolved`` envelope,
* a failing operator rolls back *everything* (ontology, mappings,
  partials, bus) — the design is indistinguishable from before,
* SCD policies thread from the session constructor to the generated
  MD levels, ETL flows and DDL,
* a versioned dimension keeps its history across native redeploys.
"""

import pytest

from repro.core.quarry import Quarry
from repro.core.services import evolution as evolution_module
from repro.engine import Database
from repro.errors import EvolutionError, QuarryError
from repro.expressions.types import ScalarType
from repro.mdmodel.model import SCDPolicy
from repro.sources import tpch
from repro.xformats import xlm, xmd

from tests.core.conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)


def make_quarry(**kwargs) -> Quarry:
    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings(), **kwargs)
    quarry.add_requirement(build_revenue_requirement("IR1"))
    quarry.add_requirement(build_netprofit_requirement("IR2"))
    quarry.add_requirement(build_quantity_requirement("IR3"))
    return quarry


def fingerprint(quarry: Quarry):
    md_schema, etl_flow = quarry.unified_design()
    return xmd.dumps(md_schema), xlm.dumps(etl_flow)


def assert_invariants(quarry: Quarry):
    """Incremental == replay == rebuild, byte for byte."""
    incremental = fingerprint(quarry)
    md_schema, etl_flow = quarry.session.replay_unified_design()
    assert (xmd.dumps(md_schema), xlm.dumps(etl_flow)) == incremental
    quarry.rebuild()
    assert fingerprint(quarry) == incremental


class TestRename:
    def test_rename_updates_only_affected(self):
        quarry = make_quarry()
        report = quarry.rename_concept("Supplier", "Vendor")
        assert report.operator == "rename_concept"
        assert report.affected == ["IR1"]  # IR2/IR3 never mention Supplier
        assert report.refolded_from == 0
        md_schema, __ = quarry.unified_design()
        assert "Vendor" in md_schema.dimensions
        assert "Supplier" not in md_schema.dimensions
        assert_invariants(quarry)

    def test_rename_rekeys_scd_policy(self):
        quarry = make_quarry(scd_policies={"Supplier": "type2"})
        quarry.rename_concept("Supplier", "Vendor")
        md_schema, __ = quarry.unified_design()
        level = md_schema.dimension("Vendor").level("Vendor")
        assert level.scd_policy is SCDPolicy.TYPE2

    def test_rename_to_existing_concept_fails(self):
        quarry = make_quarry()
        before = fingerprint(quarry)
        with pytest.raises(EvolutionError):
            quarry.rename_concept("Supplier", "Part")
        assert fingerprint(quarry) == before

    def test_evolution_envelope_published(self):
        quarry = make_quarry()
        quarry.rename_concept("Supplier", "Vendor")
        envelopes = quarry.session.bus.events(
            evolution_module.TOPIC_EVOLUTION
        )
        assert [e.kind for e in envelopes] == [evolution_module.KIND_EVOLVED]
        payload = envelopes[0].payload
        assert payload["operator"] == "rename_concept"
        assert payload["affected"] == ["IR1"]


class TestSplitAndMerge:
    def test_split_carves_same_table_concept(self):
        quarry = make_quarry()
        report = quarry.split_concept("Part", "Brand", ["Part_p_brand"])
        assert sorted(report.affected) == ["IR1", "IR2"]
        md_schema, __ = quarry.unified_design()
        # IR2 groups by Part_p_brand, so Brand shows up as a dimension.
        assert "Brand" in md_schema.dimensions
        assert_invariants(quarry)

    def test_split_then_merge_restores_design(self):
        quarry = make_quarry()
        before = fingerprint(quarry)
        quarry.split_concept("Part", "Brand", ["Part_p_brand"])
        quarry.merge_concepts("Brand", "Part")
        assert fingerprint(quarry) == before
        assert_invariants(quarry)

    def test_split_design_deploys_natively(self):
        quarry = make_quarry()
        quarry.split_concept("Part", "Brand", ["Part_p_brand"])
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=21))
        result = quarry.deploy("native", source_database=database)
        assert result.database.has_table("dim_Brand")
        assert result.database.scan("dim_Brand").rows

    def test_merge_different_tables_fails_and_rolls_back(self):
        quarry = make_quarry()
        before = fingerprint(quarry)
        events_before = len(quarry.session.bus.events())
        with pytest.raises(EvolutionError, match="different tables"):
            quarry.merge_concepts("Region", "Supplier")
        assert fingerprint(quarry) == before
        # Rollback erased the marker: no half-published envelopes.
        assert len(quarry.session.bus.events()) == events_before
        assert_invariants(quarry)

    def test_split_unknown_property_fails(self):
        quarry = make_quarry()
        with pytest.raises(EvolutionError):
            quarry.split_concept("Part", "Brand", ["Supplier_s_name"])


class TestRetype:
    def test_retype_reinterprets_referencing_requirements(self):
        quarry = make_quarry()
        report = quarry.retype_property("Lineitem_l_quantity", "decimal")
        assert sorted(report.affected) == ["IR2", "IR3"]
        md_schema, __ = quarry.unified_design()
        measure = md_schema.fact("fact_table_quantity").measure("quantity")
        assert measure.type is ScalarType.DECIMAL
        assert_invariants(quarry)

    def test_retype_breaking_a_requirement_rolls_back(self):
        quarry = make_quarry()
        before = fingerprint(quarry)
        # IR1 slices on Nation_n_name = 'SPAIN'; a decimal n_name can
        # no longer be compared against a string literal.
        with pytest.raises(QuarryError):
            quarry.retype_property("Nation_n_name", "decimal")
        assert fingerprint(quarry) == before
        ontology = quarry.session.evolution._ontology
        prop = ontology.datatype_property("Nation_n_name")
        assert prop.range is ScalarType.STRING  # domain state restored
        assert_invariants(quarry)


class TestScdThreading:
    """SCD policies flow constructor -> MD -> ETL -> DDL."""

    def test_policy_lands_on_base_level(self):
        quarry = make_quarry(scd_policies={"Supplier": "type2"})
        md_schema, __ = quarry.unified_design()
        dimension = md_schema.dimension("Supplier")
        assert dimension.level("Supplier").scd_policy is SCDPolicy.TYPE2
        # Conformed non-base levels stay type0.
        assert dimension.level("Nation").scd_policy is SCDPolicy.TYPE0

    def test_etl_grows_scd_update_node(self):
        quarry = make_quarry(
            scd_policies={"Supplier": "type2"},
            scd_effective_date="2024-01-01",
        )
        __, etl_flow = quarry.unified_design()
        nodes = [n for n in etl_flow.nodes() if n.kind == "SCDUpdate"]
        assert [n.table for n in nodes] == ["dim_Supplier"]
        assert nodes[0].policy == "type2"
        assert nodes[0].business_keys == ("s_name",)
        assert nodes[0].effective_date == "2024-01-01"

    def test_type0_design_has_no_scd_nodes(self):
        quarry = make_quarry()
        __, etl_flow = quarry.unified_design()
        assert not [n for n in etl_flow.nodes() if n.kind == "SCDUpdate"]

    def test_ddl_has_window_columns_and_views(self):
        quarry = make_quarry(scd_policies={"Supplier": "type2"})
        result = quarry.deploy("postgres")
        ddl_text = result.artifacts["ddl"]
        assert "scd_version" in ddl_text
        assert "scd_valid_from" in ddl_text
        assert '"dim_Supplier_current"' in ddl_text
        assert "_pit" in ddl_text  # point-in-time join view

    def test_lint_stays_clean_with_policies(self):
        quarry = make_quarry(scd_policies={"Supplier": "type2"})
        report = quarry.lint()
        assert report.errors == []


class TestHistoryAcrossDeploys:
    def test_versioned_dimension_keeps_history(self):
        """A nation change between loads closes the old supplier row
        and opens version 2; the redeploy must not truncate history."""
        database = Database()
        rows = tpch.generate(0.2, seed=21)
        database.load_source(tpch.schema(), rows)

        first = make_quarry(
            scd_policies={"Supplier": "type2"},
            scd_effective_date="2024-01-01",
        )
        first.deploy("native", source_database=database)
        loaded = database.scan("dim_Supplier").rows
        assert all(row["scd_version"] == 1 for row in loaded)
        supplier = loaded[0]["s_name"]
        old_nation = loaded[0]["n_name"]

        # Move the first supplier to a different nation at the source.
        database.truncate("supplier")
        for index, row in enumerate(rows["supplier"]):
            row = dict(row)
            if index == 0:
                row["s_nationkey"] = (row["s_nationkey"] + 1) % 25
            database.insert("supplier", row)

        second = make_quarry(
            scd_policies={"Supplier": "type2"},
            scd_effective_date="2024-06-15",
        )
        second.deploy("native", source_database=database)
        history = [
            row
            for row in database.scan("dim_Supplier").rows
            if row["s_name"] == supplier
        ]
        closed = [row for row in history if row["scd_is_current"] is False]
        open_rows = [row for row in history if row["scd_is_current"] is True]
        assert len(closed) == 1 and len(open_rows) == 1
        assert closed[0]["n_name"] == old_nation
        assert str(closed[0]["scd_valid_to"]) == "2024-06-15"
        assert open_rows[0]["scd_version"] == 2
        assert open_rows[0]["n_name"] != old_nation

    def test_unversioned_dimensions_still_truncate(self):
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=21))
        quarry = make_quarry()
        quarry.deploy("native", source_database=database)
        first = [dict(r) for r in database.scan("dim_Supplier").rows]
        quarry.deploy("native", source_database=database)
        assert database.scan("dim_Supplier").rows == first  # no doubling
