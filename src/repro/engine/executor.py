"""Executor for logical ETL flows — the Pentaho PDI stand-in.

Runs an :class:`repro.etlmodel.flow.EtlFlow` against a
:class:`repro.engine.database.Database` and reports per-node row counts,
wall-clock time and throughput, so the "overall execution time" quality
factor of the demo can be *measured*, not only estimated.

Two execution modes share one dispatch skeleton:

* ``"columnar"`` (default) — the compiled-columnar core: operations run
  over :class:`repro.engine.columnar.ColumnarRelation` column arrays,
  predicates and derivations are lowered to Python closures by
  :mod:`repro.expressions.compiler` (no per-row tree walking), adjacent
  Selection/Projection/Extraction/DerivedAttribute/Rename chains are
  fused into a single pass over the data, and loads go through the
  database's bulk column path.
* ``"legacy"`` — the original row-at-a-time interpreter over dict rows,
  kept as the semantic reference: ``benchmarks/run_engine`` gates the
  columnar path on bit-identical results against this mode.
* ``"planned"`` — the columnar core behind the statistics-driven
  cost-based rewrite pipeline of :mod:`repro.planner`: the flow is
  rewritten (selection/projection pushdown, join reordering, build-side
  choice) before execution and per-node cardinality estimates are
  attached to the stats for q-error reporting.
* ``"parallel"`` — the columnar core with partitioned execution:
  relations are split into contiguous row chunks and the fused chains,
  selections, derivations, join probes and grouping scans run across a
  worker pool (:mod:`repro.engine.parallel`), with chunk results merged
  in chunk order so results stay byte-identical to ``"columnar"``.
  ``pool="thread"`` (default) shares columns zero-copy across a
  ``ThreadPoolExecutor``; ``pool="process"`` ships chunks to a
  ``ProcessPoolExecutor`` through the shared-memory column transport
  of :mod:`repro.engine.shm` and recompiles expressions worker-side.
  Small inputs (below ``parallel_row_threshold``; the default is
  pool-aware, since process dispatch costs far more per chunk than
  thread dispatch) fall back to the serial kernels.

Structural bookkeeping is shared and cheap: the topological order is
computed once per ``execute()`` and intermediate results are released by
a per-node consumer countdown (O(V+E) overall, not O(n²)).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.engine.columnar import (
    ColumnarRelation,
    aggregate_values,
    hash_aggregate,
    hash_join,
    surrogate_keys,
    unhashable_key_error,
)
from repro.engine.parallel import (
    DEFAULT_WORKERS,
    ChainSpec,
    build_join_index,
    chunk_ranges,
    compile_chain_spec,
    concat_parts,
    default_row_threshold,
    derive_chunk,
    filter_chunk,
    gather_join,
    group_chunk,
    join_chunk,
    merge_group_chunks,
    process_chain_chunk,
    process_derive_chunk,
    process_filter_chunk,
    process_group_chunk,
    process_probe_chunk,
    run_chain_chunk,
)
from repro.engine.shm import ColumnTransport, SharedObject, process_context
from repro.engine.database import Database, TableDef
from repro.engine.relation import Relation
from repro.etlmodel.flow import EtlFlow
from repro.engine.scd import scd_merge
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Extraction,
    Join,
    JoinType,
    Loader,
    Projection,
    Rename,
    SCDUpdate,
    Selection,
    Sort,
    SurrogateKey,
)
from repro.expressions import evaluate, parse
from repro.expressions.compiler import CompiledExpression, compile_expression
from repro.expressions.types import ScalarType


@dataclass
class NodeStats:
    """Row counts and elapsed time of one executed node."""

    name: str
    kind: str
    input_rows: int
    output_rows: int
    seconds: float
    #: The planner's cardinality estimate (``planned`` mode only).
    estimated_rows: Optional[float] = None

    @property
    def rows_per_second(self) -> float:
        """Throughput of the node (input rows driven through it)."""
        rows = max(self.input_rows, self.output_rows)
        if self.seconds <= 0.0:
            return 0.0
        return rows / self.seconds

    @property
    def q_error(self) -> Optional[float]:
        """The q-error of the planner's estimate: ``max(est/act, act/est)``
        with both sides floored at one row, so 1.0 is a perfect estimate.
        ``None`` outside ``planned`` mode."""
        if self.estimated_rows is None:
            return None
        estimated = max(self.estimated_rows, 1.0)
        actual = max(float(self.output_rows), 1.0)
        return max(estimated / actual, actual / estimated)


@dataclass
class ExecutionStats:
    """Execution report of one flow run."""

    flow: str
    nodes: List[NodeStats] = field(default_factory=list)
    seconds: float = 0.0
    loaded: Dict[str, int] = field(default_factory=dict)

    def node(self, name: str) -> NodeStats:
        for stats in self.nodes:
            if stats.name == name:
                return stats
        raise KeyError(name)

    @property
    def total_rows_processed(self) -> int:
        return sum(stats.input_rows for stats in self.nodes)


#: Operation kinds a fused single-pass chain may contain.
_FUSABLE_KINDS = frozenset(
    {"Selection", "Projection", "Extraction", "DerivedAttribute", "Rename"}
)

#: kind -> method-name dispatch tables (resolved per instance so the
#: methods are bound); replaces the old isinstance chain.
_COLUMNAR_DISPATCH = {
    "Datastore": "_scan_columnar",
    "Extraction": "_project_columnar",
    "Projection": "_project_columnar",
    "Selection": "_filter_columnar",
    "Join": "_join_columnar",
    "Aggregation": "_aggregate_columnar",
    "DerivedAttribute": "_derive_columnar",
    "Rename": "_rename_columnar",
    "Union": "_union_columnar",
    "SurrogateKey": "_surrogate_columnar",
    "Sort": "_sort_columnar",
    "Distinct": "_distinct_columnar",
    "SCDUpdate": "_scd_columnar",
    "Loader": "_load_columnar",
}

#: ``parallel`` mode: the columnar table with the partitionable
#: operators swapped for their chunked kernels.
_PARALLEL_OVERRIDES = {
    "Selection": "_filter_parallel",
    "DerivedAttribute": "_derive_parallel",
    "Join": "_join_parallel",
    "Aggregation": "_aggregate_parallel",
}

_LEGACY_DISPATCH = {
    "Datastore": "_scan_legacy",
    "Extraction": "_project_legacy",
    "Projection": "_project_legacy",
    "Selection": "_filter_legacy",
    "Join": "_join_legacy",
    "Aggregation": "_aggregate_legacy",
    "DerivedAttribute": "_derive_legacy",
    "Rename": "_rename_legacy",
    "Union": "_union_legacy",
    "SurrogateKey": "_surrogate_legacy",
    "Sort": "_sort_legacy",
    "Distinct": "_distinct_legacy",
    "SCDUpdate": "_scd_legacy",
    "Loader": "_load_legacy",
}


def fusion_plan(
    flow: EtlFlow,
    order: List[str],
    inputs_of: Dict[str, List[str]],
) -> Tuple[Dict[str, List[str]], frozenset]:
    """Find maximal fusable unary chains.

    A chain is a run of Selection/Projection/Extraction/
    DerivedAttribute/Rename nodes where each link is the sole
    consumer of its predecessor.  Returns ``{head: [chain...]}``
    plus the set of non-head members to skip in the main loop.

    Module-level so the planner can anticipate which chains the engine
    will fuse (its fusion veto keys on the chain heads found here).
    """
    chains: Dict[str, List[str]] = {}
    absorbed: set = set()
    for name in order:
        if name in absorbed or name in chains:
            continue
        if flow.node(name).kind not in _FUSABLE_KINDS:
            continue
        chain = [name]
        current = name
        while True:
            successors = flow.outputs(current)
            if len(successors) != 1:
                break
            successor = successors[0]
            if flow.node(successor).kind not in _FUSABLE_KINDS:
                break
            if inputs_of[successor] != [current]:
                break
            chain.append(successor)
            current = successor
        if len(chain) >= 2:
            chains[name] = chain
            absorbed.update(chain[1:])
    return chains, frozenset(absorbed)


class Executor:
    """Executes ETL flows against a database.

    ``mode`` selects the execution core: ``"columnar"`` (default, the
    compiled-columnar engine), ``"planned"`` (the columnar engine behind
    the cost-based rewrite pipeline of :mod:`repro.planner`),
    ``"parallel"`` (the columnar engine with chunk-partitioned operators
    over a ``workers``-wide pool) or ``"legacy"`` (the row-at-a-time
    reference interpreter).  All four produce identical results.

    ``pool`` selects the parallel worker pool: ``"thread"`` (default —
    zero-copy column sharing, GIL-bounded speedup) or ``"process"``
    (true multi-core, columns shipped through shared memory and
    expressions recompiled worker-side).  ``parallel_row_threshold``
    defaults per pool (:func:`repro.engine.parallel.default_row_threshold`):
    process dispatch pays transport and pickling per chunk, so its
    serial-fallback cutoff sits an order of magnitude higher.

    A parallel executor owns its pool; it is spawned lazily, reused
    across ``execute()`` calls and released by :meth:`close` (the
    executor is also a context manager).
    """

    def __init__(
        self,
        database: Database,
        mode: str = "columnar",
        workers: int = DEFAULT_WORKERS,
        parallel_row_threshold: Optional[int] = None,
        pool: str = "thread",
    ) -> None:
        if mode not in ("columnar", "legacy", "planned", "parallel"):
            raise ValueError(f"unknown executor mode {mode!r}")
        if pool not in ("thread", "process"):
            raise ValueError(f"unknown worker pool {pool!r}")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._database = database
        self.mode = mode
        self.workers = workers
        self.pool = pool
        self._parallel_threshold = (
            parallel_row_threshold
            if parallel_row_threshold is not None
            else default_row_threshold(pool)
        )
        self._pool_instance = None
        table = _LEGACY_DISPATCH if mode == "legacy" else _COLUMNAR_DISPATCH
        self._dispatch: Dict[str, Callable] = {
            kind: getattr(self, attr) for kind, attr in table.items()
        }
        if mode == "parallel":
            for kind, attr in _PARALLEL_OVERRIDES.items():
                self._dispatch[kind] = getattr(self, attr)
        #: The last plan produced in ``planned`` mode (for explain/tests).
        self.last_plan = None
        #: Statistics catalog shared across executions: its generation
        #: counters invalidate per-table, so repeated runs against the
        #: same sources reuse their histograms instead of rescanning.
        self._stats_catalog = None

    # -- worker pool --------------------------------------------------------

    @property
    def _pool(self):
        if self._pool_instance is None:
            if self.pool == "process":
                self._pool_instance = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=process_context(),
                )
            else:
                self._pool_instance = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-exec",
                )
        return self._pool_instance

    def close(self) -> None:
        """Release the worker pool (no-op for serial executors)."""
        if self._pool_instance is not None:
            self._pool_instance.shutdown(wait=True)
            self._pool_instance = None

    def _discard_pool(self) -> None:
        """Drop a broken pool; the next use lazily spawns a fresh one."""
        if self._pool_instance is not None:
            self._pool_instance.shutdown(wait=False)
            self._pool_instance = None

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def execute(
        self, flow: EtlFlow, keep_intermediate: bool = False
    ) -> ExecutionStats:
        """Run a flow; returns stats (and keeps node outputs on demand).

        Raises :class:`ExecutionError` wrapping any evaluation problem,
        naming the failing node.
        """
        flow.check()
        plan = None
        if self.mode == "planned":
            # Imported lazily: the planner imports this module for the
            # fusion-chain shape, so a top-level import would cycle.
            from repro.engine.stats import StatisticsCatalog
            from repro.planner import plan_flow

            if self._stats_catalog is None:
                self._stats_catalog = StatisticsCatalog(self._database)
            plan = plan_flow(flow, self._stats_catalog)
            flow = plan.flow
        self.last_plan = plan
        stats = ExecutionStats(flow=flow.name)
        relations: Dict[str, object] = {}
        order = flow.topological_order()
        inputs_of = {name: flow.inputs(name) for name in order}
        # Consumer countdown: an intermediate is dropped as soon as its
        # last consumer has run (O(V+E) over the whole execution).
        consumers_left = {name: len(flow.outputs(name)) for name in order}
        chains: Dict[str, List[str]] = {}
        members: frozenset = frozenset()
        if self.mode != "legacy" and not keep_intermediate:
            chains, members = fusion_plan(flow, order, inputs_of)
            if plan is not None and plan.no_fuse:
                chains = {
                    head: chain
                    for head, chain in chains.items()
                    if head not in plan.no_fuse
                }
                members = frozenset(
                    member
                    for chain in chains.values()
                    for member in chain[1:]
                )
        started = time.perf_counter()
        for name in order:
            if name in members:
                continue  # executed as part of its chain
            if name in chains:
                chain = chains[name]
                inputs = [relations[source] for source in inputs_of[name]]
                self._execute_chain(flow, chain, inputs[0], relations, stats)
                consumed = inputs_of[name]
                stored = chain[-1]
            else:
                operation = flow.node(name)
                inputs = [relations[source] for source in inputs_of[name]]
                node_started = time.perf_counter()
                try:
                    result = self._execute_node(operation, inputs, stats)
                except ExecutionError:
                    raise
                except Exception as exc:
                    raise ExecutionError(f"node {name!r}: {exc}") from exc
                node_seconds = time.perf_counter() - node_started
                relations[name] = result
                stats.nodes.append(
                    NodeStats(
                        name=name,
                        kind=operation.kind,
                        input_rows=sum(len(relation) for relation in inputs),
                        output_rows=len(result),
                        seconds=node_seconds,
                    )
                )
                consumed = inputs_of[name]
                stored = name
            if not keep_intermediate:
                for source in consumed:
                    consumers_left[source] -= 1
                    if consumers_left[source] <= 0:
                        relations.pop(source, None)
                if consumers_left.get(stored, 0) == 0:
                    relations.pop(stored, None)
        stats.seconds = time.perf_counter() - started
        if plan is not None:
            for node_stats in stats.nodes:
                node_stats.estimated_rows = plan.estimates.get(
                    node_stats.name
                )
        if keep_intermediate:
            self.relations = relations
        return stats

    # -- node dispatch ------------------------------------------------------

    def _execute_node(self, operation, inputs, stats):
        method = self._dispatch.get(operation.kind)
        if method is None:
            raise ExecutionError(
                f"unsupported operation kind {operation.kind!r}"
            )
        return method(operation, inputs, stats)

    # -- fusion -------------------------------------------------------------

    def _fusion_plan(
        self,
        flow: EtlFlow,
        order: List[str],
        inputs_of: Dict[str, List[str]],
    ) -> Tuple[Dict[str, List[str]], frozenset]:
        return fusion_plan(flow, order, inputs_of)

    def _execute_chain(
        self,
        flow: EtlFlow,
        chain: List[str],
        input_relation: ColumnarRelation,
        relations: Dict[str, object],
        stats: ExecutionStats,
    ) -> None:
        """Run a fused chain in one pass; fall back to per-node execution
        on any compile-time or runtime problem (reproducing the exact
        per-node error and ordering of the unfused engine)."""
        node_started = time.perf_counter()
        program = None
        try:
            spec = _build_chain_spec(flow, chain, input_relation)
            if spec is not None:
                program = compile_chain_spec(spec)
        except Exception:
            program = None
        if program is not None:
            try:
                result, filter_counts = self._run_chain_program(
                    program, input_relation
                )
            except Exception:
                result = None
            if result is not None:
                seconds = time.perf_counter() - node_started
                self._record_chain_stats(
                    flow, chain, input_relation, result, filter_counts,
                    program, seconds, stats,
                )
                relations[chain[-1]] = result
                return
        # Fallback: execute the chain node by node (stage-at-a-time), so
        # failures surface exactly as in the unfused engine.
        current = input_relation
        for name in chain:
            operation = flow.node(name)
            step_started = time.perf_counter()
            try:
                result = self._execute_node(operation, [current], stats)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(f"node {name!r}: {exc}") from exc
            stats.nodes.append(
                NodeStats(
                    name=name,
                    kind=operation.kind,
                    input_rows=len(current),
                    output_rows=len(result),
                    seconds=time.perf_counter() - step_started,
                )
            )
            current = result
        relations[chain[-1]] = current

    def _record_chain_stats(
        self, flow, chain, input_relation, result, filter_counts,
        program, seconds, stats,
    ) -> None:
        """Exact per-node row counts for a fused chain: selections are
        counted inside the pass, every other stage preserves counts."""
        share = seconds / len(chain)
        current_rows = len(input_relation)
        filter_index = 0
        for name in chain:
            operation = flow.node(name)
            if operation.kind == "Selection":
                output_rows = filter_counts[filter_index]
                filter_index += 1
            else:
                output_rows = current_rows
            stats.nodes.append(
                NodeStats(
                    name=name,
                    kind=operation.kind,
                    input_rows=current_rows,
                    output_rows=output_rows,
                    seconds=share,
                )
            )
            current_rows = output_rows

    # -- columnar operators -------------------------------------------------

    def _scan_columnar(self, operation: Datastore, inputs, stats):
        relation = self._database.scan_columns(operation.table)
        if operation.columns:
            return relation.project(list(operation.columns))
        return relation

    def _project_columnar(self, operation, inputs, stats):
        return inputs[0].project(list(operation.columns))

    def _filter_columnar(self, operation: Selection, inputs, stats):
        relation: ColumnarRelation = inputs[0]
        compiled = compile_expression(operation.predicate)
        columns = _argument_columns(compiled, relation)
        if columns is None:
            # An attribute is missing from the schema: evaluate row by
            # row so errors (and short-circuit non-errors) match the
            # interpreter exactly.
            rows = [
                row for row in relation.rows if compiled.row_fn(row) is True
            ]
            return ColumnarRelation.from_rows(dict(relation.schema), rows)
        if not compiled.attributes:
            if relation.length == 0:
                return relation
            keep_all = compiled.column_fn() is True
            return relation if keep_all else relation.take([])
        function = compiled.column_fn
        keep = [
            index
            for index, value in enumerate(map(function, *columns))
            if value is True
        ]
        if len(keep) == relation.length:
            return relation
        return relation.take(keep)

    def _derive_columnar(self, operation: DerivedAttribute, inputs, stats):
        from repro.etlmodel.propagation import _derive_schema

        relation: ColumnarRelation = inputs[0]
        schema = _derive_schema(operation, relation.schema)
        compiled = compile_expression(operation.expression)
        columns = _argument_columns(compiled, relation)
        if columns is None:
            rows = []
            for row in relation.rows:
                out = dict(row)
                out[operation.output] = compiled.row_fn(row)
                rows.append(out)
            return ColumnarRelation.from_rows(schema, rows)
        if not compiled.attributes:
            derived = (
                [compiled.column_fn()] * relation.length
                if relation.length
                else []
            )
        else:
            derived = list(map(compiled.column_fn, *columns))
        new_columns = dict(relation.columns)
        new_columns[operation.output] = derived
        return ColumnarRelation(
            schema=schema, columns=new_columns, length=relation.length
        )

    def _join_columnar(self, operation: Join, inputs, stats):
        left, right = inputs
        schema, payload = _join_schema(operation, left.schema, right.schema)
        return hash_join(
            left,
            right,
            list(operation.left_keys),
            list(operation.right_keys),
            payload,
            schema,
            left_outer=operation.join_type == JoinType.LEFT,
        )

    def _aggregate_columnar(self, operation: Aggregation, inputs, stats):
        from repro.etlmodel.propagation import _aggregation_schema

        relation: ColumnarRelation = inputs[0]
        schema = _aggregation_schema(operation, relation.schema)
        return hash_aggregate(
            relation, operation.group_by, operation.aggregates, schema
        )

    def _rename_columnar(self, operation: Rename, inputs, stats):
        return inputs[0].rename_columns(operation.mapping())

    def _union_columnar(self, operation, inputs, stats):
        left, right = inputs
        if list(left.schema.items()) != list(right.schema.items()):
            raise ExecutionError("union inputs are not union-compatible")
        return left.concat(right)

    def _surrogate_columnar(self, operation: SurrogateKey, inputs, stats):
        relation: ColumnarRelation = inputs[0]
        schema = {operation.output: ScalarType.INTEGER}
        schema.update(relation.schema)
        columns: Dict[str, list] = {
            operation.output: surrogate_keys(
                relation, operation.business_keys
            )
        }
        columns.update(relation.columns)
        return ColumnarRelation(
            schema=schema, columns=columns, length=relation.length
        )

    def _sort_columnar(self, operation: Sort, inputs, stats):
        return inputs[0].sorted_by(
            list(operation.keys), descending=operation.descending
        )

    def _distinct_columnar(self, operation, inputs, stats):
        return inputs[0].distinct()

    def _scd_columnar(self, operation: SCDUpdate, inputs, stats):
        relation: ColumnarRelation = inputs[0]
        schema, rows = self._scd_rows(operation, relation.schema, relation.rows)
        return ColumnarRelation.from_rows(schema, rows)

    def _load_columnar(self, operation: Loader, inputs, stats):
        relation: ColumnarRelation = inputs[0]
        self._prepare_target(operation, relation.schema)
        loaded = self._database.insert_columns(
            operation.table, relation.columns, relation.length
        )
        stats.loaded[operation.table] = (
            stats.loaded.get(operation.table, 0) + loaded
        )
        return relation

    # -- partitioned parallel operators -------------------------------------

    def _parallel_ranges(self, length: int):
        """Chunk ranges when partitioning pays, else ``None`` (serial)."""
        if length < self._parallel_threshold:
            return None
        ranges = chunk_ranges(length, self.workers)
        if len(ranges) <= 1:
            return None
        return ranges

    def _chunk_results(self, futures) -> list:
        """Collect chunk futures in chunk order.

        The earliest chunk's exception wins — that chunk holds the
        globally-first failing row, so the error surfaced matches the
        serial engine's exactly.

        A dead worker (as opposed to a task that raised) breaks the
        whole process pool: that surfaces as an honest
        :class:`ExecutionError`, the broken pool is discarded, and the
        executor stays usable — the next parallel node spawns a fresh
        pool.
        """
        results = []
        error: Optional[BaseException] = None
        for future in futures:
            if error is None:
                try:
                    results.append(future.result())
                except BaseException as exc:
                    error = exc
            else:
                future.cancel()
        if isinstance(error, BrokenProcessPool):
            self._discard_pool()
            raise ExecutionError(
                "parallel worker process died mid-task; the pool was "
                "restarted — re-run the flow"
            ) from error
        if error is not None:
            raise error
        return results

    def _run_chain_program(self, program, relation: ColumnarRelation):
        """Run a fused chain serially or chunk-partitioned.

        Pure structural programs stay serial — they are zero-copy column
        re-selections, and chunking would force a copy.
        """
        if (
            self.mode != "parallel"
            or not program.steps
            or relation.length < self._parallel_threshold
        ):
            return program.run(relation)
        ranges = chunk_ranges(relation.length, self.workers)
        if len(ranges) <= 1:
            return program.run(relation)
        if self.pool == "process":
            # Ship only the chain's read-set; workers recompile the
            # spec behind their own per-process cache.
            with ColumnTransport(
                {
                    name: relation.columns[name]
                    for name in program.input_names
                },
                relation.length,
            ) as transport:
                futures = [
                    self._pool.submit(
                        process_chain_chunk,
                        program.spec,
                        transport.chunk_payload(
                            program.input_names, start, stop
                        ),
                        stop - start,
                    )
                    for start, stop in ranges
                ]
                parts = self._chunk_results(futures)
        else:
            futures = [
                self._pool.submit(
                    run_chain_chunk, program, relation, start, stop
                )
                for start, stop in ranges
            ]
            parts = self._chunk_results(futures)
        result = concat_parts(
            program.output_schema, [part for part, __ in parts]
        )
        filter_counts = [
            sum(counts)
            for counts in zip(*(counts for __, counts in parts))
        ]
        return result, filter_counts

    def _process_map_chunks(self, task, compiled, columns, ranges):
        """Run a per-chunk expression kernel in the process pool.

        Transports only the expression's argument columns; each chunk
        task carries the source text plus its payload and global start.
        """
        names = list(compiled.attributes)
        length = ranges[-1][1]
        with ColumnTransport(dict(zip(names, columns)), length) as transport:
            futures = [
                self._pool.submit(
                    task,
                    compiled.text,
                    transport.chunk_payload(names, start, stop),
                    start,
                )
                for start, stop in ranges
            ]
            return self._chunk_results(futures)

    def _filter_parallel(self, operation: Selection, inputs, stats):
        relation: ColumnarRelation = inputs[0]
        compiled = compile_expression(operation.predicate)
        columns = _argument_columns(compiled, relation)
        ranges = self._parallel_ranges(relation.length)
        if columns is None or not compiled.attributes or ranges is None:
            # Serial fallbacks (row-at-a-time evaluation, constant
            # predicates, small inputs) — same results, same errors.
            return self._filter_columnar(operation, inputs, stats)
        if self.pool == "process":
            chunks = self._process_map_chunks(
                process_filter_chunk, compiled, columns, ranges
            )
        else:
            function = compiled.column_fn
            chunks = self._chunk_results(
                [
                    self._pool.submit(
                        filter_chunk, function, columns, start, stop
                    )
                    for start, stop in ranges
                ]
            )
        keep: List[int] = []
        for chunk in chunks:
            keep.extend(chunk)
        if len(keep) == relation.length:
            return relation
        return relation.take(keep)

    def _derive_parallel(self, operation: DerivedAttribute, inputs, stats):
        from repro.etlmodel.propagation import _derive_schema

        relation: ColumnarRelation = inputs[0]
        # Type-check (and fail) before evaluating, like the serial kernel.
        schema = _derive_schema(operation, relation.schema)
        compiled = compile_expression(operation.expression)
        columns = _argument_columns(compiled, relation)
        ranges = self._parallel_ranges(relation.length)
        if columns is None or not compiled.attributes or ranges is None:
            return self._derive_columnar(operation, inputs, stats)
        if self.pool == "process":
            chunks = self._process_map_chunks(
                process_derive_chunk, compiled, columns, ranges
            )
        else:
            function = compiled.column_fn
            chunks = self._chunk_results(
                [
                    self._pool.submit(
                        derive_chunk, function, columns, start, stop
                    )
                    for start, stop in ranges
                ]
            )
        derived: list = []
        for chunk in chunks:
            derived.extend(chunk)
        new_columns = dict(relation.columns)
        new_columns[operation.output] = derived
        return ColumnarRelation(
            schema=schema, columns=new_columns, length=relation.length
        )

    def _join_parallel(self, operation: Join, inputs, stats):
        left, right = inputs
        ranges = self._parallel_ranges(left.length)
        if ranges is None:
            return self._join_columnar(operation, inputs, stats)
        schema, payload = _join_schema(operation, left.schema, right.schema)
        left_keys = list(operation.left_keys)
        right_keys = list(operation.right_keys)
        left_outer = operation.join_type == JoinType.LEFT
        try:
            # The build side is serial (it is the smaller side of every
            # FK join and inherently order-dependent); the probes fan
            # out, each producing its slice of the matched positions.
            index = build_join_index(right, right_keys)
            if self.pool == "process":
                return self._probe_gather_process(
                    index, left, right, left_keys, payload, schema,
                    left_outer, ranges,
                )
            futures = [
                self._pool.submit(
                    join_chunk,
                    index,
                    left,
                    right,
                    left_keys,
                    payload,
                    schema,
                    left_outer,
                    start,
                    stop,
                )
                for start, stop in ranges
            ]
            parts = self._chunk_results(futures)
        except ExecutionError:
            raise
        except TypeError as exc:
            named = [(key, left.columns[key]) for key in left_keys]
            named += [(key, right.columns[key]) for key in right_keys]
            raise unhashable_key_error("join", named, exc) from exc
        return concat_parts(schema, parts)

    def _probe_gather_process(
        self, index, left, right, left_keys, payload, schema,
        left_outer, ranges,
    ):
        """Probe chunks in the process pool, gather once in the parent.

        The serially-built index travels as one shared pickled blob;
        each chunk transports only its slice of the left key columns
        and returns matched positions.  The single parent-side gather
        is exactly the serial ``hash_join`` gather, so output bytes
        match however many chunks probed.
        """
        with SharedObject(index) as shared_index, ColumnTransport(
            {key: left.columns[key] for key in left_keys}, left.length
        ) as transport:
            handle = shared_index.handle()
            futures = [
                self._pool.submit(
                    process_probe_chunk,
                    handle,
                    transport.chunk_payload(left_keys, start, stop),
                    left_outer,
                    start,
                )
                for start, stop in ranges
            ]
            parts = self._chunk_results(futures)
        left_take: List[int] = []
        right_take: List[int] = []
        for chunk_left, chunk_right in parts:
            left_take.extend(chunk_left)
            right_take.extend(chunk_right)
        return gather_join(
            left, right, payload, schema, left_outer, left_take, right_take
        )

    def _aggregate_parallel(self, operation: Aggregation, inputs, stats):
        from repro.etlmodel.propagation import _aggregation_schema

        relation: ColumnarRelation = inputs[0]
        ranges = self._parallel_ranges(relation.length)
        if not operation.group_by or ranges is None:
            # A global aggregate is one serial fold by definition.
            return self._aggregate_columnar(operation, inputs, stats)
        schema = _aggregation_schema(operation, relation.schema)
        group_columns = [
            relation.columns[name] for name in operation.group_by
        ]
        try:
            if self.pool == "process":
                with ColumnTransport(
                    dict(zip(operation.group_by, group_columns)),
                    relation.length,
                ) as transport:
                    futures = [
                        self._pool.submit(
                            process_group_chunk,
                            transport.chunk_payload(
                                operation.group_by, start, stop
                            ),
                            start,
                        )
                        for start, stop in ranges
                    ]
                    parts = self._chunk_results(futures)
            else:
                futures = [
                    self._pool.submit(
                        group_chunk, group_columns, start, stop
                    )
                    for start, stop in ranges
                ]
                parts = self._chunk_results(futures)
        except ExecutionError:
            raise
        except TypeError as exc:
            raise unhashable_key_error(
                "aggregate", zip(operation.group_by, group_columns), exc
            ) from exc
        keys_in_order, members = merge_group_chunks(parts)
        columns: Dict[str, list] = {}
        for key_position, name in enumerate(operation.group_by):
            columns[name] = [key[key_position] for key in keys_in_order]
        for spec in operation.aggregates:
            source = relation.columns[spec.input]
            columns[spec.output] = [
                aggregate_values(
                    spec.function,
                    [source[i] for i in group if source[i] is not None],
                )
                for group in members
            ]
        return ColumnarRelation(
            schema=schema, columns=columns, length=len(keys_in_order)
        )

    # -- legacy row-at-a-time operators (the reference interpreter) ---------

    def _scan_legacy(self, operation: Datastore, inputs, stats):
        relation = self._database.scan(operation.table)
        if operation.columns:
            return relation.project(list(operation.columns))
        return Relation(schema=dict(relation.schema), rows=list(relation.rows))

    def _project_legacy(self, operation, inputs, stats):
        return inputs[0].project(list(operation.columns))

    def _filter_legacy(self, operation: Selection, inputs, stats):
        relation: Relation = inputs[0]
        predicate = parse(operation.predicate)
        rows = [
            row for row in relation.rows if evaluate(predicate, row) is True
        ]
        return Relation(schema=dict(relation.schema), rows=rows)

    def _join_legacy(self, operation: Join, inputs, stats):
        left, right = inputs
        schema, right_payload = _join_schema(
            operation, left.schema, right.schema
        )
        right_keys = list(operation.right_keys)
        left_keys = list(operation.left_keys)
        rows: List[dict] = []
        try:
            index: Dict[tuple, List[dict]] = {}
            for row in right.rows:
                key = tuple(row[column] for column in right_keys)
                if any(part is None for part in key):
                    continue
                index.setdefault(key, []).append(row)
            for row in left.rows:
                key = tuple(row[column] for column in left_keys)
                matches = index.get(key, []) if not any(
                    part is None for part in key
                ) else []
                if matches:
                    for match in matches:
                        combined = dict(row)
                        for name in right_payload:
                            combined[name] = match[name]
                        rows.append(combined)
                elif operation.join_type == JoinType.LEFT:
                    combined = dict(row)
                    for name in right_payload:
                        combined[name] = None
                    rows.append(combined)
        except TypeError as exc:
            named = [
                (key, [row[key] for row in left.rows]) for key in left_keys
            ] + [
                (key, [row[key] for row in right.rows]) for key in right_keys
            ]
            raise unhashable_key_error("join", named, exc) from exc
        return Relation(schema=schema, rows=rows)

    def _aggregate_legacy(self, operation: Aggregation, inputs, stats):
        from repro.etlmodel.propagation import _aggregation_schema

        relation: Relation = inputs[0]
        schema = _aggregation_schema(operation, relation.schema)
        groups: Dict[tuple, List[dict]] = {}
        if not operation.group_by:
            # SQL semantics: a global aggregate always yields one row.
            groups[()] = []
        try:
            for row in relation.rows:
                key = tuple(row[column] for column in operation.group_by)
                groups.setdefault(key, []).append(row)
        except TypeError as exc:
            named = [
                (column, [row[column] for row in relation.rows])
                for column in operation.group_by
            ]
            raise unhashable_key_error("aggregate", named, exc) from exc
        rows: List[dict] = []
        for key, group_members in groups.items():
            out = dict(zip(operation.group_by, key))
            for spec in operation.aggregates:
                values = [
                    member[spec.input]
                    for member in group_members
                    if member[spec.input] is not None
                ]
                out[spec.output] = aggregate_values(spec.function, values)
            rows.append(out)
        return Relation(schema=schema, rows=rows)

    def _derive_legacy(self, operation: DerivedAttribute, inputs, stats):
        from repro.etlmodel.propagation import _derive_schema

        relation: Relation = inputs[0]
        schema = _derive_schema(operation, relation.schema)
        expression = parse(operation.expression)
        rows = []
        for row in relation.rows:
            out = dict(row)
            out[operation.output] = evaluate(expression, row)
            rows.append(out)
        return Relation(schema=schema, rows=rows)

    def _rename_legacy(self, operation: Rename, inputs, stats):
        relation: Relation = inputs[0]
        mapping = operation.mapping()
        schema = {
            mapping.get(name, name): scalar_type
            for name, scalar_type in relation.schema.items()
        }
        rows = [
            {mapping.get(name, name): value for name, value in row.items()}
            for row in relation.rows
        ]
        return Relation(schema=schema, rows=rows)

    def _union_legacy(self, operation, inputs, stats):
        left, right = inputs
        if list(left.schema.items()) != list(right.schema.items()):
            raise ExecutionError("union inputs are not union-compatible")
        return Relation(
            schema=dict(left.schema), rows=list(left.rows) + list(right.rows)
        )

    def _surrogate_legacy(self, operation: SurrogateKey, inputs, stats):
        relation: Relation = inputs[0]
        schema = {operation.output: ScalarType.INTEGER}
        schema.update(relation.schema)
        assigned: Dict[tuple, int] = {}
        rows = []
        try:
            for row in relation.rows:
                business = tuple(
                    row[column] for column in operation.business_keys
                )
                if business not in assigned:
                    assigned[business] = len(assigned) + 1
                out = {operation.output: assigned[business]}
                out.update(row)
                rows.append(out)
        except TypeError as exc:
            named = [
                (column, [row[column] for row in relation.rows])
                for column in operation.business_keys
            ]
            raise unhashable_key_error("surrogate-key", named, exc) from exc
        return Relation(schema=schema, rows=rows)

    def _sort_legacy(self, operation: Sort, inputs, stats):
        return inputs[0].sorted_by(
            list(operation.keys), descending=operation.descending
        )

    def _distinct_legacy(self, operation, inputs, stats):
        return inputs[0].distinct()

    def _scd_legacy(self, operation: SCDUpdate, inputs, stats):
        relation: Relation = inputs[0]
        schema, rows = self._scd_rows(operation, relation.schema, relation.rows)
        return Relation(schema=schema, rows=rows)

    def _load_legacy(self, operation: Loader, inputs, stats):
        relation: Relation = inputs[0]
        self._prepare_target(operation, relation.schema)
        loaded = self._database.insert_many(operation.table, relation.rows)
        stats.loaded[operation.table] = (
            stats.loaded.get(operation.table, 0) + loaded
        )
        return relation

    # -- shared loader plumbing --------------------------------------------

    def _scd_rows(self, operation: SCDUpdate, input_schema, incoming_rows):
        """Output schema + merged rows for an SCD update, any mode.

        The stored dimension's rows seed the merge when the table exists
        with exactly the output columns; a missing or differently-shaped
        table (first load, or a policy change) starts fresh history —
        the downstream replace-mode loader rebuilds the table anyway.
        The row-level merge itself is the pure, mode-independent
        :func:`repro.engine.scd.scd_merge`, keeping all four engine
        modes byte-identical.
        """
        from repro.etlmodel.propagation import _scd_schema

        schema = _scd_schema(operation, input_schema)
        existing_rows = []
        if self._database.has_table(operation.table):
            stored = self._database.table_def(operation.table)
            if set(stored.columns) == set(schema):
                existing_rows = self._database.scan(operation.table).rows
        return schema, scd_merge(operation, schema, existing_rows, incoming_rows)

    def _prepare_target(self, operation: Loader, schema) -> None:
        if not self._database.has_table(operation.table):
            self._database.create_table(
                TableDef(name=operation.table, columns=dict(schema))
            )
        elif operation.mode == "replace":
            existing = self._database.table_def(operation.table)
            if set(existing.columns) != set(schema):
                # A differently-shaped earlier version of the target
                # (e.g. before a dimension was widened): rebuild it.
                self._database.drop_table(operation.table)
                self._database.create_table(
                    TableDef(name=operation.table, columns=dict(schema))
                )
            else:
                self._database.truncate(operation.table)


def _join_schema(operation: Join, left_schema, right_schema):
    """Output schema and right-side payload of an equi-join.

    Shared by both engines so the attribute-collision error is raised
    identically."""
    joined_same_names = {
        right
        for left, right in zip(operation.left_keys, operation.right_keys)
        if left == right
    }
    schema = dict(left_schema)
    payload = [
        name for name in right_schema if name not in joined_same_names
    ]
    for name in payload:
        if name in schema:
            raise ExecutionError(
                f"join {operation.name!r}: attribute {name!r} on both sides"
            )
        schema[name] = right_schema[name]
    return schema, payload


def _argument_columns(
    compiled: CompiledExpression, relation: ColumnarRelation
) -> Optional[List[list]]:
    """Column arrays for a compiled expression's attributes, or ``None``
    when some referenced attribute is not in the relation's schema (the
    caller then falls back to row-at-a-time evaluation)."""
    columns = relation.columns
    arguments = []
    for name in compiled.attributes:
        column = columns.get(name)
        if column is None:
            return None
        arguments.append(column)
    return arguments


# -- fused chain specs -------------------------------------------------------


def _build_chain_spec(
    flow: EtlFlow, chain: List[str], input_relation: ColumnarRelation
) -> Optional[ChainSpec]:
    """Describe a fused chain against the input schema as a
    :class:`repro.engine.parallel.ChainSpec`.

    Returns ``None`` when the chain cannot be fused faithfully (missing
    attributes, schema errors, parse errors …) — the caller then runs
    the chain stage by stage, which reproduces the engine's exact error
    behaviour.

    The spec's ``input_names`` are compacted to the chain's *read-set*:
    input columns no step reads and the output does not keep are
    dropped from the slot space entirely, so chunk slicing (and the
    process pool's column transport) never touches them.
    """
    from repro.etlmodel.propagation import _derive_schema

    input_names = list(input_relation.schema)
    schema: Dict[str, ScalarType] = dict(input_relation.schema)
    positions: Dict[str, int] = {
        name: index for index, name in enumerate(input_names)
    }
    next_slot = len(input_names)
    steps: List[tuple] = []
    filter_count = 0
    for name in chain:
        operation = flow.node(name)
        if isinstance(operation, Selection):
            compiled = compile_expression(operation.predicate)
            if any(a not in positions for a in compiled.attributes):
                return None
            argument_positions = tuple(
                positions[a] for a in compiled.attributes
            )
            steps.append(
                ("filter", compiled.text, argument_positions, filter_count)
            )
            filter_count += 1
        elif isinstance(operation, (Projection, Extraction)):
            wanted = list(operation.columns)
            if any(column not in positions for column in wanted):
                return None
            schema = {column: schema[column] for column in wanted}
            positions = {column: positions[column] for column in wanted}
        elif isinstance(operation, DerivedAttribute):
            compiled = compile_expression(operation.expression)
            if any(a not in positions for a in compiled.attributes):
                return None
            schema = _derive_schema(operation, schema)
            argument_positions = tuple(
                positions[a] for a in compiled.attributes
            )
            steps.append(
                ("derive", compiled.text, argument_positions, next_slot)
            )
            positions = dict(positions)
            positions[operation.output] = next_slot
            next_slot += 1
        elif isinstance(operation, Rename):
            mapping = operation.mapping()
            schema = {
                mapping.get(key, key): value for key, value in schema.items()
            }
            positions = {
                mapping.get(key, key): value
                for key, value in positions.items()
            }
        else:
            return None
    output_positions = [positions[name] for name in schema]
    # Read-set compaction: keep only input slots some step argument or
    # output column actually references, then renumber — input slots to
    # their compacted index, derived slots shifted down by the dropped
    # input count (the runtime appends derived values right after the
    # inputs, wherever the input list ends).
    total_inputs = len(input_names)
    used = sorted(
        {
            position
            for __, __, argument_positions, __s in steps
            for position in argument_positions
            if position < total_inputs
        }
        | {
            position
            for position in output_positions
            if position < total_inputs
        }
    )
    new_index = {old: new for new, old in enumerate(used)}
    kept_inputs = len(used)

    def remap(position: int) -> int:
        if position < total_inputs:
            return new_index[position]
        return position - total_inputs + kept_inputs

    return ChainSpec(
        input_names=tuple(input_names[position] for position in used),
        steps=tuple(
            (
                kind,
                text,
                tuple(remap(p) for p in argument_positions),
                counter if kind == "filter" else remap(counter),
            )
            for kind, text, argument_positions, counter in steps
        ),
        output_schema=tuple(schema.items()),
        output_positions=tuple(
            remap(position) for position in output_positions
        ),
        filter_count=filter_count,
    )


#: Backwards-compatible alias (the helper moved to the columnar module).
_aggregate_values = aggregate_values
