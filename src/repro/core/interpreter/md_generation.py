"""Partial MD schema generation from a mapped requirement.

One fact (named after the measures, Figure 3/4 style:
``fact_table_revenue``) plus one dimension per analysis atom:

* a property owned by a non-fact concept yields a dimension named after
  that concept, complemented (optionally) with the coarser levels on its
  outgoing to-one chains (Supplier -> Nation -> Region),
* a property owned by the fact concept itself yields a *degenerate*
  dimension holding just that attribute (e.g. ``l_shipmode``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.interpreter.mapper import RequirementMapping
from repro.core.requirements.model import InformationRequirement
from repro.errors import TypeCheckError
from repro.expressions import infer_type, parse
from repro.expressions.types import ScalarType
from repro.mdmodel.model import (
    Additivity,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
    SCDPolicy,
)
from repro.ontology.graph import OntologyGraph
from repro.ontology.model import Ontology
from repro.sources.mappings import SourceMappings


class MDGenerator:
    """Generates partial MD schemas."""

    def __init__(
        self,
        ontology: Ontology,
        mappings: SourceMappings,
        complement: bool = True,
        max_complement_depth: int = 3,
        scd_policies: Optional[Dict[str, object]] = None,
    ) -> None:
        self._ontology = ontology
        self._graph = OntologyGraph(ontology)
        self._mappings = mappings
        self._complement = complement
        self._max_depth = max_complement_depth
        #: ontology concept id -> change-tracking policy of its dimension
        self._scd_policies: Dict[str, SCDPolicy] = {
            concept: (
                policy
                if isinstance(policy, SCDPolicy)
                else SCDPolicy.parse(str(policy))
            )
            for concept, policy in (scd_policies or {}).items()
        }

    @property
    def scd_policies(self) -> Dict[str, SCDPolicy]:
        """Mutable policy map; evolution operators re-key it on renames."""
        return self._scd_policies

    def generate(self, mapping: RequirementMapping) -> MDSchema:
        """Build the partial star for one mapped requirement."""
        requirement = mapping.requirement
        schema = MDSchema(name=f"schema_{requirement.id}")
        fact = self._build_fact(mapping)
        for dimension_property in requirement.dimension_properties():
            concept = mapping.concept_of(dimension_property)
            prop = self._ontology.datatype_property(dimension_property)
            if prop.range is ScalarType.DATE:
                dimension = self._time_dimension(dimension_property, requirement)
            elif concept == mapping.fact_concept:
                dimension = self._degenerate_dimension(
                    dimension_property, requirement
                )
            else:
                dimension = self._concept_dimension(concept, mapping)
            if not schema.has_dimension(dimension.name):
                schema.add_dimension(dimension)
            base = schema.dimension(dimension.name).base_levels()[0]
            fact.link_dimension(dimension.name, base)
        schema.add_fact(fact)
        return schema

    # -- fact -------------------------------------------------------------------

    def _build_fact(self, mapping: RequirementMapping) -> Fact:
        requirement = mapping.requirement
        measure_names = "_".join(m.name for m in requirement.measures)
        fact = Fact(
            name=f"fact_table_{measure_names}",
            concept=mapping.fact_concept,
            requirements={requirement.id},
            grain=[
                self._mappings.property_column(dimension.property)
                for dimension in requirement.dimensions
            ],
            slicers=sorted(
                str(parse(slicer.predicate))
                for slicer in requirement.slicers
            ),
        )
        property_types = {
            prop.id: prop.range for prop in self._ontology.datatype_properties()
        }
        from repro.mdmodel.model import AggregationFunction

        for requirement_measure in requirement.measures:
            measure_type = ScalarType.DECIMAL
            try:
                inferred = infer_type(
                    parse(requirement_measure.expression), property_types
                )
                if inferred is not None:
                    measure_type = inferred
            except TypeCheckError:
                pass  # requirement.check already reported; keep default
            # The stored type is the *aggregated* type: averaging an
            # integer yields a decimal, counting anything an integer.
            aggregation = requirement.aggregation_for(requirement_measure.name)
            if aggregation is AggregationFunction.AVG:
                measure_type = ScalarType.DECIMAL
            elif aggregation is AggregationFunction.COUNT:
                measure_type = ScalarType.INTEGER
            fact.add_measure(
                Measure(
                    name=requirement_measure.name,
                    expression=requirement_measure.expression,
                    type=measure_type,
                    aggregation=requirement.aggregation_for(
                        requirement_measure.name
                    ),
                    additivity=Additivity.ADDITIVE,
                    requirements={requirement.id},
                )
            )
        return fact

    # -- dimensions ---------------------------------------------------------------

    def _degenerate_dimension(
        self, property_id: str, requirement: InformationRequirement
    ) -> Dimension:
        prop = self._ontology.datatype_property(property_id)
        column = self._mappings.property_column(property_id)
        dimension = Dimension(
            name=column, requirements={requirement.id}
        )
        dimension.add_level(
            Level(
                name=column,
                attributes=[
                    LevelAttribute(column, prop.range, property=property_id)
                ],
                concept=prop.concept,
            )
        )
        dimension.add_hierarchy(Hierarchy(name=column, levels=[column]))
        return dimension

    def _time_dimension(
        self, property_id: str, requirement: InformationRequirement
    ) -> Dimension:
        """A synthesised calendar dimension for a DATE analysis atom.

        Levels: the raw date (base, keeps ontology provenance), then
        derived month / quarter / year roll-ups (keys encode the year so
        they roll up strictly: month 199503, quarter 19951, year 1995).
        The populating ETL derives the level keys with the expression
        language's date functions (see ``time_level_expressions``).
        """
        column = self._mappings.property_column(property_id)
        prop = self._ontology.datatype_property(property_id)
        dimension = Dimension(name=column, requirements={requirement.id})
        dimension.add_level(
            Level(
                name=column,
                attributes=[
                    LevelAttribute(column, ScalarType.DATE, property=property_id)
                ],
                concept=None,
            )
        )
        for suffix in ("month", "quarter", "year"):
            level_name = f"{column}_{suffix}"
            dimension.add_level(
                Level(
                    name=level_name,
                    attributes=[
                        LevelAttribute(level_name, ScalarType.INTEGER)
                    ],
                )
            )
        dimension.add_hierarchy(
            Hierarchy(
                name="calendar",
                levels=[
                    column,
                    f"{column}_month",
                    f"{column}_quarter",
                    f"{column}_year",
                ],
            )
        )
        return dimension

    def _concept_dimension(
        self, concept: str, mapping: RequirementMapping
    ) -> Dimension:
        requirement = mapping.requirement
        dimension = Dimension(name=concept, requirements={requirement.id})
        base = self._level_for(concept, mapping)
        base.scd_policy = self._scd_policies.get(concept, SCDPolicy.TYPE0)
        dimension.add_level(base)
        chains = (
            self._complement_chains(concept) if self._complement else [[concept]]
        )
        for index, chain in enumerate(chains):
            for level_concept in chain[1:]:
                if not dimension.has_level(level_concept):
                    dimension.add_level(self._level_for(level_concept, mapping))
            name = concept if index == 0 else f"{concept}_{index + 1}"
            dimension.add_hierarchy(Hierarchy(name=name, levels=list(chain)))
        return dimension

    def _complement_chains(self, concept: str) -> List[List[str]]:
        """Root-to-leaf to-one chains starting at ``concept``.

        Only concepts with a usable descriptor (a mapped datatype
        property) become levels; chains stop there.
        """
        chains: List[List[str]] = []

        def walk(current: str, path: List[str], depth: int) -> None:
            extended = False
            if depth < self._max_depth:
                for step in self._graph.to_one_neighbours(current):
                    if step.target in path:
                        continue
                    if self._descriptor_for(step.target) is None:
                        continue
                    extended = True
                    walk(step.target, path + [step.target], depth + 1)
            if not extended:
                chains.append(path)

        walk(concept, [concept], 0)
        return chains

    def _level_for(self, concept: str, mapping: RequirementMapping) -> Level:
        """A level for a concept: requirement attributes + a descriptor."""
        requirement = mapping.requirement
        attributes: List[LevelAttribute] = []
        used_properties = set()
        for property_id in requirement.referenced_properties():
            if mapping.property_concepts.get(property_id) != concept:
                continue
            if not requirement_mentions_as_dimension_or_slicer(
                requirement, property_id
            ):
                continue
            column = self._mappings.property_column(property_id)
            prop = self._ontology.datatype_property(property_id)
            attributes.append(
                LevelAttribute(column, prop.range, property=property_id)
            )
            used_properties.add(property_id)
        if not attributes:
            descriptor = self._descriptor_for(concept)
            if descriptor is not None:
                column = self._mappings.property_column(descriptor.id)
                attributes.append(
                    LevelAttribute(column, descriptor.range, property=descriptor.id)
                )
        return Level(name=concept, attributes=attributes, concept=concept)

    def _descriptor_for(self, concept: str):
        """The concept's first mapped string property (else any mapped)."""
        fallback = None
        for prop in self._ontology.datatype_properties(concept):
            if not self._mappings.has_property_mapping(prop.id):
                continue
            if prop.range is ScalarType.STRING:
                return prop
            if fallback is None:
                fallback = prop
        return fallback


def is_time_dimension(dimension: Dimension) -> bool:
    """Whether a dimension is a synthesised calendar dimension."""
    base_levels = dimension.base_levels()
    if len(base_levels) != 1:
        return False
    base = dimension.level(base_levels[0])
    if len(base.attributes) != 1 or base.attributes[0].type is not ScalarType.DATE:
        return False
    column = base.attributes[0].name
    return all(
        dimension.has_level(f"{column}_{suffix}")
        for suffix in ("month", "quarter", "year")
    )


def time_level_expressions(column: str) -> List[tuple]:
    """(output, expression) pairs deriving the calendar level keys."""
    return [
        (f"{column}_month", f"year({column}) * 100 + month({column})"),
        (f"{column}_quarter", f"year({column}) * 10 + quarter({column})"),
        (f"{column}_year", f"year({column})"),
    ]


def requirement_mentions_as_dimension_or_slicer(
    requirement: InformationRequirement, property_id: str
) -> bool:
    """Whether a property appears as a grouping atom or in a slicer."""
    if property_id in requirement.dimension_properties():
        return True
    for slicer in requirement.slicers:
        if property_id in parse(slicer.predicate).attributes():
            return True
    return False
