"""SQL DDL generation for MD schemas.

Produces the ``CREATE DATABASE`` / ``CREATE TABLE`` script visible in
Figure 3: one table per dimension (``dim_<name>``, all level attributes)
and one table per fact (grain columns + measures, PRIMARY KEY over the
grain).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.sqlgen import check_dialect, sql_identifier, sql_type
from repro.errors import DeploymentError
from repro.expressions.types import ScalarType
from repro.mdmodel.model import (
    SCD2_IS_CURRENT,
    SCD2_VALID_FROM,
    SCD2_VALID_TO,
    Dimension,
    Fact,
    MDSchema,
    SCDPolicy,
)


def dimension_table_name(dimension: Dimension) -> str:
    return f"dim_{dimension.name}"


def dimension_is_versioned(dimension: Dimension) -> bool:
    """Whether any level keeps SCD2 history (window columns present)."""
    return any(
        level.scd_policy is SCDPolicy.TYPE2
        for level in dimension.levels.values()
    )


def dimension_columns(dimension: Dimension) -> Dict[str, ScalarType]:
    """All level attributes of a dimension, base level first.

    A dimension with an SCD2 level additionally carries the validity-
    window columns (version surrogate, window bounds, current flag)
    after the declared attributes.
    """
    columns: Dict[str, ScalarType] = {}
    for level in dimension.levels.values():
        for attribute in level.attributes:
            if attribute.name not in columns:
                columns[attribute.name] = attribute.type
    for level in dimension.levels.values():
        for name, scalar_type in level.window_columns().items():
            if name not in columns:
                columns[name] = scalar_type
    return columns


def fact_columns(schema: MDSchema, fact: Fact) -> Dict[str, ScalarType]:
    """Grain columns (typed via the linked dimensions) plus measures."""
    columns: Dict[str, ScalarType] = {}
    available: Dict[str, ScalarType] = {}
    for link in fact.links:
        dimension = schema.dimension(link.dimension)
        for name, scalar_type in dimension_columns(dimension).items():
            available.setdefault(name, scalar_type)
    for column in fact.grain:
        if column in columns:
            continue
        if column not in available:
            raise DeploymentError(
                f"fact {fact.name!r}: grain column {column!r} is not an "
                f"attribute of any linked dimension"
            )
        columns[column] = available[column]
    for measure in fact.measures.values():
        if measure.name in columns:
            raise DeploymentError(
                f"fact {fact.name!r}: measure {measure.name!r} collides "
                f"with a grain column"
            )
        columns[measure.name] = measure.type
    return columns


def create_table_statement(
    table: str,
    columns: Dict[str, ScalarType],
    primary_key: Optional[List[str]] = None,
    dialect: str = "postgres",
) -> str:
    check_dialect(dialect)
    lines = [f"CREATE TABLE {sql_identifier(table)} ("]
    parts = [
        f"  {sql_identifier(name)} {sql_type(scalar_type, dialect)}"
        for name, scalar_type in columns.items()
    ]
    if primary_key:
        rendered = ", ".join(sql_identifier(column) for column in primary_key)
        parts.append(f"  PRIMARY KEY( {rendered} )")
    lines.append(",\n".join(parts))
    lines.append(");")
    return "\n".join(lines)


def current_view_statement(dimension: Dimension, dialect: str = "postgres") -> str:
    """``CREATE VIEW dim_<name>_current`` over the open rows only.

    The view re-exposes the declared attributes (window columns hidden)
    so type-0 consumers can point at a versioned dimension unchanged.
    """
    check_dialect(dialect)
    table = dimension_table_name(dimension)
    declared: List[str] = []
    for level in dimension.levels.values():
        for attribute in level.attributes:
            if attribute.name not in declared:
                declared.append(attribute.name)
    columns = ", ".join(sql_identifier(name) for name in declared)
    return (
        f"CREATE VIEW {sql_identifier(table + '_current')} AS\n"
        f"SELECT {columns} FROM {sql_identifier(table)}\n"
        f"WHERE {sql_identifier(SCD2_IS_CURRENT)} = TRUE;"
    )


def point_in_time_join_statement(
    schema: MDSchema, fact: Fact, dimension: Dimension, dialect: str = "postgres"
) -> Optional[str]:
    """A point-in-time join view for a fact over a versioned dimension.

    ``CREATE VIEW <fact>_x_<dim>_pit`` joins the fact to every version
    of its dimension members and exposes the validity window; an
    as-of-date query filters ``scd_valid_from <= :as_of AND
    (scd_valid_to IS NULL OR scd_valid_to > :as_of)``.  ``None`` when
    the fact's grain does not carry the dimension's key (no join path).
    """
    check_dialect(dialect)
    link = fact.link_for(dimension.name)
    if link is None or not dimension.has_level(link.level):
        return None
    key = dimension.level(link.level).key
    if key is None or key not in fact.grain:
        return None
    table = dimension_table_name(dimension)
    fact_name = sql_identifier(fact.name)
    dim_name = sql_identifier(table)
    view = sql_identifier(f"{fact.name}_x_{table}_pit")
    measure_columns = ", ".join(
        f"f.{sql_identifier(name)}" for name in fact.measures
    )
    attribute_columns = ", ".join(
        f"d.{sql_identifier(name)}"
        for name in dimension_columns(dimension)
        if name != key
    )
    return (
        f"CREATE VIEW {view} AS\n"
        f"SELECT f.{sql_identifier(key)}, {measure_columns}, "
        f"{attribute_columns}\n"
        f"FROM {fact_name} f\n"
        f"JOIN {dim_name} d ON f.{sql_identifier(key)} = "
        f"d.{sql_identifier(key)};\n"
        f"-- as-of query: ... WHERE {sql_identifier(SCD2_VALID_FROM)} <= "
        f":as_of AND ({sql_identifier(SCD2_VALID_TO)} IS NULL OR "
        f"{sql_identifier(SCD2_VALID_TO)} > :as_of)"
    )


def generate(
    schema: MDSchema,
    dialect: str = "postgres",
    database_name: Optional[str] = None,
) -> str:
    """The full DDL script for an MD schema."""
    check_dialect(dialect)
    statements: List[str] = []
    if database_name is not None and dialect == "postgres":
        statements.append(f"CREATE DATABASE {sql_identifier(database_name)};")
    for dimension in schema.dimensions.values():
        statements.append(
            create_table_statement(
                dimension_table_name(dimension),
                dimension_columns(dimension),
                dialect=dialect,
            )
        )
        if dimension_is_versioned(dimension):
            statements.append(current_view_statement(dimension, dialect))
    for fact in schema.facts.values():
        statements.append(
            create_table_statement(
                fact.name,
                fact_columns(schema, fact),
                primary_key=list(dict.fromkeys(fact.grain)) or None,
                dialect=dialect,
            )
        )
        for link in fact.links:
            if not schema.has_dimension(link.dimension):
                continue
            dimension = schema.dimension(link.dimension)
            if not dimension_is_versioned(dimension):
                continue
            statement = point_in_time_join_statement(
                schema, fact, dimension, dialect
            )
            if statement is not None:
                statements.append(statement)
    return "\n\n".join(statements) + "\n"
