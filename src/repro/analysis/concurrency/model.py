"""The lock model the concurrency analyzer extracts from source.

Everything here is plain data: lock declarations, guarded-field
annotations, and per-function event streams (acquisitions, releases,
calls, blocking operations, guarded accesses) recorded in lexical
order with the tokens held at each point.  The analysis over the model
(call resolution, may-acquire propagation, cycle detection) lives in
:mod:`repro.analysis.concurrency.driver`.

Held-set tokens are tuples:

* ``("lock", name, via_self)`` — a named lock, and whether it was
  acquired through ``self`` (same-instance certainty matters for the
  non-reentrant re-acquisition rule);
* ``("cm", callee_key)`` — the body of a ``with obj.cm():`` whose
  context manager is a package function; expanded to that function's
  yield-held set once calls are resolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

Token = Tuple  # ("lock", name, via_self) | ("cm", callee_key)


@dataclass(frozen=True)
class LockDecl:
    """One named lock construction site (``self.attr = new_rlock(...)``)."""

    name: str  # canonical "Class.attr" name
    module: str  # repo-relative posix path
    owner: str  # declaring class ("" for module level)
    attr: str
    reentrant: bool
    line: int


@dataclass(frozen=True)
class GuardedField:
    """A ``# guarded-by:`` annotation on a field assignment."""

    owner: str  # declaring class
    attr: str
    lock: str  # guarding lock name
    writes_only: bool  # "[writes]": reads are benign (double-checked)
    module: str
    line: int


@dataclass(frozen=True)
class AcquireEvent:
    lock: Optional[str]  # None when the receiver could not be resolved
    via_self: bool
    manual: bool  # .acquire() call rather than a with statement
    held: Tuple[Token, ...]
    line: int
    text: str = ""  # source-ish rendering for unresolved receivers


@dataclass(frozen=True)
class ReleaseEvent:
    lock: Optional[str]
    in_finally: bool
    line: int


@dataclass(frozen=True)
class CallEvent:
    #: ("self", method) | ("attr", recv_hint, method) | ("name", name)
    #: | ("annot", "Class.method") | ("typed", class_name, method)
    ref: Tuple
    held: Tuple[Token, ...]
    line: int
    as_cm: bool = False  # used as a with-statement context manager


@dataclass(frozen=True)
class BlockingEvent:
    op: str  # human label, e.g. "pool submit", "bus publish"
    held: Tuple[Token, ...]
    line: int


@dataclass(frozen=True)
class AccessEvent:
    owner: str  # class declaring the guarded field
    attr: str
    write: bool
    held: Tuple[Token, ...]
    line: int


@dataclass(frozen=True)
class YieldEvent:
    held: Tuple[Token, ...]
    line: int


@dataclass
class FunctionInfo:
    """One function or method with its extracted event stream."""

    key: str  # "repro.engine.stats:StatisticsCatalog.table_stats"
    module: str  # repo-relative posix path
    dotted: str  # dotted module name
    qualname: str  # "Class.method" or "function"
    name: str
    owner: str  # class name or ""
    line: int
    is_contextmanager: bool = False
    is_process_kernel: bool = False
    returns: Optional[str] = None  # return-annotation class, if any
    events: List[object] = field(default_factory=list)
    #: Held tokens at the first ``yield`` (context managers only).
    yield_held: Tuple[Token, ...] = ()
    #: Purity violations (process kernels only): human descriptions.
    impurities: List[str] = field(default_factory=list)

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_")

    def location(self) -> str:
        return f"{self.module}:{self.line}"


@dataclass
class CodeModel:
    """The whole extracted package: declarations plus function events."""

    locks: Dict[str, LockDecl] = field(default_factory=dict)
    #: (owner class, attr) -> GuardedField
    guarded: Dict[Tuple[str, str], GuardedField] = field(default_factory=dict)
    #: function key -> FunctionInfo
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> {method name -> function key}
    classes: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class name -> {lock attr -> lock name} (for self.X resolution)
    class_locks: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: modules analyzed (repo-relative posix paths)
    modules: List[str] = field(default_factory=list)

    def lock_names(self) -> Set[str]:
        return set(self.locks)

    def methods_named(self, method: str) -> List[str]:
        """Function keys of every class method with this name."""
        return [
            methods[method]
            for methods in self.classes.values()
            if method in methods
        ]

    def reentrant(self, lock: str) -> bool:
        decl = self.locks.get(lock)
        return decl.reentrant if decl is not None else True
