"""The evolution oracle: incremental evolution versus full rebuild.

Each seed builds a random *design script* over the TPC-H domain — a
mix of requirement additions/removals and the four design-evolution
operators (rename / split / merge / retype), under randomly assigned
SCD policies — and runs it through one :class:`repro.core.Quarry`
session.  Three things must then hold:

* **Rebuild equivalence.**  Evolution re-folds only the affected
  suffix of the requirement order; re-integrating everything from
  scratch (``rebuild``) must produce a byte-identical unified design
  (xMD and xLM serialisations compared as text).
* **Replay equivalence.**  Folding the artifact-bus event log
  (``replay_unified_design``) must reproduce the evolved design — the
  typed ``partial.replaced`` envelopes carry enough to reconstruct it.
* **Mode parity.**  The final design's ETL executes on a generated
  TPC-H micro-database in all four engine modes; dimension tables
  (where the SCD merge writes) must be *byte-identical* across modes,
  fact tables must agree as quantised multisets (the planner may
  legitimately reorder fact rows, never dimension history).

Scripts may contain ops that fail (merging concepts on different
tables, retypes that break a requirement's expression typing): the
evolution service promises transactional rollback, so a failed op must
leave all three equivalences intact — the oracle records the failure
as a note and keeps going.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.quarry import Quarry
from repro.core.requirements import RequirementBuilder
from repro.errors import QuarryError
from repro.sources import tpch

#: Effective date stamped on SCD validity windows — fixed, never wall
#: clock, so trials are reproducible.
_EFFECTIVE_DATE = "2024-06-01"

#: Scale factor for the mode-parity micro-database.
_SCALE = 0.1

_MODES = ("legacy", "columnar", "planned", "parallel")

#: Retype targets the generator draws from.
_RETYPE_TYPES = ("integer", "decimal", "string", "boolean")


def _revenue(requirement_id: str):
    return (
        RequirementBuilder(
            requirement_id,
            "Analyze the average revenue per part and supplier name, "
            "for orders from Spain",
        )
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "AVERAGE",
        )
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )


def _netprofit(requirement_id: str):
    return (
        RequirementBuilder(
            requirement_id, "Analyze total net profit per part brand"
        )
        .measure(
            "netprofit",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
            "- Partsupp_ps_supplycost * Lineitem_l_quantity",
            "SUM",
        )
        .per("Part_p_brand")
        .build()
    )


def _quantity(requirement_id: str):
    return (
        RequirementBuilder(
            requirement_id, "Analyze shipped quantity per ship mode and nation"
        )
        .measure("quantity", "Lineitem_l_quantity", "SUM")
        .per("Lineitem_l_shipmode", "Nation_n_name")
        .build()
    )


def _priority(requirement_id: str):
    return (
        RequirementBuilder(
            requirement_id, "Analyze total order price per order priority"
        )
        .measure("totalprice", "Orders_o_totalprice", "SUM")
        .per("Orders_o_orderpriority")
        .build()
    )


#: Requirement catalogue: names are stable across evolution because
#: requirements reference datatype-property ids, which every operator
#: preserves (rename re-points them, split/merge move them).
_CATALOGUE = {
    "revenue": _revenue,
    "netprofit": _netprofit,
    "quantity": _quantity,
    "priority": _priority,
}


@dataclass
class EvolveTrial:
    """One evolution script plus the session's SCD policy assignment."""

    policies: Dict[str, str]
    script: List[dict]
    seed: Optional[int] = None
    notes: List[str] = field(default_factory=list)


# -- generation --------------------------------------------------------------


class _ShadowDomain:
    """A lightweight model of the evolving ontology.

    Tracks just enough — which concepts exist, which table each is
    bound to, which datatype properties each owns — for the generator
    to emit mostly-valid operator calls without running a session.
    """

    def __init__(self) -> None:
        ontology = tpch.ontology()
        mappings = tpch.mappings()
        self.tables: Dict[str, str] = {
            concept: mappings.table_of(concept)
            for concept in mappings.mapped_concepts()
        }
        self.properties: Dict[str, Set[str]] = {
            concept: set() for concept in self.tables
        }
        for prop in ontology.datatype_properties():
            self.properties[prop.concept].add(prop.id)

    def concepts(self) -> List[str]:
        return sorted(self.tables)

    def all_properties(self) -> List[str]:
        return sorted(
            prop for owned in self.properties.values() for prop in owned
        )

    def rename(self, old: str, new: str) -> None:
        self.tables[new] = self.tables.pop(old)
        self.properties[new] = self.properties.pop(old)

    def split(self, concept: str, new_concept: str, moved: List[str]) -> None:
        self.tables[new_concept] = self.tables[concept]
        self.properties[new_concept] = set(moved)
        self.properties[concept] -= set(moved)

    def merge(self, source: str, target: str) -> None:
        self.properties[target] |= self.properties.pop(source)
        del self.tables[source]

    def mergeable_pairs(self) -> List[Tuple[str, str]]:
        by_table: Dict[str, List[str]] = {}
        for concept in self.concepts():
            by_table.setdefault(self.tables[concept], []).append(concept)
        return [
            (source, target)
            for group in by_table.values()
            for source in group
            for target in group
            if source != target
        ]


def build_evolve_trial(seed: int) -> EvolveTrial:
    """The deterministic evolution trial for a seed."""
    rng = random.Random(f"evolve:{seed}")
    domain = _ShadowDomain()

    policies = {
        concept: rng.choice(("type1", "type2"))
        for concept in domain.concepts()
        if rng.random() < 0.5
    }

    script: List[dict] = []
    requirement_counter = 0
    live_requirements: List[str] = []
    split_counter = 0
    rename_counter = 0

    def add_requirement() -> None:
        nonlocal requirement_counter
        requirement_counter += 1
        requirement_id = f"IR{requirement_counter}"
        live_requirements.append(requirement_id)
        script.append(
            {
                "op": "add",
                "id": requirement_id,
                "requirement": rng.choice(sorted(_CATALOGUE)),
            }
        )

    # Always start with at least one requirement so the unified design
    # is non-trivial before the first evolution op.
    for _ in range(rng.randint(1, 3)):
        add_requirement()

    for _ in range(rng.randint(2, 8)):
        choice = rng.random()
        if choice < 0.15:
            add_requirement()
        elif choice < 0.25 and len(live_requirements) > 1:
            victim = rng.choice(live_requirements)
            live_requirements.remove(victim)
            script.append({"op": "remove", "id": victim})
        elif choice < 0.45:
            rename_counter += 1
            old = rng.choice(domain.concepts())
            new = f"{old}R{rename_counter}"
            script.append({"op": "rename", "old": old, "new": new})
            domain.rename(old, new)
        elif choice < 0.65:
            splittable = [
                concept
                for concept in domain.concepts()
                if len(domain.properties[concept]) >= 2
            ]
            if not splittable:
                continue
            split_counter += 1
            concept = rng.choice(splittable)
            owned = sorted(domain.properties[concept])
            count = rng.randint(1, len(owned) - 1)
            moved = rng.sample(owned, count)
            new_concept = f"{concept}S{split_counter}"
            script.append(
                {
                    "op": "split",
                    "concept": concept,
                    "new_concept": new_concept,
                    "properties": sorted(moved),
                }
            )
            domain.split(concept, new_concept, moved)
        elif choice < 0.80:
            pairs = domain.mergeable_pairs()
            if pairs and rng.random() < 0.9:
                source, target = rng.choice(pairs)
                script.append(
                    {"op": "merge", "source": source, "target": target}
                )
                domain.merge(source, target)
            else:
                # Deliberately invalid (different tables, or no pair at
                # all): must fail cleanly and roll back.
                concepts = domain.concepts()
                source = rng.choice(concepts)
                target = rng.choice(concepts)
                script.append(
                    {"op": "merge", "source": source, "target": target}
                )
        else:
            prop = rng.choice(domain.all_properties())
            script.append(
                {
                    "op": "retype",
                    "property": prop,
                    "type": rng.choice(_RETYPE_TYPES),
                }
            )

    return EvolveTrial(policies=policies, script=script, seed=seed)


# -- checking ----------------------------------------------------------------


def _fingerprint(design) -> Tuple[str, str]:
    from repro.xformats import xlm, xmd

    md_schema, etl_flow = design
    return xmd.dumps(md_schema), xlm.dumps(etl_flow)


def _apply(quarry: Quarry, op: dict) -> None:
    kind = op["op"]
    if kind == "add":
        quarry.add_requirement(_CATALOGUE[op["requirement"]](op["id"]))
    elif kind == "remove":
        quarry.remove_requirement(op["id"])
    elif kind == "rename":
        quarry.rename_concept(op["old"], op["new"])
    elif kind == "split":
        quarry.split_concept(
            op["concept"], op["new_concept"], list(op["properties"])
        )
    elif kind == "merge":
        quarry.merge_concepts(op["source"], op["target"])
    elif kind == "retype":
        quarry.retype_property(op["property"], op["type"])
    else:
        raise ValueError(f"unknown evolve op {kind!r}")


def _mode_outcomes(md_schema, etl_flow, mode: str):
    """Run the design's ETL in one mode; per-table fingerprints.

    *Versioned* dimension tables (any non-TYPE0 level) fingerprint as
    the exact row values in canonical order — every SCD window column
    (version, validity dates, current flag) must match to the byte,
    while row order may follow upstream joins the planner reorders.
    Other targets compare as quantised multisets (planner rewrites may
    also reassociate float accumulation in measures).
    """
    from repro.core.deployer import Deployer, ddl
    from repro.engine.database import Database
    from repro.engine.executor import Executor
    from repro.etlmodel.equivalence import prune_columns
    from repro.fuzz.planoracle import quantized_multiset
    from repro.mdmodel.model import SCDPolicy

    database = Database()
    database.load_source(tpch.schema(), tpch.generate(_SCALE, seed=7))
    Deployer()._create_star_tables(md_schema, database)
    flow = prune_columns(etl_flow)
    try:
        Executor(database, mode=mode).execute(flow)
    except Exception as exc:  # error parity is part of the contract
        # Elide quoted example values: which offending row an error
        # reports first is data-position-dependent, and the planner may
        # legitimately reach rows in a different order.
        message = re.sub(r"\('.*?'\)", "(<value>)", str(exc))
        return ("error", f"{type(exc).__name__}: {message}")
    versioned_tables = {
        ddl.dimension_table_name(dimension)
        for dimension in md_schema.dimensions.values()
        if any(
            level.scd_policy is not SCDPolicy.TYPE0
            for level in dimension.levels.values()
        )
    }
    targets = sorted(
        {node.table for node in flow.nodes() if node.kind == "Loader"}
    )
    outcome = {}
    for target in targets:
        rows = database.scan(target).rows
        if target in versioned_tables:
            outcome[target] = sorted(
                repr(sorted(row.items())) for row in rows
            )
        else:
            outcome[target] = quantized_multiset(rows)
    return ("ok", outcome)


def check_evolve_trial(trial: EvolveTrial) -> Optional[str]:
    """``None`` when all equivalences hold, else a description.

    Categories (text before the first colon): ``evolve-crash``,
    ``evolve-replay-divergence``, ``evolve-rebuild-divergence`` and
    ``evolve-mode-divergence`` — the shrinker preserves the category
    while minimising.
    """
    quarry = Quarry(
        tpch.ontology(),
        tpch.schema(),
        tpch.mappings(),
        scd_policies=dict(trial.policies),
        scd_effective_date=_EFFECTIVE_DATE,
    )
    trial.notes.clear()
    for index, op in enumerate(trial.script):
        try:
            _apply(quarry, op)
        except QuarryError as exc:
            # Expected failure mode: the op must have rolled back.
            trial.notes.append(f"op {index} {op['op']}: {exc}")
        except Exception as exc:
            return (
                f"evolve-crash: op {index} {op!r} raised "
                f"{type(exc).__name__}: {exc}"
            )

    if not quarry.requirements():
        return None  # every add failed: nothing to compare

    incremental = _fingerprint(quarry.unified_design())

    replayed = _fingerprint(quarry.session.replay_unified_design())
    if replayed != incremental:
        return (
            "evolve-replay-divergence: bus-log replay does not "
            "reproduce the evolved design"
        )

    md_schema, etl_flow = quarry.unified_design()
    baseline = _mode_outcomes(md_schema, etl_flow, _MODES[0])
    for mode in _MODES[1:]:
        outcome = _mode_outcomes(md_schema, etl_flow, mode)
        if outcome != baseline:
            return (
                f"evolve-mode-divergence: {_MODES[0]} and {mode} "
                f"disagree on the final design"
            )

    quarry.rebuild()
    rebuilt = _fingerprint(quarry.unified_design())
    if rebuilt != incremental:
        return (
            "evolve-rebuild-divergence: full re-integration differs "
            "from the incrementally evolved design"
        )
    return None


# -- shrinking ---------------------------------------------------------------


def shrink_evolve_trial(trial: EvolveTrial, budget: int = 250) -> EvolveTrial:
    """Minimise the script while preserving the failure category.

    Classic ddmin-lite: try dropping chunks of ops (halving the chunk
    size down to single ops), re-checking after each removal.  Ops are
    only ever *removed*, so the shrunk script is always a subsequence
    of the original — replayable with the same policies.
    """
    detail = check_evolve_trial(trial)
    if detail is None:
        return trial
    category = detail.split(":", 1)[0]
    attempts = 0

    def still_fails(candidate: EvolveTrial) -> bool:
        nonlocal attempts
        attempts += 1
        result = check_evolve_trial(candidate)
        return result is not None and result.split(":", 1)[0] == category

    script = list(trial.script)
    chunk = max(1, len(script) // 2)
    while chunk >= 1 and attempts < budget:
        index = 0
        while index < len(script) and attempts < budget:
            candidate_script = script[:index] + script[index + chunk :]
            candidate = EvolveTrial(
                policies=dict(trial.policies),
                script=candidate_script,
                seed=trial.seed,
            )
            if candidate_script and still_fails(candidate):
                script = candidate_script
            else:
                index += chunk
        chunk //= 2

    shrunk = EvolveTrial(
        policies=dict(trial.policies), script=script, seed=trial.seed
    )
    return shrunk if still_fails(shrunk) else trial
