"""A4 — the communication & metadata layer's format round-trips.

The layer's correctness contract: every artefact survives
xRQ/xMD/xLM serialisation and the XML↔JSON↔XML repository boundary
byte-identically.  Throughput is measured per format on the Figure-3/4
documents.
"""

import pytest

from repro.core.interpreter import Interpreter
from repro.sources import tpch
from repro.xformats import xlm, xmd, xrq
from repro.xformats.xmljson import json_to_xml, xml_to_json

from benchmarks._workloads import revenue_requirement


@pytest.fixture(scope="module")
def design():
    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    return interpreter.interpret(revenue_requirement())


class TestRoundTripFidelity:
    def test_xrq_stable(self, design):
        text = xrq.dumps(design.requirement)
        assert xrq.dumps(xrq.loads(text)) == text

    def test_xmd_stable(self, design):
        text = xmd.dumps(design.md_schema)
        assert xmd.dumps(xmd.loads(text)) == text

    def test_xlm_stable(self, design):
        text = xlm.dumps(design.etl_flow)
        assert xlm.dumps(xlm.loads(text)) == text

    @pytest.mark.parametrize("format_name", ["xrq", "xmd", "xlm"])
    def test_repository_boundary_preserves_documents(self, design, format_name):
        text = {
            "xrq": lambda: xrq.dumps(design.requirement),
            "xmd": lambda: xmd.dumps(design.md_schema),
            "xlm": lambda: xlm.dumps(design.etl_flow),
        }[format_name]()
        assert json_to_xml(xml_to_json(text)) == text


class TestThroughput:
    @pytest.mark.parametrize("format_name", ["xrq", "xmd", "xlm"])
    def test_serialise(self, benchmark, design, format_name):
        action = {
            "xrq": lambda: xrq.dumps(design.requirement),
            "xmd": lambda: xmd.dumps(design.md_schema),
            "xlm": lambda: xlm.dumps(design.etl_flow),
        }[format_name]
        benchmark.group = "A4 serialise"
        benchmark.name = format_name
        assert benchmark(action)

    @pytest.mark.parametrize("format_name", ["xrq", "xmd", "xlm"])
    def test_parse(self, benchmark, design, format_name):
        text = {
            "xrq": lambda: xrq.dumps(design.requirement),
            "xmd": lambda: xmd.dumps(design.md_schema),
            "xlm": lambda: xlm.dumps(design.etl_flow),
        }[format_name]()
        parser = {"xrq": xrq.loads, "xmd": xmd.loads, "xlm": xlm.loads}[
            format_name
        ]
        benchmark.group = "A4 parse"
        benchmark.name = format_name
        assert benchmark(lambda: parser(text))

    def test_xml_json_boundary(self, benchmark, design):
        text = xlm.dumps(design.etl_flow)
        benchmark.group = "A4 repository boundary"
        benchmark.name = "xml->json->xml"
        assert benchmark(lambda: json_to_xml(xml_to_json(text)))
