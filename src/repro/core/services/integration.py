"""The Design Integration service.

Consumes partial-design envelopes from the ``partials`` topic, folds
each into the session's unified design (MD integration + ETL
consolidation, §2.3) and owns everything about that fold: the
requirement order, the per-position checkpoints that make incremental
change/remove sub-linear, the ``integration_counts`` observable, and
the satisfiability validation of the unified design.

State is persisted through the session-scoped metadata repository on
every commit — requirement, partial design, unified design, the fold
checkpoint and the insertion order — so a reloaded session resumes
incrementally instead of re-integrating from scratch.  Each commit is
announced as a ``design.committed`` envelope on the ``unified`` topic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.integrator import (
    EtlConsolidation,
    EtlIntegrator,
    MDIntegration,
    MDIntegrator,
)
from repro.core.interpreter import PartialDesign
from repro.core.requirements.model import InformationRequirement
from repro.core.services import interpretation as _interpretation
from repro.core.services.bus import ArtifactBus
from repro.core.services.envelope import ArtifactEnvelope
from repro.errors import IntegrationError, QuarryError
from repro.etlmodel.cost import CostModel
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.complexity import ComplexityWeights, DEFAULT_WEIGHTS
from repro.mdmodel.model import MDSchema
from repro.xformats import xrq
from repro.xformats.xmljson import json_to_xml

TOPIC_UNIFIED = "unified"

KIND_COMMITTED = "design.committed"


def retarget_loaders(flow: EtlFlow, md_result: MDIntegration) -> EtlFlow:
    """Follow the MD integrator's renames/merges on the ETL side.

    When a partial fact merged into (or was renamed to) a differently
    named unified fact, or a partial dimension merged into another, the
    partial flow's loaders must target the *unified* table names before
    consolidation.  Returns a rewritten copy (or the input flow when no
    rename applies).
    """
    from repro.etlmodel.ops import Loader

    renames = {}
    for decision in md_result.decisions:
        if decision.partial_element == decision.unified_element:
            continue
        if decision.kind == "fact":
            renames[decision.partial_element] = decision.unified_element
        else:
            renames[f"dim_{decision.partial_element}"] = (
                f"dim_{decision.unified_element}"
            )
    if not renames:
        return flow
    rewritten = flow.copy()
    for name in rewritten.node_names():
        operation = rewritten.node(name)
        if isinstance(operation, Loader) and operation.table in renames:
            rewritten.replace_node(
                name,
                Loader(
                    name,
                    table=renames[operation.table],
                    mode=operation.mode,
                ),
            )
    return rewritten


class IntegrationService:
    """Folds partial designs into the session's unified design."""

    name = "integration"

    def __init__(
        self,
        repository,
        bus: ArtifactBus,
        md_weights: ComplexityWeights = DEFAULT_WEIGHTS,
        cost_model: Optional[CostModel] = None,
        align_etl: bool = True,
        row_counts: Optional[Dict[str, int]] = None,
    ) -> None:
        self._repository = repository
        self._bus = bus
        self._md_weights = md_weights
        self._md_integrator = MDIntegrator(weights=md_weights)
        self._cost_model = cost_model if cost_model is not None else CostModel()
        self._etl_integrator = EtlIntegrator(
            cost_model=self._cost_model, align=align_etl
        )
        self._row_counts = row_counts
        self._partials: Dict[str, PartialDesign] = {}
        self._order: List[str] = []
        self._unified_md = MDSchema(name="unified")
        self._unified_etl = EtlFlow(name="unified")
        # Unified design after each commit, aligned with self._order:
        # _checkpoints[i] is the state after integrating _order[:i + 1].
        # Stored by reference — integrate()/consolidate() copy their
        # inputs, so a committed snapshot is never mutated afterwards.
        self._checkpoints: List[Tuple[MDSchema, EtlFlow]] = []
        #: How many MD / ETL integration calls this service has made —
        #: the observable that incremental changes stay sub-linear.
        self.integration_counts: Dict[str, int] = {"md": 0, "etl": 0}
        #: The (partial, md_result, etl_result) triple of the most
        #: recent commit, collected by the session orchestrator into a
        #: :class:`~repro.core.services.reports.ChangeReport`.
        self._last_commit = None
        bus.subscribe(_interpretation.TOPIC_PARTIALS, self._on_partial)

    # -- introspection -----------------------------------------------------

    @property
    def md_weights(self) -> ComplexityWeights:
        return self._md_weights

    @property
    def cost_model(self) -> CostModel:
        return self._cost_model

    @property
    def row_counts(self) -> Optional[Dict[str, int]]:
        return self._row_counts

    def has(self, requirement_id: str) -> bool:
        return requirement_id in self._partials

    def order(self) -> List[str]:
        return list(self._order)

    def unified_design(self) -> Tuple[MDSchema, EtlFlow]:
        """The current unified MD schema and ETL flow."""
        return self._unified_md, self._unified_etl

    def requirements(self) -> List[InformationRequirement]:
        return [
            self._partials[requirement_id].requirement
            for requirement_id in self._order
        ]

    def partial_design(self, requirement_id: str) -> PartialDesign:
        try:
            return self._partials[requirement_id]
        except KeyError:
            raise QuarryError(
                f"unknown requirement {requirement_id!r}"
            ) from None

    def take_last_commit(self):
        """Pop the (partial, md_result, etl_result) of the latest commit."""
        result, self._last_commit = self._last_commit, None
        return result

    # -- the fold ----------------------------------------------------------

    def _on_partial(self, envelope: ArtifactEnvelope) -> None:
        if envelope.kind != _interpretation.KIND_CREATED:
            return
        partial = envelope.attachment
        if partial is None:  # consumed from a log: decode the payload
            md_schema, etl_flow = (
                _interpretation.InterpretationService.decode_partial(envelope)
            )
            partial = PartialDesign(
                requirement=xrq.loads(
                    json_to_xml(envelope.payload["xrq"])
                ),
                mapping=None,
                md_schema=md_schema,
                etl_flow=etl_flow,
            )
        md_result, etl_result = self._integrate_partial(partial)
        self._commit(partial.requirement, partial, md_result, etl_result)
        self._last_commit = (partial, md_result, etl_result)

    def _integrate_partial(
        self, partial: PartialDesign
    ) -> Tuple[MDIntegration, EtlConsolidation]:
        """Integrate one partial design into the current unified pair."""
        md_result = self._md_integrator.integrate(
            self._unified_md, partial.md_schema
        )
        self.integration_counts["md"] += 1
        etl_flow = retarget_loaders(partial.etl_flow, md_result)
        etl_result = self._etl_integrator.consolidate(
            self._unified_etl, etl_flow, row_counts=self._row_counts
        )
        self.integration_counts["etl"] += 1
        return md_result, etl_result

    def _commit(self, requirement, partial, md_result, etl_result) -> None:
        self._unified_md = md_result.schema
        self._unified_etl = etl_result.flow
        self._partials[requirement.id] = partial
        self._order.append(requirement.id)
        self._checkpoints.append((self._unified_md, self._unified_etl))
        self.verify_satisfiability()
        self._repository.save_requirement(requirement)
        self._repository.save_partial_design(
            requirement.id, partial.md_schema, partial.etl_flow
        )
        self._save_unified()
        self._repository.save_checkpoint(
            len(self._checkpoints) - 1, self._unified_md, self._unified_etl
        )
        self._announce_commit()

    def remove(self, requirement_id: str) -> None:
        """Drop a requirement and re-integrate the ones after it.

        Integration is a deterministic left fold over the requirement
        order, so the design up to the removed requirement is untouched:
        the checkpoint just before it is restored and only the suffix is
        re-integrated.  Removing the most recent requirement therefore
        costs no integration calls at all.
        """
        if requirement_id not in self._partials:
            raise QuarryError(f"unknown requirement {requirement_id!r}")
        index = self._order.index(requirement_id)
        del self._partials[requirement_id]
        self._order.pop(index)
        self._repository.delete_requirement(requirement_id)
        self._bus.publish(
            _interpretation.TOPIC_PARTIALS,
            _interpretation.KIND_REMOVED,
            payload={"requirement": requirement_id},
            producer=self.name,
        )
        self.reintegrate_from(index)

    def replace_partial(
        self, requirement_id: str, partial: PartialDesign
    ) -> int:
        """Swap one requirement's partial design *in place*.

        The fold position is kept — evolution operators swap every
        affected partial first, then re-fold once from the minimum
        affected position via :meth:`reintegrate_from`; nothing before
        that checkpoint is recomputed.  Returns the fold position.
        """
        if requirement_id not in self._partials:
            raise QuarryError(f"unknown requirement {requirement_id!r}")
        index = self._order.index(requirement_id)
        self._partials[requirement_id] = partial
        self._repository.save_requirement(partial.requirement)
        self._repository.save_partial_design(
            requirement_id, partial.md_schema, partial.etl_flow
        )
        return index

    def rebuild(self) -> None:
        """Re-integrate every partial design from scratch.

        The pre-incremental code path, kept as the reference the
        incremental updates are verified (and benchmarked) against —
        both produce the same deterministic fold over the requirement
        order, so their results are identical.
        """
        self.reintegrate_from(0)

    def reintegrate_from(self, start: int) -> None:
        """Restore the checkpoint before ``start`` and re-fold the rest."""
        del self._checkpoints[start:]
        self._repository.truncate_checkpoints(start)
        if start == 0:
            self._unified_md = MDSchema(name="unified")
            self._unified_etl = EtlFlow(name="unified")
        else:
            self._unified_md, self._unified_etl = self._checkpoints[start - 1]
        for requirement_id in self._order[start:]:
            partial = self._partials[requirement_id]
            md_result, etl_result = self._integrate_partial(partial)
            self._unified_md = md_result.schema
            self._unified_etl = etl_result.flow
            self._checkpoints.append((self._unified_md, self._unified_etl))
            self._repository.save_checkpoint(
                len(self._checkpoints) - 1,
                self._unified_md,
                self._unified_etl,
            )
        self.verify_satisfiability()
        self._save_unified()
        self._announce_commit()

    def _save_unified(self) -> None:
        self._repository.save_unified_design(
            "current", self._unified_md, self._unified_etl, list(self._order)
        )
        self._repository.save_session_state(self._order)

    def _announce_commit(self) -> None:
        self._bus.publish(
            TOPIC_UNIFIED,
            KIND_COMMITTED,
            payload={
                "requirements": list(self._order),
                "facts": sorted(self._unified_md.facts),
                "dimensions": sorted(self._unified_md.dimensions),
                "etl_operations": len(self._unified_etl),
                "integration_counts": dict(self.integration_counts),
            },
            producer=self.name,
        )

    # -- validation --------------------------------------------------------

    def verify_satisfiability(self) -> None:
        """Every requirement processed so far must still be answerable."""
        problems = self.satisfiability_problems()
        if problems:
            raise IntegrationError(
                "unified design no longer satisfies all requirements: "
                + "; ".join(problems)
            )

    def satisfiability_problems(self) -> List[str]:
        """Structural satisfiability check of the unified design."""
        problems: List[str] = []
        level_properties = {
            attribute.property
            for __, level in self._unified_md.iter_levels()
            for attribute in level.attributes
            if attribute.property is not None
        }
        for requirement_id in self._order:
            requirement = self._partials[requirement_id].requirement
            fact = self._find_serving_fact(requirement)
            if fact is None:
                problems.append(
                    f"{requirement_id}: no fact carries its measures"
                )
                continue
            for dimension in requirement.dimensions:
                if dimension.property not in level_properties:
                    problems.append(
                        f"{requirement_id}: dimension atom "
                        f"{dimension.property!r} not in any level"
                    )
            if requirement_id not in self._unified_etl.requirements:
                problems.append(
                    f"{requirement_id}: unified ETL does not cover it"
                )
        return problems

    def _find_serving_fact(self, requirement):
        for fact in self._unified_md.facts.values():
            if all(
                measure.name in fact.measures
                and fact.measures[measure.name].expression == measure.expression
                for measure in requirement.measures
            ):
                return fact
        return None

    # -- session resume ----------------------------------------------------

    def restore_from_repository(self) -> bool:
        """Resume the fold state persisted by a previous session.

        Restores the insertion order, every partial design, every fold
        checkpoint and the unified pair — without a single integration
        call, so ``integration_counts`` stays zero and later changes
        remain incremental.  Returns ``False`` (leaving the service
        empty) when the store predates persisted session state; the
        caller then falls back to re-adding requirements.
        """
        state = self._repository.load_session_state()
        if state is None:
            return False
        order = list(state.get("order", []))
        if self._repository.checkpoint_count() != len(order):
            return False  # half-written legacy store: re-add instead
        try:
            partials = {}
            for requirement_id in order:
                requirement = self._repository.load_requirement(
                    requirement_id
                )
                md_schema, etl_flow = self._repository.load_partial_design(
                    requirement_id
                )
                partials[requirement_id] = PartialDesign(
                    requirement=requirement,
                    mapping=None,
                    md_schema=md_schema,
                    etl_flow=etl_flow,
                )
            checkpoints = [
                self._repository.load_checkpoint(position)
                for position in range(len(order))
            ]
        except Exception:
            return False  # damaged store: the legacy path re-derives
        self._partials = partials
        self._order = order
        self._checkpoints = checkpoints
        if checkpoints:
            self._unified_md, self._unified_etl = checkpoints[-1]
        self.verify_satisfiability()
        return True
