"""``python -m repro.serve`` — serve the TPC-H demo domain over HTTP."""

from __future__ import annotations

import argparse

from repro.serve.server import QuarryServer, tpch_manager


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve Quarry design sessions over HTTP (TPC-H domain).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8747, help="0 picks a free port"
    )
    args = parser.parse_args(argv)
    server = QuarryServer(tpch_manager(), host=args.host, port=args.port)
    print(f"serving Quarry on {server.url} (Ctrl-C to stop)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
