"""Schema propagation through an ETL flow.

Derives, for every node, the attribute schema (ordered name -> type) of
the rows it emits, starting from the source schema of the datastores.
This is the semantic half of flow validation: structural validation
(:meth:`EtlFlow.validate`) checks shape, propagation checks that every
referenced attribute exists and every predicate/expression type-checks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import SchemaPropagationError, TypeCheckError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    Loader,
    Operation,
    Projection,
    Rename,
    SCDType,
    SCDUpdate,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.mdmodel.model import SCD2_COLUMNS
from repro.expressions import infer_type, parse
from repro.expressions.types import ScalarType
from repro.sources.schema import SourceSchema

Schema = Dict[str, ScalarType]


def propagate(
    flow: EtlFlow, source_schema: Optional[SourceSchema] = None
) -> Dict[str, Schema]:
    """Compute the output schema of every node.

    ``source_schema`` resolves :class:`Datastore` tables; a datastore
    whose table is unknown (or when no source schema is given) must
    carry explicit ``columns`` — then all columns default to STRING
    unless the source schema can type them.

    Raises :class:`SchemaPropagationError` on any inconsistency.
    """
    schemas: Dict[str, Schema] = {}
    for name in flow.topological_order():
        operation = flow.node(name)
        input_schemas = [schemas[source] for source in flow.inputs(name)]
        schemas[name] = _output_schema(operation, input_schemas, source_schema)
    return schemas


def attribute_names(flow: EtlFlow) -> Dict[str, Optional[set]]:
    """Structurally derive the attribute-name set each node emits.

    Unlike :func:`propagate` this needs no source schema and never
    raises: where names cannot be determined (a datastore without
    explicit columns) the entry — and everything depending on it that
    cannot restore certainty — is ``None``.  Extraction/Projection and
    Aggregation nodes restore certainty because they fix their output
    columns themselves.
    """
    result: Dict[str, Optional[set]] = {}
    for name in flow.topological_order():
        operation = flow.node(name)
        inputs = [result[source] for source in flow.inputs(name)]
        result[name] = _names_of(operation, inputs)
    return result


def _names_of(operation: Operation, inputs: list) -> Optional[set]:
    if isinstance(operation, Datastore):
        return set(operation.columns) if operation.columns else None
    if isinstance(operation, (Extraction, Projection)):
        return set(operation.columns)
    if isinstance(operation, Aggregation):
        return set(operation.group_by) | {
            spec.output for spec in operation.aggregates
        }
    if not inputs or inputs[0] is None:
        return None
    if isinstance(operation, Join):
        # A join missing an input is an arity violation (the structural
        # checks report it); its output names are simply unknown.
        if len(inputs) != 2 or inputs[1] is None:
            return None
        return inputs[0] | inputs[1]
    if isinstance(operation, DerivedAttribute):
        return inputs[0] | {operation.output}
    if isinstance(operation, SurrogateKey):
        return inputs[0] | {operation.output}
    if isinstance(operation, SCDUpdate):
        if operation.policy == SCDType.TYPE2:
            return inputs[0] | set(SCD2_COLUMNS)
        return set(inputs[0])
    if isinstance(operation, Rename):
        mapping = operation.mapping()
        return {mapping.get(name, name) for name in inputs[0]}
    return set(inputs[0])


def _fail(operation: Operation, message: str) -> SchemaPropagationError:
    return SchemaPropagationError(
        f"{operation.kind} {operation.name!r}: {message}"
    )


def _output_schema(
    operation: Operation,
    inputs: list,
    source_schema: Optional[SourceSchema],
) -> Schema:
    if isinstance(operation, Datastore):
        return _datastore_schema(operation, source_schema)
    if isinstance(operation, (Extraction, Projection)):
        return _projection_schema(operation, inputs[0])
    if isinstance(operation, Selection):
        return _selection_schema(operation, inputs[0])
    if isinstance(operation, Join):
        return _join_schema(operation, inputs[0], inputs[1])
    if isinstance(operation, Aggregation):
        return _aggregation_schema(operation, inputs[0])
    if isinstance(operation, DerivedAttribute):
        return _derive_schema(operation, inputs[0])
    if isinstance(operation, Rename):
        return _rename_schema(operation, inputs[0])
    if isinstance(operation, UnionOp):
        return _union_schema(operation, inputs[0], inputs[1])
    if isinstance(operation, SurrogateKey):
        return _surrogate_schema(operation, inputs[0])
    if isinstance(operation, SCDUpdate):
        return _scd_schema(operation, inputs[0])
    if isinstance(operation, (Sort, Loader, Distinct)):
        return _passthrough_schema(operation, inputs[0])
    raise _fail(operation, f"unknown operation kind {operation.kind!r}")


def _datastore_schema(
    operation: Datastore, source_schema: Optional[SourceSchema]
) -> Schema:
    if source_schema is not None and source_schema.has_table(operation.table):
        table = source_schema.table(operation.table)
        types = table.column_types()
        if operation.columns:
            missing = [c for c in operation.columns if c not in types]
            if missing:
                raise _fail(operation, f"unknown columns {missing}")
            return {column: types[column] for column in operation.columns}
        return {column: types[column] for column in table.column_names()}
    if not operation.columns:
        raise _fail(
            operation,
            f"table {operation.table!r} unknown and no explicit columns",
        )
    return {column: ScalarType.STRING for column in operation.columns}


def _projection_schema(operation, input_schema: Schema) -> Schema:
    missing = [c for c in operation.columns if c not in input_schema]
    if missing:
        raise _fail(operation, f"unknown attributes {missing}")
    return {column: input_schema[column] for column in operation.columns}


def _selection_schema(operation: Selection, input_schema: Schema) -> Schema:
    try:
        result = infer_type(
            parse(operation.predicate), input_schema, node=operation.name
        )
    except TypeCheckError as exc:
        # The chained exc carries node + expression for programmatic
        # consumers; the message quotes only the bare failure.
        raise _fail(
            operation, f"predicate does not type-check: {exc.bare_message}"
        ) from exc
    if result is not None and result is not ScalarType.BOOLEAN:
        raise _fail(operation, f"predicate has type {result}, expected boolean")
    return dict(input_schema)


def _join_schema(operation: Join, left: Schema, right: Schema) -> Schema:
    for key in operation.left_keys:
        if key not in left:
            raise _fail(operation, f"left key {key!r} not in left input")
    for key in operation.right_keys:
        if key not in right:
            raise _fail(operation, f"right key {key!r} not in right input")
    joined_pairs = set(zip(operation.left_keys, operation.right_keys))
    result = dict(left)
    for name, scalar_type in right.items():
        if name in result:
            if (name, name) in joined_pairs:
                continue  # equi-joined same-named key collapses to one
            raise _fail(operation, f"attribute {name!r} exists on both sides")
        result[name] = scalar_type
    return result


_AGG_RESULT = {
    "SUM": None,  # input type
    "MIN": None,
    "MAX": None,
    "AVERAGE": ScalarType.DECIMAL,
    "COUNT": ScalarType.INTEGER,
}


def _aggregation_schema(operation: Aggregation, input_schema: Schema) -> Schema:
    result: Schema = {}
    for attribute in operation.group_by:
        if attribute not in input_schema:
            raise _fail(operation, f"group-by attribute {attribute!r} missing")
        result[attribute] = input_schema[attribute]
    if not operation.aggregates:
        raise _fail(operation, "no aggregate outputs")
    for spec in operation.aggregates:
        if spec.input not in input_schema:
            raise _fail(operation, f"aggregate input {spec.input!r} missing")
        if spec.function not in _AGG_RESULT:
            raise _fail(operation, f"unknown aggregate function {spec.function!r}")
        if spec.output in result:
            raise _fail(operation, f"duplicate output {spec.output!r}")
        input_type = input_schema[spec.input]
        if spec.function in ("SUM", "AVERAGE") and not input_type.is_numeric:
            raise _fail(
                operation,
                f"{spec.function} over non-numeric attribute {spec.input!r}",
            )
        fixed = _AGG_RESULT[spec.function]
        result[spec.output] = fixed if fixed is not None else input_type
    return result


def _derive_schema(operation: DerivedAttribute, input_schema: Schema) -> Schema:
    try:
        result_type = infer_type(
            parse(operation.expression), input_schema, node=operation.name
        )
    except TypeCheckError as exc:
        raise _fail(
            operation, f"expression does not type-check: {exc.bare_message}"
        ) from exc
    if result_type is None:
        result_type = ScalarType.STRING
    result = dict(input_schema)
    result[operation.output] = result_type
    return result


def _rename_schema(operation: Rename, input_schema: Schema) -> Schema:
    mapping = operation.mapping()
    missing = [old for old in mapping if old not in input_schema]
    if missing:
        raise _fail(operation, f"renaming unknown attributes {missing}")
    result: Schema = {}
    for name, scalar_type in input_schema.items():
        new_name = mapping.get(name, name)
        if new_name in result:
            raise _fail(operation, f"rename collides on {new_name!r}")
        result[new_name] = scalar_type
    return result


def _union_schema(operation: UnionOp, left: Schema, right: Schema) -> Schema:
    if list(left.items()) != list(right.items()):
        raise _fail(operation, "inputs are not union-compatible")
    return dict(left)


def _surrogate_schema(operation: SurrogateKey, input_schema: Schema) -> Schema:
    for key in operation.business_keys:
        if key not in input_schema:
            raise _fail(operation, f"business key {key!r} missing")
    if operation.output in input_schema:
        raise _fail(operation, f"output {operation.output!r} already exists")
    result = {operation.output: ScalarType.INTEGER}
    result.update(input_schema)
    return result


def _scd_schema(operation: SCDUpdate, input_schema: Schema) -> Schema:
    for key in operation.business_keys:
        if key not in input_schema:
            raise _fail(operation, f"business key {key!r} missing")
    if not operation.business_keys:
        raise _fail(operation, "no business keys")
    if operation.policy != SCDType.TYPE2:
        return dict(input_schema)
    collisions = [name for name in SCD2_COLUMNS if name in input_schema]
    if collisions:
        raise _fail(
            operation,
            f"input attributes {collisions} collide with SCD2 "
            f"validity-window columns",
        )
    result = dict(input_schema)
    result.update(SCD2_COLUMNS)
    return result


def _passthrough_schema(operation, input_schema: Schema) -> Schema:
    if isinstance(operation, Sort):
        missing = [key for key in operation.keys if key not in input_schema]
        if missing:
            raise _fail(operation, f"sort keys {missing} missing")
    return dict(input_schema)
