"""Assisted data exploration with the Requirements Elicitor (Figure 2).

Plays the role of a non-expert business user on a *second* domain (the
retail point-of-sale sources): browse the ontology graph, pick a focus,
accept suggested perspectives, resolve business-vocabulary terms, and
let Quarry build and deploy the design — without ever naming a source
table or column.

Run with::

    python examples/exploration.py
"""

import json

from repro import Quarry, RequirementBuilder
from repro.engine import Database, OlapQuery, query_star
from repro.sources import retail


def main() -> None:
    print("=== Assisted exploration of the retail domain ===\n")
    quarry = Quarry(retail.ontology(), retail.schema(), retail.mappings())
    elicitor = quarry.elicitor()

    # The D3 document the web UI would render (Figure 2's graph).
    document = elicitor.graph_document(highlight="TicketLine")
    print(f"Ontology graph: {len(document['nodes'])} nodes, "
          f"{len(document['links'])} links")
    suggested = [node["id"] for node in document["nodes"] if node["suggested"]]
    print("Highlighted as suggested dimensions:", suggested)

    print("\nWho should be the subject of analysis?")
    for suggestion in elicitor.suggest_facts(limit=3):
        print(f"  {suggestion.element_id:<12} {suggestion.reason}")
    focus = elicitor.suggest_facts(limit=1)[0].element_id
    print(f"-> focusing on {focus}")

    perspective = elicitor.suggest_perspective(focus)
    print("\nSuggested measures:")
    for suggestion in perspective["measures"][:3]:
        print(f"  {suggestion.element_id:<22} {suggestion.reason}")
    print("Suggested slicers:")
    for suggestion in perspective["slicers"][:3]:
        print(f"  {suggestion.element_id:<22} {suggestion.reason}")

    # The user talks business vocabulary, not column names.
    vocabulary = quarry.vocabulary()
    amount = vocabulary.resolve("sale amount").element_id
    category = vocabulary.resolve("category").element_id
    country = vocabulary.resolve("country").element_id
    print(f"\nResolved terms: 'sale amount' -> {amount}, "
          f"'category' -> {category}, 'country' -> {country}")

    requirement = (
        RequirementBuilder("R1", "sales per product category and country")
        .measure("sales", amount, "SUM")
        .per(category, country)
        .build()
    )
    quarry.add_requirement(requirement)
    status = quarry.status()
    print(f"\nDesign built: facts={status.facts} "
          f"dimensions={status.dimensions}")

    database = Database()
    database.load_source(retail.schema(), retail.generate(scale_factor=1.0))
    quarry.deploy("native", source_database=database)
    answer = query_star(
        database,
        OlapQuery(
            fact_table="fact_table_sales",
            group_by=["category", "country"],
            aggregates=[("SUM", "sales", "total")],
        ),
    )
    print("\nSales per category and country (first 8 rows):")
    for row in answer.rows[:8]:
        print(f"  {row['category']:<12} {row['country']:<10} "
              f"{row['total']:>12.2f}")


if __name__ == "__main__":
    main()
