"""Secondary-index behaviour of the document store.

Three layers of guarantees:

* **maintenance** — insert/replace/update/delete/delete_many keep the
  index in lockstep with the documents, whether the index was declared
  before the writes (incremental) or after (backfill),
* **routing** — the planner answers safe equality/``$in`` queries from
  the index (observable via ``Collection.stats``) and falls back to the
  scan everywhere else,
* **parity** — an indexed collection returns exactly what an unindexed
  one does, errors included.
"""

import pytest

from repro.errors import RepositoryError
from repro.repository import Collection, DocumentStore
from repro.repository import store as store_io


def seeded(*, indexed: bool) -> Collection:
    collection = Collection("c")
    if indexed:
        collection.create_index("kind")
        collection.create_index("nest.x")
    collection.insert({"_id": "a", "kind": "fact", "nest": {"x": 1}})
    collection.insert({"_id": "b", "kind": "dim", "nest": {"x": 2}})
    collection.insert({"_id": "c", "kind": "fact"})
    collection.insert({"_id": "d"})
    return collection


class TestMaintenance:
    def test_backfill_equals_incremental(self):
        incremental = seeded(indexed=True)
        backfilled = seeded(indexed=False)
        backfilled.create_index("kind")
        backfilled.create_index("nest.x")
        for query in (
            {"kind": "fact"}, {"nest.x": 2}, {"kind": "ghost"}
        ):
            assert incremental.find(query) == backfilled.find(query)

    def test_replace_moves_index_entry(self):
        collection = seeded(indexed=True)
        collection.replace({"_id": "a", "kind": "dim"})
        assert [d["_id"] for d in collection.find({"kind": "dim"})] == ["a", "b"]
        assert [d["_id"] for d in collection.find({"kind": "fact"})] == ["c"]

    def test_update_moves_index_entry(self):
        collection = seeded(indexed=True)
        collection.update("c", {"kind": "dim"})
        assert [d["_id"] for d in collection.find({"kind": "fact"})] == ["a"]
        assert [d["_id"] for d in collection.find({"kind": "dim"})] == ["b", "c"]

    def test_delete_drops_index_entry(self):
        collection = seeded(indexed=True)
        collection.delete("a")
        assert [d["_id"] for d in collection.find({"kind": "fact"})] == ["c"]

    def test_delete_many_drops_entries_and_positions(self):
        collection = seeded(indexed=True)
        assert collection.delete_many({"kind": "fact"}) == 2
        assert collection.find({"kind": "fact"}) == []
        # Re-inserting a deleted id lands at the end of collection
        # order: its old position really was released.
        collection.insert({"_id": "a", "kind": "dim"})
        assert [d["_id"] for d in collection.find()] == ["b", "d", "a"]

    def test_create_index_is_idempotent(self):
        collection = seeded(indexed=True)
        collection.create_index("kind")
        assert collection.indexes() == ["kind", "nest.x"]


class TestRouting:
    def test_equality_uses_index(self):
        collection = seeded(indexed=True)
        collection.find({"kind": "fact"})
        collection.find({"kind": {"$eq": "dim"}})
        collection.find({"kind": {"$in": ["fact", "ghost"]}})
        assert collection.stats["index_lookups"] == 3
        assert collection.stats["scans"] == 0

    def test_collection_order_is_preserved(self):
        collection = seeded(indexed=True)
        collection.replace({"_id": "a", "kind": "fact", "touched": True})
        assert [d["_id"] for d in collection.find({"kind": "fact"})] == ["a", "c"]

    def test_unindexed_path_scans(self):
        collection = seeded(indexed=True)
        collection.find({"missing_path": 1})
        assert collection.stats["scans"] == 1

    def test_in_over_string_is_not_routed(self):
        # "fact" in "factory" is substring containment, not equality; a
        # per-element index probe cannot reproduce it, so the planner
        # must scan — and agree with an unindexed collection.
        collection = seeded(indexed=True)
        result = collection.find({"kind": {"$in": "factory"}})
        assert collection.stats["scans"] == 1
        assert [d["_id"] for d in result] == ["a", "c"]
        unindexed = seeded(indexed=False)
        assert result == unindexed.find({"kind": {"$in": "factory"}})

    def test_unsafe_query_still_raises(self):
        collection = seeded(indexed=True)
        with pytest.raises(RepositoryError):
            collection.find({"kind": {"$bogus": 1}})
        with pytest.raises(RepositoryError):
            collection.count({"kind": {"$bogus": 1}})

    def test_limit_zero_and_early_stop(self):
        collection = seeded(indexed=True)
        assert collection.find({"kind": "fact"}, limit=0) == []
        assert len(collection.find({"kind": "fact"}, limit=1)) == 1


class TestParity:
    TRICKY = [0, False, "", None, 0.0, True, 1, [1, 2], "0"]

    def tricky_pair(self):
        indexed = Collection("t")
        indexed.create_index("v")
        plain = Collection("t")
        for position, value in enumerate(self.TRICKY):
            indexed.insert({"_id": position, "v": value})
            plain.insert({"_id": position, "v": value})
        indexed.insert({"_id": "missing"})
        plain.insert({"_id": "missing"})
        return indexed, plain

    def test_hash_equal_values_agree_with_scan(self):
        # 0 == False == 0.0 share one bucket; the verification pass must
        # still return exactly what the scan returns for each probe.
        indexed, plain = self.tricky_pair()
        for value in self.TRICKY:
            assert indexed.find({"v": value}) == plain.find({"v": value})
            assert indexed.count({"v": value}) == plain.count({"v": value})
        assert indexed.stats["index_lookups"] > 0

    def test_unhashable_values_live_in_loose_bucket(self):
        indexed, plain = self.tricky_pair()
        assert indexed.find({"v": [1, 2]}) == plain.find({"v": [1, 2]})
        assert indexed.find({"v": {"$in": [[1, 2], 7]}}) == plain.find(
            {"v": {"$in": [[1, 2], 7]}}
        )


class TestPersistence:
    def test_save_load_round_trip_preserves_indexes(self, tmp_path):
        store = DocumentStore("s")
        collection = store.collection("designs")
        collection.create_index("requirement")
        collection.insert({"_id": 1, "requirement": "IR1"})
        collection.insert({"_id": 2, "requirement": "IR2"})
        store.collection("plain").insert({"_id": 1})

        path = tmp_path / "repo.json"
        store_io.save(store, path)
        loaded = store_io.load(path)

        reloaded = loaded.collection("designs")
        assert reloaded.indexes() == ["requirement"]
        reloaded.find({"requirement": "IR1"})
        assert reloaded.stats["index_lookups"] == 1
        assert loaded.collection("plain").indexes() == []
