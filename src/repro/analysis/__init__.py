"""Static analysis over ETL flows and MD schemas (the Quarry linter)."""

from repro.analysis.diagnostics import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    all_rules,
    rule_by_code,
    rules_for,
)
from repro.analysis.flow_rules import structural_diagnostics
from repro.analysis.linter import (
    FlowLintContext,
    MDLintContext,
    lint,
    schema_from_rows,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "rule_by_code",
    "rules_for",
    "structural_diagnostics",
    "FlowLintContext",
    "MDLintContext",
    "lint",
    "schema_from_rows",
]
