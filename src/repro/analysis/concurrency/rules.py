"""The QRY9xx concurrency rules.

Registered in the same registry as the design-linter rules (target
``"code"``), so ``python -m repro.lint --list-rules`` and ``python -m
repro.codelint --list-rules`` print one catalog with no drift.

* ``QRY901`` error — lock-order inversion: a cycle in the
  may-acquire-under graph.
* ``QRY902`` error — a non-reentrant lock re-acquired through ``self``
  while already held through ``self``: guaranteed self-deadlock.
* ``QRY903`` error — a blocking operation (pool submit/result, process
  spawn, bus publish, file/socket I/O, pickling) reached while a lock
  is held.
* ``QRY904`` error — a field declared ``# guarded-by: <lock>`` is
  accessed without that lock held (lexically or inherited from every
  call site).
* ``QRY905`` error — a process-pool chunk kernel touches module-level
  mutable state, which silently diverges under ``pool="process"``.
* ``QRY906`` warning — a manual ``.acquire()`` with no matching
  ``.release()`` in a ``finally`` block.
* ``QRY907`` info — a lock-looking acquisition whose receiver could
  not be resolved to a named lock (the analyzer is flying blind
  there; add a ``# lock:`` annotation).

Fingerprints are line-number-free so the committed waiver file
survives unrelated edits to the waived module.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.concurrency.driver import CodeLintContext
from repro.analysis.concurrency.model import (
    AccessEvent,
    AcquireEvent,
    BlockingEvent,
    CallEvent,
    ReleaseEvent,
)
from repro.analysis.diagnostics import Diagnostic, Severity, diag, rule


@rule(
    "QRY901",
    "lock-order inversion (cycle in may-acquire-under graph)",
    "code",
    Severity.ERROR,
)
def lock_order_inversion(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    for cycle in ctx.cycles():
        witnesses: List[str] = []
        ring = list(cycle) + [cycle[0]]
        for held, acquired in zip(ring, ring[1:]):
            sites = ctx.edges.get((held, acquired), [])
            if sites:
                witnesses.append(
                    f"{held} -> {acquired} at {sites[0].describe()}"
                )
        yield diag(
            "QRY901",
            "lock-order inversion: "
            + " -> ".join(ring)
            + "; "
            + "; ".join(witnesses),
            node=" -> ".join(ring),
            hint="impose one global acquisition order (or merge the locks)",
            fingerprint="QRY901:" + "|".join(cycle),
        )


@rule(
    "QRY902",
    "non-reentrant lock re-acquired on the same instance",
    "code",
    Severity.ERROR,
)
def self_deadlock(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    for info in ctx.model.functions.values():
        for event in info.events:
            if isinstance(event, AcquireEvent):
                if event.lock is None or ctx.model.reentrant(event.lock):
                    continue
                if not event.via_self:
                    continue
                held_self = {
                    name
                    for name, via_self in ctx._expand(info, event.held)
                    if via_self
                }
                if event.lock in held_self:
                    yield diag(
                        "QRY902",
                        f"non-reentrant lock {event.lock!r} re-acquired "
                        f"while already held on the same instance: "
                        f"guaranteed deadlock",
                        node=f"{info.module}:{event.line}",
                        attribute=info.qualname,
                        hint="use new_rlock() or restructure the nesting",
                        fingerprint=f"QRY902:{info.qualname}:{event.lock}",
                    )
            elif isinstance(event, CallEvent) and event.ref[0] == "self":
                callee = ctx.callee(info, event)
                if callee is None:
                    continue
                held_self = {
                    name
                    for name, via_self in ctx._expand(info, event.held)
                    if via_self
                }
                for lock in ctx.may_acquire_self[callee] & held_self:
                    if ctx.model.reentrant(lock):
                        continue
                    callee_qual = ctx.model.functions[callee].qualname
                    yield diag(
                        "QRY902",
                        f"non-reentrant lock {lock!r} held here and "
                        f"re-acquired inside {callee_qual}: guaranteed "
                        f"deadlock",
                        node=f"{info.module}:{event.line}",
                        attribute=info.qualname,
                        hint="use new_rlock() or restructure the nesting",
                        fingerprint=(
                            f"QRY902:{info.qualname}:{lock}:{callee_qual}"
                        ),
                    )


@rule(
    "QRY903",
    "blocking operation while holding a lock",
    "code",
    Severity.ERROR,
)
def blocking_under_lock(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    seen = set()
    for info in ctx.model.functions.values():
        for event in info.events:
            if isinstance(event, BlockingEvent):
                held = ctx.held_locks(info, event.held)
                if not held:
                    continue
                fingerprint = f"QRY903:{info.qualname}:{event.op}"
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                yield diag(
                    "QRY903",
                    f"{event.op} while holding "
                    + ", ".join(sorted(held)),
                    node=f"{info.module}:{event.line}",
                    attribute=info.qualname,
                    hint="move the blocking operation outside the lock "
                    "(two-phase: snapshot under lock, block outside)",
                    fingerprint=fingerprint,
                )
            elif isinstance(event, CallEvent):
                callee = ctx.callee(info, event)
                if callee is None:
                    continue
                held = ctx.held_locks(info, event.held)
                if not held:
                    continue
                for op, chain in sorted(ctx.may_block[callee].items()):
                    fingerprint = f"QRY903:{info.qualname}:{op}"
                    if fingerprint in seen:
                        continue
                    seen.add(fingerprint)
                    yield diag(
                        "QRY903",
                        f"{op} (via {' -> '.join(chain)}) while holding "
                        + ", ".join(sorted(held)),
                        node=f"{info.module}:{event.line}",
                        attribute=info.qualname,
                        hint="move the blocking operation outside the "
                        "lock (two-phase: snapshot under lock, block "
                        "outside)",
                        fingerprint=fingerprint,
                    )


@rule(
    "QRY904",
    "guarded field accessed without its lock",
    "code",
    Severity.ERROR,
)
def unguarded_access(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    seen = set()
    for info in ctx.model.functions.values():
        if info.name == "__init__":
            continue  # construction happens-before publication
        for event in info.events:
            if not isinstance(event, AccessEvent):
                continue
            guarded = ctx.model.guarded[(event.owner, event.attr)]
            if guarded.writes_only and not event.write:
                continue
            held = ctx.effective_held(info, event.held)
            if guarded.lock in held:
                continue
            mode = "written" if event.write else "read"
            fingerprint = (
                f"QRY904:{info.qualname}:{event.owner}.{event.attr}:{mode}"
            )
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            yield diag(
                "QRY904",
                f"{event.owner}.{event.attr} {mode} without "
                f"{guarded.lock!r} (guarded-by annotation at "
                f"{guarded.module}:{guarded.line})",
                node=f"{info.module}:{event.line}",
                attribute=info.qualname,
                hint=f"hold {guarded.lock} or mark the field "
                f"'[writes]' if racy reads are tolerated",
                fingerprint=fingerprint,
            )


@rule(
    "QRY905",
    "impure process-pool chunk kernel",
    "code",
    Severity.ERROR,
)
def impure_kernel(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    for info in ctx.model.functions.values():
        if not info.is_process_kernel:
            continue
        for impurity in info.impurities:
            yield diag(
                "QRY905",
                f"process kernel {impurity}; state mutated in a worker "
                f"process never reaches the parent",
                node=info.location(),
                attribute=info.qualname,
                hint="kernels must be pure functions of their chunk",
                fingerprint=f"QRY905:{info.qualname}:{impurity}",
            )


@rule(
    "QRY906",
    "manual acquire without a finally release",
    "code",
    Severity.WARNING,
)
def unbalanced_acquire(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    for info in ctx.model.functions.values():
        acquired = {}
        released_in_finally = set()
        for event in info.events:
            if isinstance(event, AcquireEvent) and event.manual:
                acquired.setdefault(event.lock, event.line)
            elif isinstance(event, ReleaseEvent) and event.in_finally:
                released_in_finally.add(event.lock)
        for lock, line in sorted(
            acquired.items(), key=lambda item: item[1]
        ):
            if lock in released_in_finally:
                continue
            label = lock if lock is not None else "<unresolved>"
            yield diag(
                "QRY906",
                f"manual acquire of {label} has no release in a "
                f"finally block; an exception leaks the lock",
                node=f"{info.module}:{line}",
                attribute=info.qualname,
                hint="prefer 'with lock:' or release in try/finally",
                fingerprint=f"QRY906:{info.qualname}:{label}",
            )


@rule(
    "QRY907",
    "unresolvable lock acquisition",
    "code",
    Severity.INFO,
)
def unresolved_acquire(ctx: CodeLintContext) -> Iterable[Diagnostic]:
    for info in ctx.model.functions.values():
        for event in info.events:
            if isinstance(event, AcquireEvent) and event.lock is None:
                yield diag(
                    "QRY907",
                    f"acquisition of {event.text!r} could not be "
                    f"resolved to a named lock; the order analysis "
                    f"cannot see it",
                    node=f"{info.module}:{event.line}",
                    attribute=info.qualname,
                    hint="add a trailing '# lock: Class.attr' comment",
                    fingerprint=f"QRY907:{info.qualname}:{event.text}",
                )
