"""Adversarial random tables for differential fuzzing.

The value pools are deliberately nasty: NULL in every type, falsy values
(``0``, ``0.0``, ``""``, ``False``) that break truthiness shortcuts,
tiny domains so joins and group-bys collide constantly, strings that
differ only by case or whitespace, and the occasional unhashable list
smuggled past type checks via :class:`LooseDatabase`.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.engine.columnar import ColumnarRelation
from repro.engine.database import TableDef
from repro.engine.relation import Relation
from repro.errors import UnknownTableError
from repro.expressions.types import ScalarType

#: Small pools so duplicate keys and hash collisions are the norm, not
#: the exception.  Integers stay tiny (arithmetic overflow is not a
#: target); decimals mix int and float representations of equal values.
_POOLS: Dict[ScalarType, list] = {
    ScalarType.INTEGER: [0, 1, -1, 2, 3, 7, 100],
    ScalarType.DECIMAL: [0.0, 0, 1.5, -0.5, 2, 0.25, 3.0, -1],
    ScalarType.STRING: ["", "a", "b", "aa", "ab", " a", "a ", "A"],
    ScalarType.BOOLEAN: [True, False],
    ScalarType.DATE: [
        datetime.date(2015, 3, 1),
        datetime.date(2015, 3, 15),
        datetime.date(2015, 12, 31),
        datetime.date(2020, 1, 1),
    ],
}

_NULL_PROBABILITY = 0.15

_TYPES = tuple(_POOLS)


@dataclass
class TableSpec:
    """One generated source table: name, ordered typed schema, rows."""

    name: str
    schema: Dict[str, ScalarType]
    rows: List[dict] = field(default_factory=list)


def random_value(rng: random.Random, scalar_type: ScalarType):
    """A random (possibly NULL) value of the given scalar type."""
    if rng.random() < _NULL_PROBABILITY:
        return None
    return rng.choice(_POOLS[scalar_type])


def make_tables(rng: random.Random, prefix: str = "t") -> List[TableSpec]:
    """Generate 1-3 random tables with adversarial contents.

    Column names are prefixed with the table name so generated joins
    mostly avoid name collisions — the generator introduces collisions
    deliberately (self-joins, renames) rather than by accident.
    """
    tables: List[TableSpec] = []
    for table_index in range(rng.randint(1, 3)):
        name = f"{prefix}{table_index}"
        schema = {
            f"{name}_c{column_index}": rng.choice(_TYPES)
            for column_index in range(rng.randint(2, 4))
        }
        # Empty tables are common enough to matter: 1 in 6.
        row_count = 0 if rng.random() < 1 / 6 else rng.randint(1, 8)
        rows = [
            {column: random_value(rng, t) for column, t in schema.items()}
            for _ in range(row_count)
        ]
        tables.append(TableSpec(name=name, schema=schema, rows=rows))
    return tables


def inject_unhashable(rng: random.Random, tables: List[TableSpec]) -> bool:
    """Replace one random value with a list, which no scalar type
    admits.  Only :class:`LooseDatabase` lets such a value through; it
    then must produce the *same* ``ExecutionError`` in both engine
    modes when it reaches a hashing operator.  Returns whether an
    injection happened (some tables have no rows)."""
    populated = [table for table in tables if table.rows]
    if not populated:
        return False
    table = rng.choice(populated)
    row = rng.choice(table.rows)
    column = rng.choice(list(table.schema))
    row[column] = [1, 2]
    return True


class LooseDatabase:
    """A duck-type of :class:`repro.engine.database.Database` with no
    type or integrity checking.

    The fuzzer wants adversarial values (including unhashable ones) to
    reach the *operators*, not to be rejected at the door; the strict
    database would veto them on insert.  Implements exactly the surface
    the executor touches: ``scan``/``scan_columns`` for datastores and
    ``has_table``/``create_table``/``table_def``/``drop_table``/
    ``truncate``/``insert_many``/``insert_columns`` for loaders.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}

    @classmethod
    def from_specs(cls, specs: List[TableSpec]) -> "LooseDatabase":
        database = cls()
        for spec in specs:
            database._tables[spec.name] = Relation(
                schema=dict(spec.schema),
                rows=[dict(row) for row in spec.rows],
            )
        return database

    # -- DDL (loader targets) --------------------------------------------

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def create_table(self, definition: TableDef, if_not_exists: bool = False) -> None:
        self._tables[definition.name] = Relation(
            schema=dict(definition.columns)
        )

    def table_def(self, name: str) -> TableDef:
        return TableDef(name=name, columns=dict(self._lookup(name).schema))

    def drop_table(self, name: str) -> None:
        self._lookup(name)
        del self._tables[name]

    def truncate(self, name: str) -> None:
        self._lookup(name).rows.clear()

    def table_names(self) -> List[str]:
        return list(self._tables)

    # -- DML ----------------------------------------------------------------

    def insert_many(self, name: str, rows) -> int:
        relation = self._lookup(name)
        count = 0
        for row in rows:
            relation.rows.append(dict(row))
            count += 1
        return count

    def insert_columns(
        self, name: str, columns: Dict[str, list], length: int
    ) -> int:
        relation = self._lookup(name)
        names = list(relation.schema)
        ordered = [columns[column] for column in names]
        if ordered:
            relation.rows.extend(
                dict(zip(names, values)) for values in zip(*ordered)
            )
        else:
            relation.rows.extend({} for _ in range(length))
        return length

    # -- queries --------------------------------------------------------------

    def scan(self, name: str) -> Relation:
        return self._lookup(name)

    def scan_columns(self, name: str) -> ColumnarRelation:
        return ColumnarRelation.from_relation(self._lookup(name))

    def row_count(self, name: str) -> int:
        return len(self._lookup(name))

    # -- internals --------------------------------------------------------------

    def _lookup(self, name: str) -> Relation:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None
