"""Concurrency stress: many sessions, many threads, one shared store.

Sessions are the unit of isolation — the per-collection locks in the
document store only promise that *independent sessions* can hammer one
shared store concurrently without corrupting each other.  Each thread
drives its own sessions through the full lifecycle (add, add, change,
remove) and every session must end up byte-identical to a
single-threaded reference run.

Deliberately bounded (a few threads, a few sessions, <10s) so it can
ride in the tier-1 suite.
"""

import threading

from repro.core.services import DesignSession
from repro.repository import MetadataRepository
from repro.sources import tpch
from repro.xformats import xlm, xmd

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)

THREADS = 4
SESSIONS_PER_THREAD = 2


def drive(session: DesignSession) -> None:
    """The lifecycle each session runs, identical everywhere."""
    session.add_requirement(build_revenue_requirement())
    session.add_requirement(build_netprofit_requirement())
    session.change_requirement(build_netprofit_requirement())
    session.add_requirement(build_quantity_requirement())
    session.remove_requirement("IR3")


def test_concurrent_sessions_match_single_threaded_reference(tpch_domain):
    ontology, schema, mappings = tpch_domain

    reference = DesignSession(ontology, schema, mappings)
    drive(reference)
    reference_md, reference_etl = reference.unified_design()
    expected_xmd = xmd.dumps(reference_md)
    expected_xlm = xlm.dumps(reference_etl)

    shared = MetadataRepository()
    sessions = {}
    errors = []
    barrier = threading.Barrier(THREADS)

    def worker(thread_index: int) -> None:
        try:
            barrier.wait(timeout=30)
            for slot in range(SESSIONS_PER_THREAD):
                name = f"t{thread_index}s{slot}"
                session = DesignSession(
                    ontology, schema, mappings,
                    repository=shared, session=name,
                )
                sessions[name] = session  # distinct key per thread: safe
                drive(session)
        except Exception as exc:  # surface failures in the main thread
            errors.append((thread_index, exc))

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    assert len(sessions) == THREADS * SESSIONS_PER_THREAD

    for name, session in sessions.items():
        md, etl = session.unified_design()
        assert xmd.dumps(md) == expected_xmd, f"session {name} diverged"
        assert xlm.dumps(etl) == expected_xlm, f"session {name} diverged"
        assert [r.id for r in session.requirements()] == ["IR1", "IR2"]
        # Per-session repository state never bled across namespaces.
        assert sorted(session.repository.requirement_ids()) == ["IR1", "IR2"]
        assert session.repository.checkpoint_count() == 2
        assert (
            session.repository.bus_event_count()
            == reference.repository.bus_event_count()
        )

    assert sorted(shared.session_names()) == sorted(sessions)
    # The default (unprefixed) namespace stayed empty throughout.
    assert shared.requirement_ids() == []
