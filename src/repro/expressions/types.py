"""Scalar types and type inference for the expression language.

The type system is deliberately small — it matches what the MD model and
the relational engine need: integers, decimals (floats), strings, booleans
and dates.  ``NULL`` is represented by Python ``None`` and is a member of
every type.
"""

from __future__ import annotations

import datetime
import enum
from typing import Optional

from repro.errors import TypeCheckError


class ScalarType(enum.Enum):
    """The scalar types known to the expression language and the engine."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type can take part in arithmetic."""
        return self in (ScalarType.INTEGER, ScalarType.DECIMAL)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Result type of arithmetic between two numeric types: INTEGER only when
#: both operands are INTEGER, DECIMAL otherwise.
def numeric_join(left: ScalarType, right: ScalarType) -> ScalarType:
    """Return the wider of two numeric types.

    Raises :class:`TypeCheckError` when either side is not numeric.
    """
    if not left.is_numeric or not right.is_numeric:
        raise TypeCheckError(
            f"arithmetic requires numeric operands, got {left} and {right}"
        )
    if left is ScalarType.DECIMAL or right is ScalarType.DECIMAL:
        return ScalarType.DECIMAL
    return ScalarType.INTEGER


def comparable(left: ScalarType, right: ScalarType) -> bool:
    """Whether values of the two types can be compared with <, =, etc."""
    if left is right:
        return True
    return left.is_numeric and right.is_numeric


def type_of_value(value: object) -> Optional[ScalarType]:
    """Infer the :class:`ScalarType` of a Python value.

    Returns ``None`` for ``None`` (NULL belongs to every type).
    Raises :class:`TypeCheckError` for values outside the type system.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return ScalarType.BOOLEAN
    if isinstance(value, int):
        return ScalarType.INTEGER
    if isinstance(value, float):
        return ScalarType.DECIMAL
    if isinstance(value, str):
        return ScalarType.STRING
    if isinstance(value, datetime.date):
        return ScalarType.DATE
    raise TypeCheckError(f"value {value!r} is outside the scalar type system")


#: Signatures of the built-in scalar functions: name -> (arg types, result).
#: ``None`` in an argument slot means "any type"; a numeric marker means
#: the argument must be numeric and the result follows numeric_join rules.
_NUMERIC = "numeric"

FUNCTION_SIGNATURES = {
    "abs": ((_NUMERIC,), _NUMERIC),
    "round": ((_NUMERIC,), ScalarType.INTEGER),
    "floor": ((_NUMERIC,), ScalarType.INTEGER),
    "ceil": ((_NUMERIC,), ScalarType.INTEGER),
    "sqrt": ((_NUMERIC,), ScalarType.DECIMAL),
    "length": ((ScalarType.STRING,), ScalarType.INTEGER),
    "upper": ((ScalarType.STRING,), ScalarType.STRING),
    "lower": ((ScalarType.STRING,), ScalarType.STRING),
    "trim": ((ScalarType.STRING,), ScalarType.STRING),
    "substring": (
        (ScalarType.STRING, ScalarType.INTEGER, ScalarType.INTEGER),
        ScalarType.STRING,
    ),
    "concat": ((ScalarType.STRING, ScalarType.STRING), ScalarType.STRING),
    "year": ((ScalarType.DATE,), ScalarType.INTEGER),
    "month": ((ScalarType.DATE,), ScalarType.INTEGER),
    "day": ((ScalarType.DATE,), ScalarType.INTEGER),
    "quarter": ((ScalarType.DATE,), ScalarType.INTEGER),
    "coalesce": ((None, None), None),
}


def function_result_type(name: str, arg_types: list) -> ScalarType:
    """Type-check a function call and return its result type.

    ``arg_types`` entries may be ``None`` when the argument's type is
    unknown (e.g. a NULL literal); unknown arguments satisfy any slot.
    """
    key = name.lower()
    if key not in FUNCTION_SIGNATURES:
        raise TypeCheckError(f"unknown function: {name!r}")
    expected, result = FUNCTION_SIGNATURES[key]
    if len(arg_types) != len(expected):
        raise TypeCheckError(
            f"function {name!r} expects {len(expected)} arguments, "
            f"got {len(arg_types)}"
        )
    for position, (got, want) in enumerate(zip(arg_types, expected)):
        if got is None or want is None:
            continue
        if want == _NUMERIC:
            if not got.is_numeric:
                raise TypeCheckError(
                    f"argument {position + 1} of {name!r} must be numeric, "
                    f"got {got}"
                )
        elif got is not want:
            raise TypeCheckError(
                f"argument {position + 1} of {name!r} must be {want}, got {got}"
            )
    if result == _NUMERIC:
        first = arg_types[0]
        return first if first is not None else ScalarType.DECIMAL
    if result is None:
        for got in arg_types:
            if got is not None:
                return got
        return ScalarType.STRING
    return result


def infer_type(
    expression, schema: dict, *, node: Optional[str] = None
) -> Optional[ScalarType]:
    """Infer the result type of an expression under an attribute schema.

    ``schema`` maps attribute names to :class:`ScalarType`.  Returns
    ``None`` only for a bare NULL literal.  Raises
    :class:`TypeCheckError` on type errors or unknown attributes; when
    ``node`` is given the error carries the node name and the full
    expression text, so unknown identifiers/functions are reported with
    their location instead of a bare message.
    """
    if node is None:
        return _infer_type(expression, schema)
    try:
        return _infer_type(expression, schema)
    except TypeCheckError as exc:
        if exc.node is not None:
            raise
        raise TypeCheckError(
            exc.bare_message, node=node, expression=str(expression)
        ) from exc


def _infer_type(expression, schema: dict) -> Optional[ScalarType]:
    # Imported here to avoid a circular import with the AST module.
    from repro.expressions import ast

    if isinstance(expression, ast.Literal):
        return type_of_value(expression.value)
    if isinstance(expression, ast.Attribute):
        if expression.name not in schema:
            raise TypeCheckError(f"unknown attribute: {expression.name!r}")
        return schema[expression.name]
    if isinstance(expression, ast.UnaryOp):
        operand = _infer_type(expression.operand, schema)
        if expression.operator == "-":
            if operand is not None and not operand.is_numeric:
                raise TypeCheckError(f"unary minus requires a number, got {operand}")
            return operand if operand is not None else ScalarType.DECIMAL
        if expression.operator == "not":
            if operand is not None and operand is not ScalarType.BOOLEAN:
                raise TypeCheckError(f"NOT requires a boolean, got {operand}")
            return ScalarType.BOOLEAN
        raise TypeCheckError(f"unknown unary operator: {expression.operator!r}")
    if isinstance(expression, ast.BinaryOp):
        return _infer_binary(expression, schema)
    if isinstance(expression, ast.FunctionCall):
        arg_types = [_infer_type(arg, schema) for arg in expression.arguments]
        return function_result_type(expression.name, arg_types)
    raise TypeCheckError(f"cannot type-check node {expression!r}")


_ARITHMETIC = {"+", "-", "*", "/", "%"}
_COMPARISON = {"=", "!=", "<", "<=", ">", ">="}
_LOGICAL = {"and", "or"}


def _infer_binary(node, schema: dict) -> ScalarType:
    """Infer the result type of a binary operation node."""
    from repro.expressions import ast

    operator = node.operator
    if operator == "in":
        left = _infer_type(node.left, schema)
        if isinstance(node.right, ast.ValueList):
            for item in node.right.items:
                item_type = _infer_type(item, schema)
                if (
                    left is not None
                    and item_type is not None
                    and not comparable(left, item_type)
                ):
                    raise TypeCheckError(
                        f"IN list member of type {item_type} is not "
                        f"comparable with {left}"
                    )
        return ScalarType.BOOLEAN
    left = _infer_type(node.left, schema)
    right = _infer_type(node.right, schema)
    if operator in _ARITHMETIC:
        if operator == "+" and ScalarType.STRING in (left, right):
            if left in (ScalarType.STRING, None) and right in (ScalarType.STRING, None):
                return ScalarType.STRING
            raise TypeCheckError(f"cannot add {left} and {right}")
        if left is None or right is None:
            return ScalarType.DECIMAL
        return numeric_join(left, right)
    if operator in _COMPARISON:
        if left is not None and right is not None and not comparable(left, right):
            raise TypeCheckError(f"cannot compare {left} with {right}")
        return ScalarType.BOOLEAN
    if operator in _LOGICAL:
        for side, side_type in (("left", left), ("right", right)):
            if side_type is not None and side_type is not ScalarType.BOOLEAN:
                raise TypeCheckError(
                    f"{operator.upper()} requires boolean operands, "
                    f"{side} operand is {side_type}"
                )
        return ScalarType.BOOLEAN
    if operator == "in":
        return ScalarType.BOOLEAN
    raise TypeCheckError(f"unknown binary operator: {operator!r}")
