"""D3-compatible JSON export of a domain ontology.

The original Requirements Elicitor is a JavaScript component that renders
the domain ontology as a force-directed graph with the D3 library
(Figure 2).  This module produces the node/link document such a front-end
consumes: concepts become nodes (with their datatype properties inlined
for tooltips), object properties and subsumption arcs become links.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.ontology.graph import OntologyGraph
from repro.ontology.model import Ontology


def to_d3(ontology: Ontology, highlight: Optional[str] = None) -> dict:
    """Build a D3 force-layout document for an ontology.

    ``highlight`` optionally names a focus concept: the node is flagged
    and every concept in its to-one closure (i.e. every suggested
    analysis dimension) is flagged as ``suggested`` — this is exactly the
    visual state of Figure 2 after the user picks a focus.
    """
    graph = OntologyGraph(ontology)
    suggested = set()
    if highlight is not None:
        suggested = set(graph.to_one_closure(highlight))

    nodes = []
    for concept in ontology.concepts():
        attributes = [
            {
                "id": prop.id,
                "label": prop.display_name,
                "type": prop.range.value,
            }
            for prop in ontology.datatype_properties(concept.id)
        ]
        node = {
            "id": concept.id,
            "label": concept.display_name,
            "attributes": attributes,
            "focus": concept.id == highlight,
            "suggested": concept.id in suggested,
        }
        nodes.append(node)

    links = []
    for prop in ontology.object_properties():
        links.append(
            {
                "id": prop.id,
                "source": prop.domain,
                "target": prop.range,
                "label": prop.display_name,
                "multiplicity": prop.multiplicity.value,
                "kind": "relationship",
            }
        )
    for concept in ontology.concepts():
        if concept.parent is not None:
            links.append(
                {
                    "id": f"{concept.id}__isa",
                    "source": concept.id,
                    "target": concept.parent,
                    "label": "is-a",
                    "multiplicity": "N-1",
                    "kind": "subsumption",
                }
            )
    return {"name": ontology.name, "nodes": nodes, "links": links}


def to_d3_json(ontology: Ontology, highlight: Optional[str] = None) -> str:
    """Like :func:`to_d3` but rendered as a JSON string."""
    return json.dumps(to_d3(ontology, highlight=highlight), indent=2)
