"""The Requirements Elicitation service.

Front door of the pipeline (§2.1): accepts information requirements —
built programmatically, via the assistance backends (fact/perspective
suggestions, business-vocabulary resolution), or as raw xRQ documents —
and publishes each accepted requirement as an xRQ artifact envelope on
the ``requirements`` topic.  Downstream services only ever see those
envelopes.
"""

from __future__ import annotations

from repro.core.requirements import Elicitor
from repro.core.requirements.model import InformationRequirement
from repro.core.requirements.vocabulary import Vocabulary
from repro.core.services.bus import ArtifactBus
from repro.core.services.envelope import ArtifactEnvelope
from repro.etlmodel.flow import EtlFlow
from repro.mdmodel.model import MDSchema
from repro.ontology.model import Ontology
from repro.xformats import xlm, xmd, xrq
from repro.xformats.xmljson import xml_to_json

TOPIC_REQUIREMENTS = "requirements"

KIND_ADDED = "requirement.added"
KIND_EXTERNAL = "requirement.external"


class ElicitationService:
    """Accepts requirements and emits xRQ artifact envelopes."""

    name = "elicitation"

    def __init__(self, ontology: Ontology, bus: ArtifactBus) -> None:
        self._ontology = ontology
        self._bus = bus

    # -- assistance backends ----------------------------------------------

    def elicitor(self) -> Elicitor:
        """The suggestion backend over this domain."""
        return Elicitor(self._ontology)

    def vocabulary(self) -> Vocabulary:
        """Business-vocabulary resolution over this domain."""
        return Vocabulary(self._ontology)

    # -- intake ------------------------------------------------------------

    def submit(self, requirement: InformationRequirement) -> ArtifactEnvelope:
        """Publish one requirement as an xRQ envelope."""
        return self._bus.publish(
            TOPIC_REQUIREMENTS,
            KIND_ADDED,
            payload={
                "requirement": requirement.id,
                "xrq": xml_to_json(xrq.dumps(requirement)),
            },
            producer=self.name,
            attachment=requirement,
        )

    def submit_xrq(self, xrq_text: str) -> ArtifactEnvelope:
        """Publish a requirement delivered as an xRQ document.

        This is the wire format the Requirements Elicitor posts to the
        Requirements Interpreter in the original service architecture.
        """
        return self.submit(xrq.loads(xrq_text))

    def submit_external(
        self,
        requirement: InformationRequirement,
        md_schema: MDSchema,
        etl_flow: EtlFlow,
    ) -> ArtifactEnvelope:
        """Publish a requirement whose partial design an *external* tool built.

        The envelope carries the full xRQ+xMD+xLM triple; the
        interpretation service validates the claimed design instead of
        generating one (§2.2).
        """
        return self._bus.publish(
            TOPIC_REQUIREMENTS,
            KIND_EXTERNAL,
            payload={
                "requirement": requirement.id,
                "xrq": xml_to_json(xrq.dumps(requirement)),
                "xmd": xml_to_json(xmd.dumps(md_schema)),
                "xlm": xml_to_json(xlm.dumps(etl_flow)),
            },
            producer=self.name,
            attachment=(requirement, md_schema, etl_flow),
        )
