"""Property-based tests for the expression language.

Invariants:

* parse(render(ast)) == ast for every generated AST (round-trip),
* evaluation is deterministic,
* substitute with an identity map is the identity,
* conjoin/conjuncts are inverse for predicate lists.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.expressions import ast, evaluate, parse

ATTRIBUTES = ["a", "b", "c", "qty", "price"]

literals = st.one_of(
    st.integers(min_value=0, max_value=10_000).map(ast.Literal),
    st.floats(
        min_value=0.001, max_value=1000, allow_nan=False, allow_infinity=False
    ).map(ast.Literal),
    st.text(
        alphabet="abcxyz' ", min_size=0, max_size=8
    ).map(ast.Literal),
    st.booleans().map(ast.Literal),
    st.just(ast.Literal(None)),
)

attributes = st.sampled_from(ATTRIBUTES).map(ast.Attribute)


def _numeric_exprs(children):
    binary = st.builds(
        ast.BinaryOp,
        st.sampled_from(["+", "-", "*", "/"]),
        children,
        children,
    )
    unary = st.builds(ast.UnaryOp, st.just("-"), children)
    call = st.builds(
        ast.FunctionCall,
        st.sampled_from(["abs", "round"]),
        st.tuples(children),
    )
    return st.one_of(binary, unary, call)


numeric_leaves = st.one_of(
    st.integers(min_value=0, max_value=100).map(ast.Literal),
    attributes,
)

numeric_expressions = st.recursive(numeric_leaves, _numeric_exprs, max_leaves=12)


def _boolean_exprs(children):
    logical = st.builds(
        ast.BinaryOp, st.sampled_from(["and", "or"]), children, children
    )
    negation = st.builds(ast.UnaryOp, st.just("not"), children)
    return st.one_of(logical, negation)


comparisons = st.builds(
    ast.BinaryOp,
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    numeric_expressions,
    numeric_expressions,
)

boolean_expressions = st.recursive(comparisons, _boolean_exprs, max_leaves=10)

any_expressions = st.one_of(literals, numeric_expressions, boolean_expressions)


class TestRoundTrip:
    @given(any_expressions)
    @settings(max_examples=200)
    def test_parse_of_render_is_identity(self, tree):
        assert parse(str(tree)) == tree

    @given(boolean_expressions)
    @settings(max_examples=100)
    def test_boolean_roundtrip(self, tree):
        assert parse(str(tree)) == tree


class TestEvaluation:
    @given(
        numeric_expressions,
        st.fixed_dictionaries(
            {name: st.integers(min_value=1, max_value=50) for name in ATTRIBUTES}
        ),
    )
    @settings(max_examples=150)
    def test_evaluation_is_deterministic(self, tree, row):
        from repro.errors import EvaluationError

        try:
            first = evaluate(tree, row)
        except EvaluationError:
            return  # division by zero is acceptable; determinism is the claim
        second = evaluate(tree, row)
        assert first == second

    @given(
        boolean_expressions,
        st.fixed_dictionaries(
            {name: st.integers(min_value=1, max_value=50) for name in ATTRIBUTES}
        ),
    )
    @settings(max_examples=100)
    def test_boolean_expressions_yield_booleans_or_null(self, tree, row):
        from repro.errors import EvaluationError

        try:
            value = evaluate(tree, row)
        except EvaluationError:
            return
        assert value is None or isinstance(value, bool)


class TestAlgebra:
    @given(any_expressions)
    @settings(max_examples=100)
    def test_identity_substitution(self, tree):
        assert ast.substitute(tree, {}) == tree

    @given(st.lists(comparisons, min_size=1, max_size=6))
    @settings(max_examples=100)
    def test_conjuncts_of_conjoin_is_identity(self, predicates):
        assert ast.conjuncts(ast.conjoin(predicates)) == predicates

    @given(any_expressions)
    @settings(max_examples=100)
    def test_attribute_set_closed_under_rename(self, tree):
        renaming = {name: name + "_r" for name in ATTRIBUTES}
        renamed = ast.substitute(tree, renaming)
        expected = frozenset(renaming.get(name, name) for name in tree.attributes())
        assert renamed.attributes() == expected
