"""Type-correct random expressions over a given attribute schema.

Generates predicate strings (for Selections) and value expressions (for
DerivedAttributes) in the repo's expression language.  Construction is
type-directed, but every candidate is additionally validated through the
real :func:`repro.expressions.infer_type` — whatever that rejects is
regenerated, so the generator can never drift from the type checker.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import ExpressionError
from repro.expressions import infer_type, parse
from repro.expressions.types import ScalarType

_NUMERIC = (ScalarType.INTEGER, ScalarType.DECIMAL)

#: Literal renderings per type.  Negative numbers are parenthesised so
#: they survive any operator context (e.g. ``a * (-1)``).
_LITERALS: Dict[ScalarType, List[str]] = {
    ScalarType.INTEGER: ["0", "1", "2", "3", "7", "100", "(-1)"],
    ScalarType.DECIMAL: ["0.0", "0.25", "1.5", "3.0", "(-0.5)", "2"],
    ScalarType.STRING: ["''", "'a'", "'b'", "'aa'", "' a'", "'A'"],
    ScalarType.BOOLEAN: ["true", "false"],
    ScalarType.DATE: [
        "date '2015-03-01'",
        "date '2015-03-15'",
        "date '2015-12-31'",
        "date '2020-01-01'",
    ],
}

_COMPARATORS = ["=", "!=", "<>", "<", "<=", ">", ">="]

#: (function, argument type) pairs the generator draws from; all are
#: single-argument so arity bookkeeping stays trivial.
_FUNCTIONS: List[Tuple[str, ScalarType]] = [
    ("length", ScalarType.STRING),
    ("upper", ScalarType.STRING),
    ("lower", ScalarType.STRING),
    ("trim", ScalarType.STRING),
    ("abs", ScalarType.INTEGER),
    ("abs", ScalarType.DECIMAL),
    ("year", ScalarType.DATE),
    ("month", ScalarType.DATE),
    ("quarter", ScalarType.DATE),
]


def _columns_of(schema: Dict[str, ScalarType], types) -> List[str]:
    return [name for name, t in schema.items() if t in types]


def _literal(rng: random.Random, scalar_type: ScalarType) -> str:
    return rng.choice(_LITERALS[scalar_type])


def _value(
    rng: random.Random,
    schema: Dict[str, ScalarType],
    scalar_type: ScalarType,
    depth: int,
    allow_division: bool = True,
) -> str:
    """A value expression of (roughly) the given type.

    ``allow_division=False`` restricts arithmetic to total operators
    (no ``/`` or ``%``), for trial kinds whose oracle requires every
    expression to be evaluation-safe regardless of the data it sees
    (the planner moves expressions across the flow, so a data-dependent
    ``ZeroDivisionError`` would fire at a different point).  The default
    keeps the historical operator pool, so existing seeds reproduce
    byte-identical trials.
    """
    columns = _columns_of(schema, (scalar_type,))
    if scalar_type is ScalarType.DECIMAL:
        # Integers are acceptable decimals — widen the column pool.
        columns = _columns_of(schema, _NUMERIC)
    choices = ["literal"]
    if columns:
        choices += ["column", "column"]  # favour data over constants
    if depth > 0 and scalar_type in _NUMERIC:
        choices.append("arith")
    if depth > 0:
        choices.append("function")
    kind = rng.choice(choices)
    if kind == "column":
        return rng.choice(columns)
    if kind == "arith":
        operators = ["+", "-", "*", "/", "%"] if allow_division else ["+", "-", "*"]
        operator = rng.choice(operators)
        left = _value(rng, schema, scalar_type, depth - 1, allow_division)
        right = _value(rng, schema, scalar_type, depth - 1, allow_division)
        return f"({left} {operator} {right})"
    if kind == "function":
        candidates = [
            (name, argument_type)
            for name, argument_type in _FUNCTIONS
            if _result_of(name) is scalar_type
            and (_columns_of(schema, (argument_type,)) or True)
        ]
        if candidates:
            name, argument_type = rng.choice(candidates)
            argument = _value(rng, schema, argument_type, 0, allow_division)
            return f"{name}({argument})"
    return _literal(rng, scalar_type)


def _result_of(function: str) -> ScalarType:
    if function in ("upper", "lower", "trim"):
        return ScalarType.STRING
    if function == "abs":
        return ScalarType.INTEGER  # close enough for candidate generation
    return ScalarType.INTEGER


def _comparison(
    rng: random.Random,
    schema: Dict[str, ScalarType],
    allow_division: bool = True,
) -> str:
    scalar_type = rng.choice(list(_LITERALS))
    left = _value(rng, schema, scalar_type, 1, allow_division)
    if rng.random() < 0.08:
        return f"{left} {rng.choice(['=', '!='])} null"
    right = _value(rng, schema, scalar_type, 1, allow_division)
    return f"{left} {rng.choice(_COMPARATORS)} {right}"


def _membership(rng: random.Random, schema: Dict[str, ScalarType]) -> str:
    scalar_type = rng.choice(list(_LITERALS))
    columns = _columns_of(schema, (scalar_type,))
    needle = rng.choice(columns) if columns else _literal(rng, scalar_type)
    values = [
        _literal(rng, scalar_type) for _ in range(rng.randint(1, 3))
    ]
    if rng.random() < 0.2:
        values.append("null")
    membership = f"{needle} in ({', '.join(values)})"
    if rng.random() < 0.3:
        return f"not {membership}"
    return membership


def _boolean(
    rng: random.Random,
    schema: Dict[str, ScalarType],
    depth: int,
    allow_division: bool = True,
) -> str:
    roll = rng.random()
    if depth > 0 and roll < 0.25:
        connector = rng.choice(["and", "or"])
        left = _boolean(rng, schema, depth - 1, allow_division)
        right = _boolean(rng, schema, depth - 1, allow_division)
        return f"({left} {connector} {right})"
    if depth > 0 and roll < 0.32:
        return f"not ({_boolean(rng, schema, depth - 1, allow_division)})"
    if roll < 0.45:
        return _membership(rng, schema)
    boolean_columns = _columns_of(schema, (ScalarType.BOOLEAN,))
    if boolean_columns and roll < 0.55:
        return rng.choice(boolean_columns)
    return _comparison(rng, schema, allow_division)


def _validated(
    candidate: str, schema: Dict[str, ScalarType]
) -> Optional[ScalarType]:
    """The inferred type, or ``None`` when the candidate is invalid."""
    try:
        return infer_type(parse(candidate), schema)
    except ExpressionError:
        return None


def random_predicate(
    rng: random.Random,
    schema: Dict[str, ScalarType],
    allow_division: bool = True,
) -> str:
    """A boolean predicate that type-checks under ``schema``."""
    for _ in range(10):
        candidate = _boolean(rng, schema, depth=2, allow_division=allow_division)
        result = _validated(candidate, schema)
        if result is None or result is not ScalarType.BOOLEAN:
            continue
        return candidate
    return "true"


def random_derivation(
    rng: random.Random,
    schema: Dict[str, ScalarType],
    allow_division: bool = True,
) -> Tuple[str, ScalarType]:
    """An expression plus its inferred type (for a DerivedAttribute).

    Matches :func:`repro.etlmodel.propagation._derive_schema`: the
    declared type of the derived column is whatever ``infer_type``
    says, STRING for a bare NULL.
    """
    for _ in range(10):
        scalar_type = rng.choice(list(_LITERALS))
        if rng.random() < 0.3:
            candidate = _boolean(rng, schema, depth=1, allow_division=allow_division)
        else:
            candidate = _value(rng, schema, scalar_type, 2, allow_division)
        result = _validated(candidate, schema)
        if result is not None:
            return candidate, result
    return "1", ScalarType.INTEGER
