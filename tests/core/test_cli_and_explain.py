"""Tests for the CLI and the EXPLAIN renderer."""

import pytest

from repro.cli import main
from repro.etlmodel.cost import CostModel
from repro.etlmodel.explain import explain

from tests.etlmodel.conftest import build_revenue_flow


class TestExplain:
    def test_tree_shape(self):
        text = explain(build_revenue_flow())
        assert text.startswith("Flow 'revenue'")
        assert "requirements: IR1" in text
        assert "LOAD_fact_revenue TableOutput(fact_table_revenue" in text
        assert "FilterRows(n_name = 'SPAIN')" in text
        assert "MergeJoin(l_orderkey=o_orderkey)" in text
        assert "GroupBy(n_name -> total_revenue=SUM(revenue))" in text
        assert "TableInput(lineitem)" in text

    def test_indentation_reflects_depth(self):
        text = explain(build_revenue_flow())
        lines = text.splitlines()
        load_line = next(l for l in lines if "LOAD_fact_revenue" in l)
        agg_line = next(l for l in lines if l.strip().startswith("AGG_"))
        assert len(agg_line) - len(agg_line.lstrip()) > (
            len(load_line) - len(load_line.lstrip())
        )

    def test_cost_annotations(self):
        text = explain(
            build_revenue_flow(),
            cost_model=CostModel(),
            row_counts={"lineitem": 1000},
        )
        assert "[rows=" in text and "cost=" in text

    def test_shared_subtrees_expanded_once(self):
        from repro.etlmodel import Datastore, EtlFlow, Loader, Projection

        flow = EtlFlow("shared")
        flow.add(Datastore("src", table="t", columns=("a",)))
        flow.add(Projection("p1", columns=("a",)))
        flow.add(Projection("p2", columns=("a",)))
        flow.add(Loader("l1", table="o1"))
        flow.add(Loader("l2", table="o2"))
        flow.connect("src", "p1")
        flow.connect("src", "p2")
        flow.connect("p1", "l1")
        flow.connect("p2", "l2")
        text = explain(flow)
        assert text.count("TableInput(t)") == 1
        assert "^see src" in text


class TestCli:
    def test_suggest_facts(self, capsys):
        assert main(["suggest"]) == 0
        output = capsys.readouterr().out
        assert "Lineitem" in output

    def test_suggest_perspective(self, capsys):
        assert main(["suggest", "Lineitem", "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert "dimensions:" in output
        assert "measures:" in output

    def test_ddl(self, capsys):
        assert main(["ddl"]) == 0
        output = capsys.readouterr().out
        assert "CREATE TABLE fact_table_revenue" in output

    def test_ddl_sqlite(self, capsys):
        assert main(["ddl", "--dialect", "sqlite"]) == 0
        assert "REAL" in capsys.readouterr().out

    def test_status(self, capsys):
        assert main(["status"]) == 0
        output = capsys.readouterr().out
        assert "requirements : IR1, IR2" in output
        assert "satisfiable  : yes" in output

    def test_explain(self, capsys):
        assert main(["explain"]) == 0
        output = capsys.readouterr().out
        assert "Flow 'unified'" in output
        assert "TableOutput" in output

    def test_tune(self, capsys):
        assert main(["tune", "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert "[index]" in output or "[rollup]" in output or "[slim]" in output

    def test_demo_with_session_roundtrip(self, capsys, tmp_path):
        session = str(tmp_path / "session.json")
        assert main(["demo", "--save", session]) == 0
        output = capsys.readouterr().out
        assert "Scenario 1" in output and "loaded" in output
        assert main(["status", "--session", session]) == 0
        output = capsys.readouterr().out
        assert "IR1" in output and "IR2" not in output.split("facts")[0]

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
