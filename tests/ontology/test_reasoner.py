"""Unit tests for the subsumption reasoner."""

import pytest

from repro.errors import OntologyError, UnknownConceptError
from repro.expressions import ScalarType
from repro.ontology import Concept, Ontology, OntologyBuilder, Reasoner


@pytest.fixture
def taxonomy():
    return (
        OntologyBuilder("parties")
        .concept("Party")
        .concept("Person", parent="Party")
        .concept("Organisation", parent="Party")
        .concept("Employee", parent="Person")
        .concept("Widget")
        .attribute("Party_name", "Party", ScalarType.STRING)
        .attribute("Employee_salary", "Employee", ScalarType.DECIMAL)
        .relationship("Employee_employer", "Employee", "Organisation", "N-1")
        .build()
    )


class TestSubsumption:
    def test_ancestors_nearest_first(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.ancestors("Employee") == ["Person", "Party"]
        assert reasoner.ancestors("Party") == []

    def test_descendants(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert set(reasoner.descendants("Party")) == {
            "Person",
            "Organisation",
            "Employee",
        }
        assert reasoner.descendants("Widget") == []

    def test_is_subconcept_is_reflexive(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.is_subconcept("Person", "Person")

    def test_is_subconcept_transitive(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.is_subconcept("Employee", "Party")
        assert not reasoner.is_subconcept("Party", "Employee")

    def test_unknown_concept_raises(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        with pytest.raises(UnknownConceptError):
            reasoner.ancestors("Missing")
        with pytest.raises(UnknownConceptError):
            reasoner.is_subconcept("Missing", "Missing")

    def test_cycle_detection(self):
        ontology = Ontology(name="cyclic")
        ontology.add_concept(Concept(id="A"))
        ontology.add_concept(Concept(id="B", parent="A"))
        # Force a cycle by bypassing the builder's ordering guarantee.
        ontology._concepts["A"] = Concept(id="A", parent="B")
        with pytest.raises(OntologyError):
            Reasoner(ontology)


class TestLeastCommonSubsumer:
    def test_siblings_meet_at_parent(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.least_common_subsumer("Person", "Organisation") == "Party"

    def test_ancestor_is_its_own_lcs(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.least_common_subsumer("Employee", "Person") == "Person"
        assert reasoner.least_common_subsumer("Person", "Employee") == "Person"

    def test_unrelated_concepts_have_no_lcs(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.least_common_subsumer("Person", "Widget") is None
        assert not reasoner.related("Person", "Widget")

    def test_related(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.related("Employee", "Organisation")


class TestPropertyInheritance:
    def test_inherited_datatype_properties(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        names = [prop.id for prop in reasoner.datatype_properties("Employee")]
        assert names == ["Employee_salary", "Party_name"]

    def test_root_sees_only_own_properties(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        names = [prop.id for prop in reasoner.datatype_properties("Party")]
        assert names == ["Party_name"]

    def test_inherited_object_properties(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert [p.id for p in reasoner.object_properties_from("Employee")] == [
            "Employee_employer"
        ]
        assert [p.id for p in reasoner.object_properties_from("Person")] == []

    def test_property_owner(self, taxonomy):
        reasoner = Reasoner(taxonomy)
        assert reasoner.property_owner("Employee", "Party_name") == "Party"
        assert reasoner.property_owner("Employee", "Employee_salary") == "Employee"
        assert reasoner.property_owner("Employee", "missing") is None
