"""AST extraction of the lock model from Python source.

Two passes over every module:

1. **Declarations** — lock construction sites (``self.X = new_rlock(
   "Class.X")`` / ``threading.Lock()``), ``# guarded-by:`` field
   annotations, the class/method inventory, context-manager detection
   and return annotations.
2. **Events** — per-function lexical scans that track the held-lock
   stack through ``with`` blocks and manual ``.acquire()``/
   ``.release()`` calls, recording acquisition, call, blocking-
   operation, guarded-access and yield events.

Lightweight trailing comments steer resolution where static typing
runs out:

* ``# lock: Class.attr`` names the lock behind an acquisition whose
  receiver type is unknown,
* ``# calls: Class.method[, ...]`` resolves dynamic calls on a line,
* ``# process-kernel`` marks a function as a process-pool chunk kernel
  (functions named ``process_*`` are kernels by convention),
* ``# lock-internal`` excludes a lock declaration from the model (the
  sanitizer's own bookkeeping lock).
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.concurrency.model import (
    AccessEvent,
    AcquireEvent,
    BlockingEvent,
    CallEvent,
    CodeModel,
    FunctionInfo,
    GuardedField,
    LockDecl,
    ReleaseEvent,
    Token,
    YieldEvent,
)

#: Method names too generic to resolve by package-wide uniqueness —
#: they collide with dict/list/str/queue/executor methods.  Calls on a
#: receiver of *known* class still resolve regardless of this set.
GENERIC_METHODS = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "decode",
        "discard", "dump", "dumps", "encode", "end", "extend", "find",
        "format", "get", "group", "groups", "index", "insert", "items",
        "join", "keys", "load", "loads", "main", "match", "open", "pop",
        "put", "read", "recv", "remove", "render", "replace", "result",
        "run", "save", "search", "send", "setdefault", "sort", "split",
        "start", "startswith", "strip", "sub", "submit", "update",
        "values", "wait", "write",
    }
)

#: Attribute calls that block (or run arbitrary code) regardless of
#: receiver: worker-pool scheduling, future waits, bus delivery.
_BLOCKING_ATTRS = {
    "submit": "pool submit",
    "map": "pool map",
    "shutdown": "pool shutdown",
    "result": "future result",
    "serve_forever": "http serve loop",
    "publish": "bus publish",
}

#: Attribute calls that block only on particular receivers (matched
#: against the receiver's trailing name, lowercased).
_CONDITIONAL_BLOCKING = {
    "get": ("queue",),
    "join": ("thread",),
    "wait": ("event", "condition", "barrier", "future"),
    "read": ("rfile", "file", "sock", "conn"),
    "write": ("wfile", "file", "sock", "conn"),
}

#: ``module.function`` calls that perform I/O or serialisation.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"): "sleep",
    ("os", "replace"): "file rename",
    ("os", "fdopen"): "file open",
    ("pickle", "dumps"): "pickling",
    ("pickle", "loads"): "unpickling",
    ("json", "dump"): "file write",
    ("json", "load"): "file read",
}

#: Bare-name calls that block: file opens and process-pool spawns.
_BLOCKING_NAMES = {
    "open": "file open",
    "ProcessPoolExecutor": "process pool spawn",
    "process_context": "process pool spawn",
}

#: Method calls that mutate their receiver (guarded-field writes).
_MUTATORS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "setdefault", "update",
    }
)


def _comments_by_line(source: str) -> Dict[int, str]:
    """Map line number -> comment text (without the leading ``#``)."""
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string.lstrip("#").strip()
    except tokenize.TokenError:
        pass
    return comments


def _annotation_class(node) -> Optional[str]:
    """The class named by a return/param annotation, if any."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"")
    if isinstance(node, ast.Subscript):
        value = node.value
        if isinstance(value, ast.Name) and value.id == "Optional":
            inner = node.slice
            if isinstance(inner, ast.Index):  # py38 compat shape
                inner = inner.value
            return _annotation_class(inner)
    return None


def _receiver_hint(node) -> str:
    """A lowercase name-ish rendering of a call receiver."""
    if isinstance(node, ast.Name):
        return node.id.lower()
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "str"
    return ""


def _is_lock_factory(func) -> Optional[bool]:
    """``True``/``False`` for new_rlock/new_lock calls, else ``None``."""
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name == "new_rlock":
        return True
    if name == "new_lock":
        return False
    return None


def _is_threading_lock(func) -> Optional[bool]:
    """``True``/``False`` for threading.RLock/Lock calls, else ``None``."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "threading" and func.attr == "RLock":
            return True
        if func.value.id == "threading" and func.attr == "Lock":
            return False
    return None


class _ModuleContext:
    def __init__(self, path: Path, relname: str, dotted: str) -> None:
        self.path = path
        self.relname = relname
        self.dotted = dotted
        source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(source, filename=str(path))
        self.comments = _comments_by_line(source)
        self.module_names = self._module_level_names()

    def comment(self, line: int) -> str:
        return self.comments.get(line, "")

    def _module_level_names(self) -> set:
        names = set()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
        return names


def _iter_functions(module: _ModuleContext):
    """(class name, function node) pairs, top level and one class deep."""
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef):
            yield "", node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield node.name, item


def _declared_lock(module: _ModuleContext, owner: str, stmt) -> Optional[LockDecl]:
    """A LockDecl if ``stmt`` constructs a lock into a self attribute."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None
    # self.X = ...  or  self.X[...] = ...
    attr = None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        attr = target.attr
    elif (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Attribute)
        and isinstance(target.value.value, ast.Name)
        and target.value.value.id == "self"
    ):
        attr = target.value.attr
    if attr is None or not isinstance(value, ast.Call):
        return None
    if "lock-internal" in module.comment(stmt.lineno):
        return None
    reentrant = _is_lock_factory(value.func)
    if reentrant is not None:
        if value.args and isinstance(value.args[0], ast.Constant):
            name = str(value.args[0].value)
        else:
            name = f"{owner}.{attr}" if owner else attr
    else:
        reentrant = _is_threading_lock(value.func)
        if reentrant is None:
            return None
        name = f"{owner}.{attr}" if owner else attr
    return LockDecl(
        name=name,
        module=module.relname,
        owner=owner,
        attr=attr,
        reentrant=reentrant,
        line=stmt.lineno,
    )


def _guarded_field(
    module: _ModuleContext, owner: str, stmt
) -> Optional[GuardedField]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    elif isinstance(stmt, ast.AnnAssign):
        target = stmt.target
    else:
        return None
    if not (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return None
    comment = module.comment(stmt.lineno)
    if not comment.startswith("guarded-by:"):
        return None
    spec = comment[len("guarded-by:"):].strip()
    writes_only = False
    if spec.endswith("[writes]"):
        writes_only = True
        spec = spec[: -len("[writes]")].strip()
    return GuardedField(
        owner=owner,
        attr=target.attr,
        lock=spec,
        writes_only=writes_only,
        module=module.relname,
        line=stmt.lineno,
    )


def _decorator_names(node: ast.FunctionDef) -> List[str]:
    names = []
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name):
            names.append(decorator.id)
        elif isinstance(decorator, ast.Attribute):
            names.append(decorator.attr)
        elif isinstance(decorator, ast.Call):
            func = decorator.func
            if isinstance(func, ast.Name):
                names.append(func.id)
            elif isinstance(func, ast.Attribute):
                names.append(func.attr)
    return names


class _FunctionScanner:
    """Lexical scan of one function body, tracking the held-lock stack."""

    def __init__(
        self,
        model: CodeModel,
        module: _ModuleContext,
        info: FunctionInfo,
        node: ast.FunctionDef,
    ) -> None:
        self.model = model
        self.module = module
        self.info = info
        self.node = node
        self.held: List[Token] = []
        self.in_finally = 0
        #: local name -> lock name (``lock = self._locks.get(name)``)
        self.lock_aliases: Dict[str, str] = {}
        #: local name -> class name (typed params/assignments)
        self.var_types: Dict[str, str] = {}
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            cls = _annotation_class(arg.annotation)
            if cls in self.model.classes:
                self.var_types[arg.arg] = cls

    # -- resolution helpers -------------------------------------------------

    def _lock_comment(self, line: int) -> Optional[str]:
        comment = self.module.comment(line)
        if comment.startswith("lock:"):
            return comment[len("lock:"):].strip().split()[0]
        return None

    def _calls_comment(self, line: int) -> List[str]:
        comment = self.module.comment(line)
        if comment.startswith("calls:"):
            return [
                entry.strip()
                for entry in comment[len("calls:"):].split(",")
                if entry.strip()
            ]
        return []

    def _lock_of(self, node) -> Tuple[Optional[str], bool, str]:
        """(lock name or None, via_self, text) for a lock expression."""
        if isinstance(node, ast.Name):
            alias = self.lock_aliases.get(node.id)
            if alias is not None:
                return alias, False, node.id
            annotated = self._lock_comment(node.lineno)
            if annotated:
                return annotated, False, node.id
            return None, False, node.id
        if isinstance(node, ast.Attribute):
            attr = node.attr
            via_self = (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            )
            if via_self:
                owned = self.model.class_locks.get(self.info.owner, {})
                if attr in owned:
                    return owned[attr], True, f"self.{attr}"
            annotated = self._lock_comment(node.lineno)
            if annotated:
                return annotated, via_self, f"<expr>.{attr}"
            # Receiver of known class?
            receiver_class = self._class_of(node.value)
            if receiver_class is not None:
                owned = self.model.class_locks.get(receiver_class, {})
                if attr in owned:
                    return owned[attr], False, f"{receiver_class}.{attr}"
            # Unique declaring class package-wide?
            owners = [
                lock_name
                for locks in self.model.class_locks.values()
                for lock_attr, lock_name in locks.items()
                if lock_attr == attr
            ]
            if len(set(owners)) == 1:
                return owners[0], via_self, f"<expr>.{attr}"
            return None, via_self, f"<expr>.{attr}"
        return None, False, ast.dump(node)[:40]

    def _looks_like_lock(self, node) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr == "_lock" or node.attr.endswith("_lock")
        if isinstance(node, ast.Name):
            return "lock" in node.id.lower()
        return False

    def _class_of(self, node) -> Optional[str]:
        """The class of an expression, where cheaply inferable."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.info.owner or None
            return self.var_types.get(node.id)
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in self.model.classes
            ):
                return node.func.id
            target = self._resolve_local(node)
            if target is not None:
                returns = self.model.functions[target].returns
                if returns in self.model.classes:
                    return returns
        return None

    def _call_ref(self, call: ast.Call) -> Optional[Tuple]:
        """A resolution reference for a call, or None when hopeless."""
        func = call.func
        annotated = self._calls_comment(call.lineno)
        if isinstance(func, ast.Attribute):
            for entry in annotated:
                if entry.endswith("." + func.attr):
                    return ("annot", entry)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return ("self", func.attr)
            receiver_class = self._class_of(func.value)
            if receiver_class is not None:
                return ("typed", receiver_class, func.attr)
            return ("attr", _receiver_hint(func.value), func.attr)
        if isinstance(func, ast.Name):
            for entry in annotated:
                if entry == func.id or entry.endswith("." + func.id):
                    return ("annot", entry)
            return ("name", func.id)
        return None

    def _resolve_local(self, call: ast.Call) -> Optional[str]:
        """Resolve a call to a function key, using the same rules the
        driver applies later (needed here for receiver typing)."""
        from repro.analysis.concurrency.driver import resolve_ref

        ref = self._call_ref(call)
        if ref is None:
            return None
        return resolve_ref(self.model, self.info, ref)

    # -- event recording ----------------------------------------------------

    def _snapshot(self) -> Tuple[Token, ...]:
        return tuple(self.held)

    def _record_call(self, call: ast.Call, as_cm: bool = False) -> None:
        ref = self._call_ref(call)
        if ref is not None:
            self.info.events.append(
                CallEvent(
                    ref=ref,
                    held=self._snapshot(),
                    line=call.lineno,
                    as_cm=as_cm,
                )
            )
        self._record_blocking(call)

    def _record_blocking(self, call: ast.Call) -> None:
        func = call.func
        label = None
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in _BLOCKING_ATTRS:
                label = _BLOCKING_ATTRS[attr]
            elif attr in _CONDITIONAL_BLOCKING:
                hint = _receiver_hint(func.value)
                if any(
                    needle in hint
                    for needle in _CONDITIONAL_BLOCKING[attr]
                ):
                    label = f"{attr} ({hint})"
            if (
                label is None
                and isinstance(func.value, ast.Name)
                and (func.value.id, attr) in _BLOCKING_MODULE_CALLS
            ):
                label = _BLOCKING_MODULE_CALLS[(func.value.id, attr)]
        elif isinstance(func, ast.Name) and func.id in _BLOCKING_NAMES:
            label = _BLOCKING_NAMES[func.id]
        if label is not None:
            self.info.events.append(
                BlockingEvent(
                    op=label, held=self._snapshot(), line=call.lineno
                )
            )

    def _record_access(self, node, write: bool) -> None:
        """Record guarded-field access for a self-attribute node."""
        if not (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return
        key = (self.info.owner, node.attr)
        if key in self.model.guarded:
            self.info.events.append(
                AccessEvent(
                    owner=self.info.owner,
                    attr=node.attr,
                    write=write,
                    held=self._snapshot(),
                    line=node.lineno,
                )
            )

    def _guarded_root(self, node):
        """The guarded self-attribute at the root of a subscript chain."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and (self.info.owner, node.attr) in self.model.guarded
        ):
            return node
        return None

    # -- expression / statement walking -------------------------------------

    def _walk_expr_inner(self, node, store_ids) -> None:
        """Visit an expression tree, recording calls and accesses.

        ``store_ids`` holds ids of Attribute nodes *written* by the
        enclosing statement (assignment targets, mutated subscripts).
        """
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # deferred bodies don't run under the current held set
        if isinstance(node, ast.Call):
            self._record_call(node)
            # Mutating method call on a guarded container is a write.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
            ):
                root = self._guarded_root(func.value)
                if root is not None:
                    self._record_access(root, write=True)
        if isinstance(node, ast.Attribute):
            write = id(node) in store_ids or isinstance(
                node.ctx, (ast.Store, ast.Del)
            )
            self._record_access(node, write=write)
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            root = self._guarded_root(node)
            if root is not None:
                self._record_access(root, write=True)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.info.events.append(
                YieldEvent(held=self._snapshot(), line=node.lineno)
            )
        for child in ast.iter_child_nodes(node):
            self._walk_expr_inner(child, store_ids)

    def _maybe_acquire_release(self, stmt) -> bool:
        """Handle a bare ``X.acquire()`` / ``X.release()`` statement."""
        if not (
            isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
        ):
            return False
        call = stmt.value
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("acquire", "release")
        ):
            return False
        lock, via_self, text = self._lock_of(func.value)
        if lock is None and not self._looks_like_lock(func.value):
            return False
        if func.attr == "acquire":
            self.info.events.append(
                AcquireEvent(
                    lock=lock,
                    via_self=via_self,
                    manual=True,
                    held=self._snapshot(),
                    line=stmt.lineno,
                    text=text,
                )
            )
            if lock is not None:
                self.held.append(("lock", lock, via_self))
        else:
            self.info.events.append(
                ReleaseEvent(
                    lock=lock,
                    in_finally=self.in_finally > 0,
                    line=stmt.lineno,
                )
            )
            if lock is not None:
                for position in range(len(self.held) - 1, -1, -1):
                    token = self.held[position]
                    if token[0] == "lock" and token[1] == lock:
                        del self.held[position]
                        break
        return True

    def _maybe_track_alias(self, stmt) -> None:
        """Track lock aliases and typed locals through assignments."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                cls = _annotation_class(stmt.annotation)
                if cls in self.model.classes:
                    self.var_types[stmt.target.id] = cls
            return
        target, value = stmt.targets[0], stmt.value
        if not isinstance(target, ast.Name):
            return
        # lock = self._lock / lock = self._locks[...] / .get(...)
        candidate = value
        if isinstance(candidate, ast.Call) and isinstance(
            candidate.func, ast.Attribute
        ) and candidate.func.attr == "get":
            candidate = candidate.func.value
        if isinstance(candidate, ast.Subscript):
            candidate = candidate.value
        if isinstance(candidate, ast.Attribute):
            lock, __, __ = self._lock_of(candidate)
            if lock is not None:
                self.lock_aliases[target.id] = lock
                return
        inferred = self._class_of(value)
        if inferred is not None:
            self.var_types[target.id] = inferred

    def scan(self) -> None:
        self._scan_body(self.node.body)
        for event in self.info.events:
            if isinstance(event, YieldEvent):
                self.info.yield_held = event.held
                break
        if self.info.is_process_kernel:
            self._scan_purity()

    def _scan_purity(self) -> None:
        """Record mutations of module-level state in a process kernel."""
        module_names = self.module.module_names
        impurities = self.info.impurities

        def root_name(node):
            while isinstance(node, (ast.Attribute, ast.Subscript)):
                node = node.value
            return node.id if isinstance(node, ast.Name) else None

        local_names = {
            arg.arg
            for arg in (
                list(self.node.args.args)
                + list(self.node.args.kwonlyargs)
                + ([self.node.args.vararg] if self.node.args.vararg else [])
                + ([self.node.args.kwarg] if self.node.args.kwarg else [])
            )
        }
        for node in ast.walk(self.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = (
                    "global" if isinstance(node, ast.Global) else "nonlocal"
                )
                impurities.append(
                    f"declares {keyword} {', '.join(node.names)}"
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        local_names.add(target.id)
                        continue
                    name = root_name(target)
                    if (
                        name is not None
                        and name in module_names
                        and name not in local_names
                    ):
                        impurities.append(
                            f"mutates module-level {name!r}"
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    name = root_name(func.value)
                    if (
                        name is not None
                        and name in module_names
                        and name not in local_names
                    ):
                        impurities.append(
                            f"mutates module-level {name!r} "
                            f"via .{func.attr}()"
                        )

    def _scan_body(self, body: List) -> None:
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if self._maybe_acquire_release(stmt):
            return
        if isinstance(stmt, ast.With):
            self._scan_with(stmt)
            return
        if isinstance(stmt, ast.Try):
            self._scan_body(stmt.body)
            for handler in stmt.handlers:
                self._scan_body(handler.body)
            self._scan_body(stmt.orelse)
            self.in_finally += 1
            try:
                self._scan_body(stmt.finalbody)
            finally:
                self.in_finally -= 1
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._walk_expr_inner(stmt.test, set())
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._walk_expr_inner(stmt.iter, set())
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        # Simple statement: track aliases, then walk expressions.
        self._maybe_track_alias(stmt)
        store_roots = []
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Attribute):
                    store_roots.append(target)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Attribute):
                store_roots.append(stmt.target)
        self._walk_expr_inner(stmt, {id(n) for n in store_roots})

    def _scan_with(self, stmt: ast.With) -> None:
        pushed = 0
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) and isinstance(
                expr.func, ast.Attribute
            ) and expr.func.attr in ("acquire",):
                # ``with lock.acquire():`` is not a pattern here; walk it.
                self._walk_expr_inner(expr, set())
                continue
            lock, via_self, text = self._lock_of(expr)
            if lock is not None:
                self.info.events.append(
                    AcquireEvent(
                        lock=lock,
                        via_self=via_self,
                        manual=False,
                        held=self._snapshot(),
                        line=expr.lineno,
                        text=text,
                    )
                )
                self.held.append(("lock", lock, via_self))
                pushed += 1
                continue
            if isinstance(expr, ast.Call):
                ref = self._call_ref(expr)
                self._record_call(expr, as_cm=True)
                # Walk arguments for nested calls/accesses.
                for arg in list(expr.args) + [
                    kw.value for kw in expr.keywords
                ]:
                    self._walk_expr_inner(arg, set())
                if ref is not None:
                    self.held.append(("cm", ref))
                    pushed += 1
                continue
            if self._looks_like_lock(expr):
                self.info.events.append(
                    AcquireEvent(
                        lock=None,
                        via_self=via_self,
                        manual=False,
                        held=self._snapshot(),
                        line=expr.lineno,
                        text=text,
                    )
                )
                continue
            self._walk_expr_inner(expr, set())
        self._scan_body(stmt.body)
        for __ in range(pushed):
            self.held.pop()


def extract_paths(
    paths: List[Path], root: Optional[Path] = None
) -> CodeModel:
    """Extract the lock model of a set of Python files.

    ``root`` anchors repo-relative module names; defaults to the common
    parent so fixture tests can analyze loose files.
    """
    model = CodeModel()
    modules: List[_ModuleContext] = []
    for path in paths:
        path = Path(path)
        if root is not None:
            try:
                rel = path.relative_to(root)
                relname = (Path(root.name) / rel).as_posix()
                dotted = ".".join((Path(root.name) / rel).with_suffix("").parts)
            except ValueError:
                relname = path.name
                dotted = path.stem
        else:
            relname = path.name
            dotted = path.stem
        modules.append(_ModuleContext(path, relname, dotted))
        model.modules.append(relname)

    # Pass 1: declarations and inventory.
    for module in modules:
        for owner, node in _iter_functions(module):
            if owner:
                methods = model.classes.setdefault(owner, {})
                methods[node.name] = f"{module.dotted}:{owner}.{node.name}"
            for stmt in ast.walk(node):
                decl = _declared_lock(module, owner, stmt)
                if decl is not None and decl.name not in model.locks:
                    model.locks[decl.name] = decl
                if decl is not None:
                    model.class_locks.setdefault(owner, {})[
                        decl.attr
                    ] = decl.name
                guarded = _guarded_field(module, owner, stmt)
                if guarded is not None:
                    model.guarded[(owner, guarded.attr)] = guarded

    # Pass 1b: function records (so return annotations resolve).
    for module in modules:
        for owner, node in _iter_functions(module):
            qualname = f"{owner}.{node.name}" if owner else node.name
            key = f"{module.dotted}:{qualname}"
            decorators = _decorator_names(node)
            comment = module.comment(node.lineno)
            info = FunctionInfo(
                key=key,
                module=module.relname,
                dotted=module.dotted,
                qualname=qualname,
                name=node.name,
                owner=owner,
                line=node.lineno,
                is_contextmanager="contextmanager" in decorators,
                is_process_kernel=(
                    node.name.startswith("process_")
                    or "process-kernel" in comment
                ),
                returns=_annotation_class(node.returns),
            )
            model.functions[key] = info

    # Pass 2: event extraction.
    for module in modules:
        for owner, node in _iter_functions(module):
            qualname = f"{owner}.{node.name}" if owner else node.name
            info = model.functions[f"{module.dotted}:{qualname}"]
            _FunctionScanner(model, module, info, node).scan()
    return model


def module_level_names(path: Path) -> set:
    """Module-level bindings of a file (for the purity rule)."""
    return _ModuleContext(Path(path), Path(path).name, Path(path).stem).module_names
