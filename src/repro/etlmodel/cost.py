"""Configurable ETL cost model.

"ETL Process Integrator also accounts for the cost of produced ETL flows
[...] by applying configurable cost models that may consider different
quality factors of an ETL process (e.g., overall execution time)"
(§2.3).  The model here estimates overall execution time as processed
row volume weighted by per-operator unit costs:

* datastore cardinalities come from the caller (actual table sizes when
  deploying, or analyst estimates at design time),
* selections apply per-conjunct selectivities (equality is more
  selective than a range test),
* an equi-join is assumed key/foreign-key — output = max input,
* aggregations reduce to a configurable grouping ratio.

The absolute numbers are abstract cost units; benchmarks correlate them
with real executor timings (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import math

from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    Join,
    Selection,
    Sort,
)
from repro.expressions import parse
from repro.expressions.ast import BinaryOp, conjuncts


@dataclass(frozen=True)
class CostParameters:
    """Tunable knobs of the cost model."""

    #: cost units charged per input row, by operation kind
    unit_costs: Dict[str, float] = field(
        default_factory=lambda: {
            "Datastore": 1.0,  # scan
            "Extraction": 0.2,
            "Selection": 0.3,
            "Projection": 0.2,
            "Join": 1.5,
            "Aggregation": 1.2,
            "DerivedAttribute": 0.4,
            "Rename": 0.1,
            "Union": 0.1,
            "Distinct": 0.8,
            "SurrogateKey": 0.5,
            "Sort": 1.0,  # multiplied by log2(n)
            "Loader": 2.0,  # write amplification
        }
    )
    equality_selectivity: float = 0.1
    range_selectivity: float = 0.3
    default_selectivity: float = 0.5
    grouping_ratio: float = 0.1
    distinct_ratio: float = 0.3
    minimum_rows: float = 1.0


DEFAULT_PARAMETERS = CostParameters()

#: .. deprecated:: the unknown-kind fallback unit cost.  Every concrete
#:    operation kind has an explicit entry in ``unit_costs``, so this
#:    value is unreachable through the shipped operation set; it is kept
#:    only so third-party ``Operation`` subclasses do not crash the
#:    model and will be removed once the linter rejects unknown kinds.
_UNKNOWN_KIND_UNIT = 0.5


def calibrated_parameters(runs, base: CostParameters = DEFAULT_PARAMETERS) -> CostParameters:
    """Derive :class:`CostParameters` from measured executor timings.

    ``runs`` is an iterable of execution reports (anything with a
    ``.nodes`` list of :class:`repro.engine.executor.NodeStats`).  Per
    operation kind the median seconds-per-row is taken over all observed
    nodes and normalised so ``Datastore`` keeps its nominal unit cost
    (1.0) — the model stays in abstract units, but the *ratios* between
    operators now reflect this machine instead of hand-picked defaults.
    ``Sort``'s measured rate is divided by ``log2(n)`` first, matching
    the model's superlinear charge.  Kinds never observed (and every
    selectivity/ratio knob) keep their ``base`` values.
    """
    import statistics
    from dataclasses import replace

    samples: Dict[str, List[float]] = {}
    for run in runs:
        for node in run.nodes:
            rows = max(node.input_rows, node.output_rows)
            if rows <= 0 or node.seconds <= 0.0:
                continue
            per_row = node.seconds / rows
            if node.kind == "Sort":
                per_row /= max(1.0, math.log2(max(2.0, float(rows))))
            samples.setdefault(node.kind, []).append(per_row)
    if not samples:
        return base
    medians = {
        kind: statistics.median(values) for kind, values in samples.items()
    }
    # Normalise against the scan rate; when no scan was measured, anchor
    # on the observed kind with the smallest configured unit cost.
    reference = "Datastore"
    if reference not in medians:
        reference = min(
            medians,
            key=lambda kind: base.unit_costs.get(kind, _UNKNOWN_KIND_UNIT),
        )
    reference_unit = base.unit_costs.get(reference, _UNKNOWN_KIND_UNIT)
    scale = reference_unit / medians[reference]
    unit_costs = dict(base.unit_costs)
    for kind, median in medians.items():
        unit_costs[kind] = median * scale
    return replace(base, unit_costs=unit_costs)


@dataclass(frozen=True)
class NodeCost:
    """Estimated input volume, output volume and cost of one node."""

    name: str
    kind: str
    input_rows: float
    output_rows: float
    cost: float


@dataclass(frozen=True)
class FlowCostReport:
    """Per-node estimates plus the flow total."""

    flow: str
    nodes: List[NodeCost]
    total: float

    def node(self, name: str) -> NodeCost:
        for node_cost in self.nodes:
            if node_cost.name == name:
                return node_cost
        raise KeyError(name)


class CostModel:
    """Estimates flow execution cost from datastore cardinalities."""

    def __init__(self, parameters: CostParameters = DEFAULT_PARAMETERS) -> None:
        self._parameters = parameters

    def estimate(
        self, flow: EtlFlow, row_counts: Optional[Dict[str, int]] = None
    ) -> FlowCostReport:
        """Estimate the cost of a flow.

        ``row_counts`` maps datastore *table* names to cardinalities;
        missing tables default to 1000 rows.
        """
        counts = row_counts or {}
        # Per node we track (rows, fraction): ``fraction`` is the share
        # of the node's base lineage surviving filters so far; a
        # key/foreign-key join lets the dimension side's fraction thin
        # out the fact side (filtering a dimension filters the fact).
        estimates: Dict[str, tuple] = {}
        node_costs: List[NodeCost] = []
        total = 0.0
        for name in flow.topological_order():
            operation = flow.node(name)
            inputs = [estimates[source] for source in flow.inputs(name)]
            input_rows = [rows for rows, __ in inputs]
            output_rows, fraction = self._estimate_node(
                operation, inputs, counts
            )
            estimates[name] = (output_rows, fraction)
            cost = self._node_cost(operation, input_rows, output_rows)
            total += cost
            node_costs.append(
                NodeCost(
                    name=name,
                    kind=operation.kind,
                    input_rows=sum(input_rows),
                    output_rows=output_rows,
                    cost=cost,
                )
            )
        return FlowCostReport(flow=flow.name, nodes=node_costs, total=total)

    def total(
        self, flow: EtlFlow, row_counts: Optional[Dict[str, int]] = None
    ) -> float:
        return self.estimate(flow, row_counts).total

    # -- internals ---------------------------------------------------------

    def _estimate_node(
        self, operation, inputs: List[tuple], counts: Dict[str, int]
    ) -> tuple:
        """(output rows, surviving fraction) for one node."""
        p = self._parameters
        if isinstance(operation, Datastore):
            return float(counts.get(operation.table, 1000)), 1.0
        if isinstance(operation, Selection):
            rows, fraction = inputs[0]
            selectivity = self.selectivity(operation.predicate)
            return (
                max(p.minimum_rows, rows * selectivity),
                fraction * selectivity,
            )
        if isinstance(operation, Join):
            (left_rows, left_fraction), (right_rows, right_fraction) = inputs
            left_base = left_rows / max(left_fraction, 1e-9)
            right_base = right_rows / max(right_fraction, 1e-9)
            # The side with the larger base lineage is the fact side; the
            # other side's surviving fraction thins it out.
            if left_base >= right_base:
                rows = left_rows * right_fraction
            else:
                rows = right_rows * left_fraction
            return max(p.minimum_rows, rows), left_fraction * right_fraction
        if isinstance(operation, Aggregation):
            rows, __ = inputs[0]
            # Aggregation establishes a new granularity: reset fraction.
            return max(p.minimum_rows, rows * p.grouping_ratio), 1.0
        if operation.kind == "Union":
            return sum(rows for rows, __ in inputs), 1.0
        if operation.kind == "Distinct":
            rows, __ = inputs[0]
            return max(p.minimum_rows, rows * p.distinct_ratio), 1.0
        if inputs:
            return inputs[0]
        return p.minimum_rows, 1.0

    def selectivity(self, predicate: str) -> float:
        """Combined selectivity of a predicate's conjuncts."""
        p = self._parameters
        result = 1.0
        for conjunct in conjuncts(parse(predicate)):
            if isinstance(conjunct, BinaryOp) and conjunct.operator == "=":
                result *= p.equality_selectivity
            elif isinstance(conjunct, BinaryOp) and conjunct.operator in (
                "<",
                "<=",
                ">",
                ">=",
            ):
                result *= p.range_selectivity
            else:
                result *= p.default_selectivity
        return result

    def _node_cost(
        self, operation, inputs: List[float], output_rows: float
    ) -> float:
        p = self._parameters
        unit = p.unit_costs.get(operation.kind, _UNKNOWN_KIND_UNIT)
        volume = sum(inputs) if inputs else output_rows
        if isinstance(operation, Sort):
            return unit * volume * max(1.0, math.log2(max(2.0, volume)))
        if isinstance(operation, Join):
            # Sort-merge style: both inputs are consumed.
            return unit * volume
        if operation.kind == "Loader":
            return unit * output_rows
        return unit * volume
