"""Lineage passes over an ETL flow.

Two dataflow analyses share this module:

* **Backward demand** (:func:`output_demand`) — for every node, which of
  its output attributes are actually consumed downstream.  Loaders
  demand everything they load; each operation translates the demand on
  its output into the demand on its inputs (a join adds its keys, a
  selection its predicate's attributes, ...).  Attributes a node
  *introduces* (derived/aggregate outputs, surrogate keys, renamed or
  extracted columns) that nobody demands are dead.

* **Forward hashability taint** (:func:`hashability_hazards`) — when the
  source rows are available, unhashable values (the kind
  :class:`repro.fuzz.datagen.LooseDatabase` smuggles past the type
  system) are tracked forward to the operations that hash them: join
  keys, group-by attributes, whole rows at a Distinct, surrogate
  business keys.  A hazard is ``definite`` when a carrying row provably
  reaches the consumer (only row-preserving operations on the path), or
  ``possible`` when the path crosses row-filtering operations.  The
  taint transfer deliberately mirrors engine facts: hash consumers
  cleanse the attributes they hash (a surviving row demonstrably held a
  hashable value), a Distinct cleanses the whole row, MIN/MAX can
  forward an unhashable input to their output, any expression over a
  tainted attribute may re-emit it (``coalesce``), and — crucially —
  joins drop rows whose key tuple contains a NULL *before* hashing, so
  a definite verdict at a join needs a witness row whose other key
  attributes are all non-null (see :class:`_Taint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.folding import truth
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    JoinType,
    Loader,
    Operation,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.expressions import parse
from repro.expressions import ast as expr_ast

Demand = Optional[Set[str]]  # None = unknown, treat as "all"

DEFINITE = "definite"
POSSIBLE = "possible"


@dataclass(frozen=True)
class Hazard:
    """An unhashable value reaching a hashing consumer."""

    node: str
    attribute: str
    status: str  # DEFINITE | POSSIBLE
    role: str  # "join key" | "group-by attribute" | "distinct row" | "business key"


# ---------------------------------------------------------------------------
# Backward demand
# ---------------------------------------------------------------------------


def output_demand(
    flow: EtlFlow, names: Dict[str, Optional[set]]
) -> Dict[str, Demand]:
    """For each node, the subset of its output attributes consumed
    downstream (``None`` when it cannot be determined)."""
    order = flow.topological_order()
    demand: Dict[str, Demand] = {}
    for name in reversed(order):
        operation = flow.node(name)
        if isinstance(operation, Loader):
            demand[name] = _copy(names.get(name))
            continue
        consumers = flow.outputs(name)
        if not consumers:
            demand[name] = set()  # non-loader sink; the dead-end rule owns it
            continue
        total: Set[str] = set()
        unknown = False
        for consumer in consumers:
            need = _needs(flow, consumer, name, demand[consumer], names)
            if need is None:
                unknown = True
                continue
            total |= need
        demand[name] = None if unknown else total
    return demand


def _copy(value: Optional[set]) -> Demand:
    return None if value is None else set(value)


def _needs(
    flow: EtlFlow,
    consumer: str,
    producer: str,
    consumer_demand: Demand,
    names: Dict[str, Optional[set]],
) -> Demand:
    """What ``consumer`` needs from ``producer``'s output."""
    operation = flow.node(consumer)
    if consumer_demand is None:
        # Unknown downstream demand: conservatively need everything.
        return _copy(names.get(producer))
    if isinstance(operation, Loader):
        return _copy(names.get(producer))
    if isinstance(operation, Distinct):
        return _copy(names.get(producer))  # hashes (and keeps) the whole row
    if isinstance(operation, Selection):
        return set(consumer_demand) | parse(operation.predicate).attributes()
    if isinstance(operation, Sort):
        return set(consumer_demand) | set(operation.keys)
    if isinstance(operation, (Projection, Extraction)):
        return set(operation.columns) & consumer_demand
    if isinstance(operation, Rename):
        inverse = {new: old for old, new in operation.renaming}
        return {inverse.get(attr, attr) for attr in consumer_demand}
    if isinstance(operation, DerivedAttribute):
        need = set(consumer_demand) - {operation.output}
        if operation.output in consumer_demand:
            need |= parse(operation.expression).attributes()
        return need
    if isinstance(operation, Aggregation):
        return set(operation.group_by) | {
            spec.input
            for spec in operation.aggregates
            if spec.output in consumer_demand
        }
    if isinstance(operation, SurrogateKey):
        return (set(consumer_demand) - {operation.output}) | set(
            operation.business_keys
        )
    if isinstance(operation, Join):
        return _join_needs(flow, operation, consumer, producer, consumer_demand, names)
    if isinstance(operation, UnionOp):
        return set(consumer_demand)
    return _copy(names.get(producer))  # unknown kind: assume everything


def _join_needs(
    flow: EtlFlow,
    operation: Join,
    consumer: str,
    producer: str,
    consumer_demand: Set[str],
    names: Dict[str, Optional[set]],
) -> Demand:
    inputs = flow.inputs(consumer)
    if len(inputs) != 2:
        return _copy(names.get(producer))
    left, right = inputs
    left_names = names.get(left)
    right_names = names.get(right)
    if left_names is None or right_names is None:
        return _copy(names.get(producer))
    if producer == left:
        return {a for a in consumer_demand if a in left_names} | set(
            operation.left_keys
        )
    # Attributes present on both sides belong to the left output slot
    # (collapsed equi-keys or collisions), so they put no demand on the
    # right input beyond the join keys themselves.
    return {
        a
        for a in consumer_demand
        if a in right_names and a not in left_names
    } | set(operation.right_keys)


def introduced_attributes(operation: Operation) -> List[str]:
    """Attributes a node computes/renames/extracts (QRY101 candidates)."""
    if isinstance(operation, DerivedAttribute):
        return [operation.output]
    if isinstance(operation, SurrogateKey):
        return [operation.output]
    if isinstance(operation, Rename):
        return [new for _old, new in operation.renaming]
    if isinstance(operation, (Projection, Extraction)):
        return list(operation.columns)
    if isinstance(operation, Aggregation):
        return [spec.output for spec in operation.aggregates]
    return []


# ---------------------------------------------------------------------------
# Forward hashability taint
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Taint:
    """Taint on one attribute at one node.

    ``witnesses`` (DEFINITE only) holds, per carrying source row, the
    set of attributes *known non-null* in that row.  Joins skip rows
    whose key tuple contains a NULL before hashing anything, so a
    definite claim at a join additionally needs a witness row whose
    key attributes are all non-null; aggregation, surrogate keys and
    distinct hash unconditionally, so there the status alone decides.
    """

    status: str
    witnesses: Tuple[frozenset, ...] = ()


def _is_unhashable(value) -> bool:
    try:
        hash(value)
    except TypeError:
        return True
    return False


def _merge(left: Optional[_Taint], right: Optional[_Taint]) -> Optional[_Taint]:
    if left is None:
        return right
    if right is None:
        return left
    if DEFINITE in (left.status, right.status):
        witnesses = tuple(dict.fromkeys(left.witnesses + right.witnesses))
        return _Taint(DEFINITE, witnesses)
    return _Taint(POSSIBLE)


def _weaken(taint: Dict[str, _Taint]) -> Dict[str, _Taint]:
    return {attribute: _Taint(POSSIBLE) for attribute in taint}


def hashability_hazards(
    flow: EtlFlow,
    rows_by_table: Dict[str, List[dict]],
    names: Dict[str, Optional[set]],
) -> List[Hazard]:
    """Track unhashable source values to the operations that hash them."""
    hazards: List[Hazard] = []
    taints: Dict[str, Dict[str, _Taint]] = {}
    for name in flow.topological_order():
        operation = flow.node(name)
        inputs = [taints[source] for source in flow.inputs(name)]
        result = _transfer(
            operation, name, inputs, names, rows_by_table, hazards
        )
        taints[name] = _clamp_witnesses(result, names.get(name))
    return hazards


def _clamp_witnesses(
    taint: Dict[str, _Taint], visible: Optional[set]
) -> Dict[str, _Taint]:
    """Restrict witness profiles to the node's actual output attributes.

    A stale profile member whose name is later *re-created* (rename,
    derive) would otherwise vouch for the nullness of a different
    attribute.  With unknown output names the witnesses are dropped
    entirely — a witness-less DEFINITE still fails aggregates but only
    counts as POSSIBLE at joins, which is the sound direction.
    """
    clamped: Dict[str, _Taint] = {}
    for attribute, entry in taint.items():
        if entry.status != DEFINITE or not entry.witnesses:
            clamped[attribute] = entry
        elif visible is None:
            clamped[attribute] = _Taint(DEFINITE)
        else:
            clamped[attribute] = _Taint(
                DEFINITE,
                tuple(
                    dict.fromkeys(
                        witness & visible for witness in entry.witnesses
                    )
                ),
            )
    return clamped


def _seed(operation: Datastore, name, names, rows_by_table) -> Dict[str, _Taint]:
    rows = rows_by_table.get(operation.table, [])
    visible = names.get(name)
    taint: Dict[str, _Taint] = {}
    for row in rows:
        profile = frozenset(
            attribute
            for attribute, value in row.items()
            if value is not None
            and (visible is None or attribute in visible)
        )
        for attribute, value in row.items():
            if visible is not None and attribute not in visible:
                continue
            if _is_unhashable(value):
                taint[attribute] = _merge(
                    taint.get(attribute), _Taint(DEFINITE, (profile,))
                )
    return taint


def _consume(
    taint: Dict[str, _Taint],
    keys,
    node: str,
    role: str,
    hazards: List[Hazard],
    skip_null_rows: bool = False,
) -> bool:
    """Record hazards for hashed attributes; True when failure is certain.

    With ``skip_null_rows`` (joins) a DEFINITE taint only stays definite
    when some witness row has every key attribute non-null — rows with a
    NULL anywhere in the key are dropped before hashing.
    """
    key_set = set(keys)
    definite = False
    for attribute in keys:
        entry = taint.get(attribute)
        if entry is None:
            continue
        status = entry.status
        if status == DEFINITE and skip_null_rows:
            if not any(key_set <= witness for witness in entry.witnesses):
                status = POSSIBLE
        hazards.append(Hazard(node, attribute, status, role))
        definite = definite or status == DEFINITE
    return definite


def _transfer(
    operation: Operation,
    name: str,
    inputs: List[Dict[str, _Taint]],
    names: Dict[str, Optional[set]],
    rows_by_table: Dict[str, List[dict]],
    hazards: List[Hazard],
) -> Dict[str, _Taint]:
    if isinstance(operation, Datastore):
        return _seed(operation, name, names, rows_by_table)
    if not inputs:
        return {}
    taint = dict(inputs[0])
    if isinstance(operation, Selection):
        # Unless the predicate provably passes every row, the carrying
        # row may be filtered out: downgrade to POSSIBLE.
        if truth(parse(operation.predicate)) is True:
            return taint
        return _weaken(taint)
    if isinstance(operation, (Projection, Extraction)):
        return {
            attribute: entry
            for attribute, entry in taint.items()
            if attribute in operation.columns
        }
    if isinstance(operation, Rename):
        mapping = operation.mapping()
        return {
            mapping.get(attribute, attribute): _Taint(
                entry.status,
                tuple(
                    frozenset(mapping.get(member, member) for member in witness)
                    for witness in entry.witnesses
                ),
            )
            for attribute, entry in taint.items()
        }
    if isinstance(operation, DerivedAttribute):
        return _derive_transfer(operation, taint)
    if isinstance(operation, Sort):
        return taint  # row-preserving; a failing sort still fails the flow
    if isinstance(operation, Distinct):
        _consume(taint, list(taint), name, "distinct row", hazards)
        return {}  # surviving rows hashed every value successfully
    if isinstance(operation, Aggregation):
        failed = _consume(
            taint, operation.group_by, name, "group-by attribute", hazards
        )
        if failed:
            return {}
        result: Dict[str, _Taint] = {}
        for spec in operation.aggregates:
            if spec.function in ("MIN", "MAX") and spec.input in taint:
                result[spec.output] = _Taint(POSSIBLE)
        return result
    if isinstance(operation, SurrogateKey):
        failed = _consume(
            taint, operation.business_keys, name, "business key", hazards
        )
        if failed:
            return {}
        for key in operation.business_keys:
            taint.pop(key, None)  # hashed: surviving rows are clean here
        return taint
    if isinstance(operation, Join):
        return _join_transfer(operation, name, inputs, hazards)
    if isinstance(operation, UnionOp):
        merged = dict(inputs[0])
        for attribute, entry in inputs[1].items():
            merged[attribute] = _merge(merged.get(attribute), entry)
        return merged
    if isinstance(operation, Loader):
        return taint  # loading never hashes
    return _weaken(taint)  # unknown kind: stay conservative


def _derive_transfer(
    operation: DerivedAttribute, taint: Dict[str, _Taint]
) -> Dict[str, _Taint]:
    output = operation.output
    expression = parse(operation.expression)
    bare = (
        expression.name
        if isinstance(expression, expr_ast.Attribute)
        else None
    )
    source = taint.get(bare) if bare is not None else None
    result: Dict[str, _Taint] = {}
    for attribute, entry in taint.items():
        if attribute == output:
            continue  # overwritten below (or gone)
        # In each witness row the new output is non-null exactly when a
        # bare-copied source is; any computed expression might be NULL.
        witnesses = tuple(
            (witness | {output}) if bare is not None and bare in witness
            else (witness - {output})
            for witness in entry.witnesses
        )
        result[attribute] = _Taint(entry.status, witnesses)
    if source is not None:
        result[output] = _Taint(
            source.status,
            tuple(witness | {output} for witness in source.witnesses),
        )
    elif any(attribute in taint for attribute in expression.attributes()):
        # coalesce (and friends) can return a tainted argument as-is.
        result[output] = _Taint(POSSIBLE)
    return result


def _join_transfer(
    operation: Join,
    name: str,
    inputs: List[Dict[str, _Taint]],
    hazards: List[Hazard],
) -> Dict[str, _Taint]:
    if len(inputs) != 2:
        return {}
    left, right = inputs
    failed = _consume(
        left, operation.left_keys, name, "join key", hazards,
        skip_null_rows=True,
    )
    failed = (
        _consume(
            right, operation.right_keys, name, "join key", hazards,
            skip_null_rows=True,
        )
        or failed
    )
    if failed:
        return {}
    result: Dict[str, _Taint] = {}
    keep_left = operation.join_type == JoinType.LEFT
    for attribute, entry in left.items():
        if attribute in operation.left_keys:
            continue  # hashed on probe: surviving rows are clean here
        result[attribute] = entry if keep_left else _Taint(POSSIBLE)
    collapsed = {
        r for l, r in zip(operation.left_keys, operation.right_keys) if l == r
    }
    for attribute, entry in right.items():
        if attribute in operation.right_keys or attribute in collapsed:
            continue
        result[attribute] = _merge(result.get(attribute), _Taint(POSSIBLE))
    return result
