"""Design-pipeline benchmark runner: incremental vs from-scratch.

Measures the four layers the sub-linear design pipeline rests on and
writes ``BENCH_design.json``:

* **integrator** — at several design sizes N, the cost of accommodating
  a change (add / change / remove of the most recent requirement)
  against a full ``rebuild()`` over all N partial designs,
* **evolution** — ``evolve@N``: one design-evolution operator (a
  concept rename) applied incrementally (re-interpret affected
  requirements, re-fold from the earliest affected checkpoint) against
  rebuilding the whole session over the evolved domain,
* **ontology** — cached to-one closures on a warm
  :class:`~repro.ontology.graph.OntologyGraph` against uncached
  recomputation,
* **repository** — indexed equality lookups against full collection
  scans.

The runner is also an equivalence gate: every incremental result is
compared against a from-scratch reference (same xMD/xLM serialisation,
same requirement order; identical documents for the repository probes;
identical closures and paths for the ontology) and the process exits
non-zero on any disagreement — a speedup is only reported for results
that are known identical.

Usage::

    python -m benchmarks.run_design [--output BENCH_design.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

try:
    import repro  # noqa: F401  (needs PYTHONPATH=src or an install)
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )

from repro import Quarry
from repro.ontology.graph import OntologyGraph
from repro.repository import Collection
from repro.sources import tpch
from repro.xformats import xlm, xmd

from benchmarks._workloads import ROW_COUNTS, requirement_corpus

SIZES = (8, 32, 64, 128)
ROUNDS = 3
HEADLINE_SIZE = 64


def fresh_quarry() -> Quarry:
    return Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )


def build_design(count: int) -> Quarry:
    quarry = fresh_quarry()
    for requirement in requirement_corpus(count):
        quarry.add_requirement(requirement)
    return quarry


def design_fingerprint(quarry: Quarry):
    md_schema, etl_flow = quarry.unified_design()
    return (
        xmd.dumps(md_schema),
        xlm.dumps(etl_flow),
        [requirement.id for requirement in quarry.requirements()],
    )


def best_of(rounds, action):
    best = float("inf")
    for __ in range(rounds):
        started = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - started)
    return best


# -- integrator layer ---------------------------------------------------------


def run_integrator_workloads(sizes, rounds, mismatches):
    results = {}
    for count in sizes:
        corpus = requirement_corpus(count + 1)
        quarry = build_design(count)
        last = corpus[count - 1]
        extra = corpus[count]

        rebuild_seconds = best_of(rounds, quarry.rebuild)

        # Incremental add of one more requirement; the follow-up remove
        # restores the N-requirement design (and is itself free: the
        # removed requirement is the most recent checkpoint).
        add_seconds = float("inf")
        for __ in range(rounds):
            started = time.perf_counter()
            quarry.add_requirement(extra)
            add_seconds = min(add_seconds, time.perf_counter() - started)
            quarry.remove_requirement(extra.id)

        counts_before = dict(quarry.integration_counts)
        change_seconds = best_of(
            rounds, lambda: quarry.change_requirement(last)
        )
        change_integrations = (
            quarry.integration_counts["md"] - counts_before["md"]
        ) // rounds

        counts_before = dict(quarry.integration_counts)
        quarry.remove_requirement(last.id)
        remove_integrations = (
            quarry.integration_counts["md"] - counts_before["md"]
        )
        started = time.perf_counter()
        quarry.add_requirement(last)
        readd_seconds = time.perf_counter() - started

        # Equivalence gate: after all the timed churn the design must be
        # indistinguishable from a from-scratch build of the same order.
        reference = build_design(count)
        if design_fingerprint(quarry) != design_fingerprint(reference):
            mismatches.append(
                f"N={count}: incremental design differs from "
                f"from-scratch reference"
            )
        results[str(count)] = {
            "rebuild_seconds": rebuild_seconds,
            "incremental_add_seconds": add_seconds,
            "incremental_change_seconds": change_seconds,
            "remove_last_then_readd_seconds": readd_seconds,
            "change_speedup_vs_rebuild": rebuild_seconds / change_seconds,
            "integrations_per_change": change_integrations,
            "integrations_for_remove_last": remove_integrations,
            "results_identical": not any(
                mismatch.startswith(f"N={count}:") for mismatch in mismatches
            ),
        }
        print(
            f"  N={count:<4} rebuild {rebuild_seconds * 1000:8.1f}ms  "
            f"add {add_seconds * 1000:6.1f}ms  "
            f"change {change_seconds * 1000:6.1f}ms  "
            f"change speedup {results[str(count)]['change_speedup_vs_rebuild']:.1f}x"
        )
    return results


# -- evolution layer ----------------------------------------------------------

#: The concept the ``evolve@N`` scenario renames.  Requirements that
#: analyse it are moved to the end of the corpus order: design
#: evolution typically touches the concepts under *active* analysis,
#: and those are the recently added requirements — the regime the
#: checkpointed re-fold is built for.
EVOLVED_CONCEPT = "Customer"


def evolve_corpus(count: int):
    """The benchmark corpus, evolution-affected requirements last."""
    corpus = requirement_corpus(count)
    prefix = f"{EVOLVED_CONCEPT}_"
    untouched = [
        requirement
        for requirement in corpus
        if not any(
            name.startswith(prefix)
            for name in requirement.referenced_properties()
        )
    ]
    touched = [r for r in corpus if r not in untouched]
    return untouched + touched


def evolved_domain():
    """(ontology, mappings) with the rename already applied."""
    ontology = tpch.ontology()
    ontology.rename_concept(EVOLVED_CONCEPT, "Client")
    mappings = tpch.mappings()
    mappings.rename_concept(EVOLVED_CONCEPT, "Client")
    return ontology, mappings


def run_evolution_workloads(sizes, rounds, mismatches):
    """``evolve@N``: one rename, incremental versus from-scratch.

    The incremental path re-interprets only the affected requirements
    and re-folds from the earliest affected checkpoint; the baseline is
    what a system without evolution operators must do — rebuild the
    whole session over the evolved domain (interpret and integrate all
    N requirements).  The gate compares both unified designs byte for
    byte (same xMD/xLM text), so the speedup is only reported for
    results that are known identical.
    """
    results = {}
    for count in sizes:
        corpus = evolve_corpus(count)
        quarry = fresh_quarry()
        for requirement in corpus:
            quarry.add_requirement(requirement)

        evolve_seconds = float("inf")
        affected = refolded_from = None
        for __ in range(rounds):
            started = time.perf_counter()
            report = quarry.rename_concept(EVOLVED_CONCEPT, "Client")
            evolve_seconds = min(
                evolve_seconds, time.perf_counter() - started
            )
            affected = len(report.affected)
            refolded_from = report.refolded_from
            quarry.rename_concept("Client", EVOLVED_CONCEPT)  # untimed undo

        def build_evolved():
            ontology, mappings = evolved_domain()
            evolved = Quarry(
                ontology, tpch.schema(), mappings, row_counts=ROW_COUNTS
            )
            for requirement in evolve_corpus(count):
                evolved.add_requirement(requirement)
            return evolved

        scratch_seconds = best_of(rounds, build_evolved)

        quarry.rename_concept(EVOLVED_CONCEPT, "Client")
        if design_fingerprint(quarry) != design_fingerprint(build_evolved()):
            mismatches.append(
                f"evolve@{count}: incremental evolution differs from "
                f"from-scratch rebuild of the evolved domain"
            )
        speedup = scratch_seconds / evolve_seconds
        results[str(count)] = {
            "operator": f"rename_concept({EVOLVED_CONCEPT!r}, 'Client')",
            "affected_requirements": affected,
            "refolded_from_index": refolded_from,
            "incremental_evolve_seconds": evolve_seconds,
            "from_scratch_seconds": scratch_seconds,
            "evolve_speedup_vs_rebuild": speedup,
            "results_identical": not any(
                mismatch.startswith(f"evolve@{count}:")
                for mismatch in mismatches
            ),
        }
        print(
            f"  evolve@{count:<4} scratch {scratch_seconds * 1000:8.1f}ms  "
            f"incremental {evolve_seconds * 1000:6.1f}ms  "
            f"({affected} affected, refold from {refolded_from})  "
            f"speedup {speedup:.1f}x"
        )
    return results


# -- ontology layer -----------------------------------------------------------


def run_ontology_workload(rounds, mismatches):
    ontology = tpch.ontology()
    graph = OntologyGraph(ontology)
    concept_ids = [concept.id for concept in ontology.concepts()]
    repeats = 25

    def closures(use_cache):
        return {
            concept_id: graph.to_one_closure(concept_id, use_cache=use_cache)
            for concept_id in concept_ids
        }

    cached_result = closures(True)  # warm the memo before timing
    uncached_seconds = best_of(
        rounds, lambda: [closures(False) for __ in range(repeats)]
    )
    cached_seconds = best_of(
        rounds, lambda: [closures(True) for __ in range(repeats)]
    )
    if closures(False) != cached_result:
        mismatches.append("ontology: cached closures differ from uncached")

    # Path queries: a warm graph answers from the memoised closure, a
    # cold one runs the early-exit BFS — both must agree.
    cold = OntologyGraph(ontology)
    for source in concept_ids:
        for target in concept_ids:
            if graph.to_one_path(source, target) != cold.to_one_path(
                source, target
            ):
                mismatches.append(
                    f"ontology: to_one_path({source!r}, {target!r}) "
                    f"differs warm vs cold"
                )
    speedup = uncached_seconds / cached_seconds
    print(
        f"  ontology closures: uncached {uncached_seconds * 1000:6.1f}ms  "
        f"cached {cached_seconds * 1000:6.1f}ms  speedup {speedup:.1f}x"
    )
    return {
        "concepts": len(concept_ids),
        "repeats_per_round": repeats,
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "speedup": speedup,
        "results_identical": not any(
            mismatch.startswith("ontology:") for mismatch in mismatches
        ),
    }


# -- repository layer ---------------------------------------------------------


def run_repository_workload(rounds, mismatches):
    documents = [
        {
            "_id": index,
            "requirement": f"IR{index % 97}",
            "kind": "partial" if index % 3 else "unified",
            "payload": index,
        }
        for index in range(2000)
    ]
    indexed = Collection("bench")
    indexed.create_index("requirement")
    scanned = Collection("bench")
    for document in documents:
        indexed.insert(dict(document))
        scanned.insert(dict(document))
    probes = [f"IR{index % 97}" for index in range(200)]

    def lookups(collection):
        return [
            collection.find({"requirement": probe}) for probe in probes
        ]

    indexed_results = lookups(indexed)
    scanned_results = lookups(scanned)
    if indexed_results != scanned_results:
        mismatches.append("repository: indexed results differ from scan")
    if not indexed.stats["index_lookups"]:
        mismatches.append("repository: probes never touched the index")

    indexed_seconds = best_of(rounds, lambda: lookups(indexed))
    scanned_seconds = best_of(rounds, lambda: lookups(scanned))
    speedup = scanned_seconds / indexed_seconds
    print(
        f"  repository lookups: scan {scanned_seconds * 1000:6.1f}ms  "
        f"indexed {indexed_seconds * 1000:6.1f}ms  speedup {speedup:.1f}x"
    )
    return {
        "documents": len(documents),
        "probes": len(probes),
        "scan_seconds": scanned_seconds,
        "indexed_seconds": indexed_seconds,
        "speedup": speedup,
        "results_identical": not any(
            mismatch.startswith("repository:") for mismatch in mismatches
        ),
    }


# -- driver -------------------------------------------------------------------


def run_suite(sizes=SIZES, rounds=ROUNDS, headline_size=HEADLINE_SIZE):
    """Run every workload; returns ``(report, mismatches)``."""
    mismatches: list = []
    print("design-pipeline benchmark: incremental vs from-scratch")
    integrator = run_integrator_workloads(sizes, rounds, mismatches)
    evolution = run_evolution_workloads(sizes, rounds, mismatches)
    ontology = run_ontology_workload(rounds, mismatches)
    repository = run_repository_workload(rounds, mismatches)

    headline = str(headline_size)
    change_speedup = (
        integrator[headline]["change_speedup_vs_rebuild"]
        if headline in integrator
        else None
    )
    evolve_speedup = (
        evolution[headline]["evolve_speedup_vs_rebuild"]
        if headline in evolution
        else None
    )
    report = {
        "benchmark": "design pipeline: incremental updates vs from-scratch",
        "rounds": rounds,
        "timing": "best of rounds",
        "design_sizes": integrator,
        "evolution": evolution,
        "ontology": ontology,
        "repository": repository,
        "headline": {
            "design_size": headline_size,
            "incremental_change_speedup": change_speedup,
            "incremental_evolve_speedup": evolve_speedup,
            "indexed_lookup_speedup": repository["speedup"],
            "gate_incremental_change_5x": (
                change_speedup is not None and change_speedup >= 5.0
            ),
            "gate_incremental_evolve_3x": (
                evolve_speedup is not None and evolve_speedup >= 3.0
            ),
            "gate_indexed_lookup_3x": repository["speedup"] >= 3.0,
        },
        "all_results_identical": not mismatches,
    }
    return report, mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_design.json",
        help="where to write the JSON report (default: BENCH_design.json)",
    )
    options = parser.parse_args(argv)
    try:
        # Fail before the measurements, not after a minute of them.
        open(options.output, "a").close()
    except OSError as exc:
        print(f"cannot write {options.output}: {exc}", file=sys.stderr)
        return 2

    report, mismatches = run_suite()
    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {options.output}")

    if mismatches:
        for mismatch in mismatches:
            print(f"MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
