"""Flow lint rules, including the issue's three-bug acceptance scenario."""

from repro.analysis import lint
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    EtlFlow,
    Join,
    Loader,
    Projection,
    Selection,
)


class TestAcceptanceScenario:
    def test_exactly_three_diagnostics(self, acceptance):
        flow, tables = acceptance
        report = lint(flow, tables=tables)
        assert report.codes() == ["QRY101", "QRY202", "QRY302"]
        assert len(report.diagnostics) == 3
        assert not report.ok

    def test_each_finding_points_at_its_node(self, acceptance):
        flow, tables = acceptance
        report = lint(flow, tables=tables)
        (dead,) = report.by_code("QRY101")
        assert (dead.node, dead.attribute) == ("widen", "z")
        (unhashable,) = report.by_code("QRY202")
        assert (unhashable.node, unhashable.attribute) == ("match", "id")
        (never,) = report.by_code("QRY302")
        assert never.node == "impossible"

    def test_fixing_the_bugs_lints_clean(self, acceptance):
        flow, tables = acceptance
        flow.replace_node("impossible", Selection("impossible", predicate="x > 0"))
        flow.replace_node(
            "widen", DerivedAttribute("widen", output="y2", expression="y * 2")
        )
        flow.replace_node(
            "shape", Projection("shape", columns=("id", "x", "y", "y2"))
        )
        tables["b"] = [{"id": 3, "y": 5}]
        report = lint(flow, tables=tables)
        assert report.codes() == []


class TestStructuralRules:
    def test_structural_diagnostics_match_validate(self):
        flow = EtlFlow("bad")
        flow.add(Datastore("src", table="t", columns=("a",)))
        flow.add(Join("join"))
        flow.add(Loader("load", table="o"))
        flow.connect("src", "join")
        flow.connect("join", "load")
        report = lint(flow)
        assert "QRY001" in report.codes()
        # validate() is a thin wrapper: same messages, same order.
        messages = [
            d.message for d in report.diagnostics if d.code.startswith("QRY00")
        ]
        assert flow.validate() == messages

    def test_cycle_reported_once(self):
        flow = EtlFlow("cyclic")
        flow.add(Selection("a"))
        flow.add(Selection("b"))
        flow.connect("a", "b")
        flow.connect("b", "a")
        report = lint(flow)
        assert "QRY005" in report.codes()
        assert any("cycle" in d.message for d in report.by_code("QRY005"))


class TestLineageRules:
    def test_side_chain_feeding_no_loader(self):
        flow = EtlFlow("side")
        flow.chain(
            Datastore("src", table="t", columns=("a",)),
            Loader("load", table="out"),
        )
        flow.add(Datastore("src2", table="t2", columns=("b",)))
        flow.add(Selection("sel2", predicate="b > 0"))
        flow.connect("src2", "sel2")
        report = lint(flow)
        dead_feeds = report.by_code("QRY102")
        assert [d.node for d in dead_feeds] == ["src2"]
        # sel2 is a non-loader sink: that is QRY004's finding, not QRY102's.
        assert [d.node for d in report.by_code("QRY004")] == ["sel2"]


class TestTypeRules:
    def test_join_key_type_mismatch(self):
        flow = EtlFlow("mismatch")
        flow.add(Datastore("left", table="l", columns=("k", "v")))
        flow.add(Datastore("right", table="r", columns=("k2",)))
        flow.add(Join("join", left_keys=("k",), right_keys=("k2",)))
        flow.add(Loader("load", table="out"))
        flow.connect("left", "join")
        flow.connect("right", "join")
        flow.connect("join", "load")
        tables = {"l": [{"k": 1, "v": 2}], "r": [{"k2": "x"}]}
        report = lint(flow, tables=tables)
        (finding,) = report.by_code("QRY201")
        assert finding.node == "join"
        assert finding.attribute == "k"

    def test_possible_hazard_behind_a_filter(self):
        flow = EtlFlow("maybe")
        flow.chain(
            Datastore("src", table="t", columns=("id", "x")),
            Selection("sel", predicate="x > 0"),
            Aggregation(
                "agg",
                group_by=("id",),
                aggregates=(AggregationSpec("total", "SUM", "x"),),
            ),
            Loader("load", table="out"),
        )
        tables = {"t": [{"id": [1, 2], "x": 3}, {"id": 1, "x": 4}]}
        report = lint(flow, tables=tables)
        assert report.by_code("QRY202") == []
        (finding,) = report.by_code("QRY203")
        assert (finding.node, finding.attribute) == ("agg", "id")

    def test_distinct_hashes_the_whole_row(self):
        flow = EtlFlow("dedupe")
        flow.chain(
            Datastore("src", table="t", columns=("id",)),
            Distinct("uniq"),
            Loader("load", table="out"),
        )
        tables = {"t": [{"id": [1]}]}
        report = lint(flow, tables=tables)
        (finding,) = report.by_code("QRY202")
        assert finding.node == "uniq"

    def test_null_key_sibling_demotes_join_hazard(self):
        """Joins skip rows with a NULL anywhere in the key *before*
        hashing — an unhashable value riding such a row can never fail
        (the seed-262 fuzz finding)."""
        flow = EtlFlow("nullkey")
        flow.add(Datastore("left", table="l", columns=("a", "b")))
        flow.add(Datastore("right", table="r", columns=("c", "d")))
        flow.add(Join("join", left_keys=("a", "b"), right_keys=("c", "d")))
        flow.add(Loader("load", table="out"))
        flow.connect("left", "join")
        flow.connect("right", "join")
        flow.connect("join", "load")
        tables = {
            "l": [{"a": [1, 2], "b": None}, {"a": 1, "b": 2}],
            "r": [{"c": 1, "d": 2}],
        }
        report = lint(flow, tables=tables)
        assert report.by_code("QRY202") == []
        (finding,) = report.by_code("QRY203")
        assert (finding.node, finding.attribute) == ("join", "a")

    def test_propagation_failure_reported_in_place(self):
        flow = EtlFlow("typo")
        flow.chain(
            Datastore("src", table="t", columns=("x",)),
            DerivedAttribute("derive", output="y", expression="x + missing"),
            Loader("load", table="out"),
        )
        tables = {"t": [{"x": 1}]}
        report = lint(flow, tables=tables)
        (finding,) = report.by_code("QRY204")
        assert finding.node == "derive"
        assert "missing" in finding.message


class TestSatisfiabilityRules:
    def test_always_true_selection(self):
        flow = EtlFlow("noop")
        flow.chain(
            Datastore("src", table="t", columns=("x",)),
            Selection("sel", predicate="1 = 1"),
            Loader("load", table="out"),
        )
        (finding,) = lint(flow).by_code("QRY301")
        assert finding.node == "sel"

    def test_contradictory_chain_reported_downstream(self):
        flow = EtlFlow("chain")
        flow.chain(
            Datastore("src", table="t", columns=("x",)),
            Selection("wide", predicate="x > 10"),
            Selection("narrow", predicate="x < 5"),
            Loader("load", table="out"),
        )
        report = lint(flow)
        assert report.by_code("QRY302") == []
        (finding,) = report.by_code("QRY303")
        assert finding.node == "narrow"
        assert "'wide'" in finding.message

    def test_satisfiable_chain_stays_quiet(self):
        flow = EtlFlow("fine")
        flow.chain(
            Datastore("src", table="t", columns=("x",)),
            Selection("wide", predicate="x > 1"),
            Selection("narrow", predicate="x < 5"),
            Loader("load", table="out"),
        )
        report = lint(flow)
        assert report.by_code("QRY303") == []

    def test_join_breaks_the_chain(self):
        flow = EtlFlow("joined")
        flow.add(Datastore("left", table="l", columns=("x",)))
        flow.add(Datastore("right", table="r", columns=("y",)))
        flow.add(Selection("pre", predicate="x > 10"))
        flow.add(Join("join", left_keys=("x",), right_keys=("y",)))
        flow.add(Selection("post", predicate="x < 5"))
        flow.add(Loader("load", table="out"))
        flow.connect("left", "pre")
        flow.connect("pre", "join")
        flow.connect("right", "join")
        flow.connect("join", "post")
        flow.connect("post", "load")
        # The chain walk stops at the join (arity 2), so no QRY303 even
        # though pre+post contradict: the join may rename row provenance.
        assert lint(flow).by_code("QRY303") == []
