"""Unit tests for the xMD format."""

import pytest

from repro.errors import XmdFormatError
from repro.xformats import xmd

from tests.mdmodel.conftest import (
    make_part_dimension,
    make_revenue_fact,
    make_supplier_dimension,
)
from repro.mdmodel import MDSchema


def revenue_star():
    schema = MDSchema(name="demo")
    schema.add_dimension(make_part_dimension())
    schema.add_dimension(make_supplier_dimension())
    schema.add_fact(make_revenue_fact())
    return schema


class TestSerialisation:
    def test_figure3_shape(self):
        text = xmd.dumps(revenue_star())
        assert "<MDschema" in text
        assert "<facts>" in text
        assert "<name>fact_table_revenue</name>" in text
        assert "<dimensions>" in text
        assert "<name>Part</name>" in text

    def test_roundtrip_preserves_everything(self):
        schema = revenue_star()
        parsed = xmd.loads(xmd.dumps(schema))
        assert parsed.name == schema.name
        assert set(parsed.facts) == set(schema.facts)
        assert set(parsed.dimensions) == set(schema.dimensions)
        fact = parsed.fact("fact_table_revenue")
        original = schema.fact("fact_table_revenue")
        assert fact.concept == original.concept
        assert fact.requirements == original.requirements
        assert fact.links == original.links
        measure = fact.measure("revenue")
        assert measure.expression == original.measure("revenue").expression
        assert measure.aggregation == original.measure("revenue").aggregation
        assert measure.additivity == original.measure("revenue").additivity
        supplier = parsed.dimension("Supplier")
        assert set(supplier.levels) == {"Supplier", "Nation", "Region"}
        assert supplier.hierarchies[0].levels == ["Supplier", "Nation", "Region"]
        level = supplier.level("Nation")
        assert level.concept == "Nation"
        assert level.attributes[0].property == "Nation_n_name"

    def test_roundtrip_is_stable(self):
        text = xmd.dumps(revenue_star())
        assert xmd.dumps(xmd.loads(text)) == text

    def test_validation_survives_roundtrip(self):
        from repro.mdmodel.constraints import is_sound

        parsed = xmd.loads(xmd.dumps(revenue_star()))
        assert is_sound(parsed)


class TestParsingErrors:
    def test_not_xml(self):
        with pytest.raises(XmdFormatError):
            xmd.loads("nope")

    def test_wrong_root(self):
        with pytest.raises(XmdFormatError):
            xmd.loads("<cube/>")

    def test_missing_name_attribute(self):
        with pytest.raises(XmdFormatError):
            xmd.loads("<MDschema/>")

    def test_bad_scalar_type(self):
        text = (
            '<MDschema name="s"><dimensions><dimension><name>D</name>'
            "<levels><level><name>L</name><attributes><attribute>"
            "<name>a</name><type>blob</type></attribute></attributes>"
            "</level></levels><hierarchies/></dimension></dimensions>"
            "</MDschema>"
        )
        with pytest.raises(XmdFormatError):
            xmd.loads(text)

    def test_bad_additivity(self):
        text = (
            '<MDschema name="s"><facts><fact><name>F</name><measures>'
            "<measure><name>m</name><expression>x</expression>"
            "<type>decimal</type><aggregation>SUM</aggregation>"
            "<additivity>sometimes</additivity></measure></measures>"
            "<links/></fact></facts></MDschema>"
        )
        with pytest.raises(XmdFormatError):
            xmd.loads(text)

    def test_bad_aggregation(self):
        text = (
            '<MDschema name="s"><facts><fact><name>F</name><measures>'
            "<measure><name>m</name><expression>x</expression>"
            "<type>decimal</type><aggregation>MEDIAN</aggregation>"
            "<additivity>additive</additivity></measure></measures>"
            "<links/></fact></facts></MDschema>"
        )
        with pytest.raises(XmdFormatError):
            xmd.loads(text)

    def test_empty_schema_parses(self):
        parsed = xmd.loads('<MDschema name="empty"/>')
        assert parsed.name == "empty"
        assert not parsed.facts and not parsed.dimensions
