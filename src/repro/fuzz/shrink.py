"""Greedy minimisation of failing trials.

Not a full delta-debugger: a budgeted greedy loop that (a) drops flow
nodes and loader branches, (b) drops table rows, (c) drops documents
and simplifies queries — accepting a candidate only when it still fails
with the *same category* (the text before the first colon of the
oracle's description), so reduction cannot morph one bug into another.
Every candidate is validated before checking; invalid flows are simply
rejected.  The result is what lands in the regression corpus.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.fuzz.flowgen import FlowTrial
from repro.fuzz.oracle import check_flow_trial, check_query_trial
from repro.fuzz.datagen import TableSpec
from repro.fuzz.querygen import QueryTrial

Check = Callable[[object], Optional[str]]


def _category(detail: str) -> str:
    return detail.split(":", 1)[0]


class _Budget:
    def __init__(self, limit: int) -> None:
        self.left = limit

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _copy_tables(tables: List[TableSpec]) -> List[TableSpec]:
    return [
        TableSpec(
            name=table.name,
            schema=dict(table.schema),
            rows=[dict(row) for row in table.rows],
        )
        for table in tables
    ]


# -- flow trials --------------------------------------------------------------


def _prune_dead(flow) -> None:
    """Drop non-loader nodes that lost all their consumers."""
    changed = True
    while changed:
        changed = False
        for name in flow.node_names():
            if flow.node(name).kind == "Loader":
                continue
            if not flow.outputs(name):
                flow.remove_node(name)
                changed = True
                break


def _without_node(trial: FlowTrial, name: str) -> Optional[FlowTrial]:
    flow = trial.flow.copy()
    try:
        flow.remove_node(name)
        _prune_dead(flow)
    except Exception:
        return None
    if not any(node.kind == "Loader" for node in flow.nodes()):
        return None
    if flow.validate():
        return None
    # type(trial), not FlowTrial: subclasses (LintTrial) must survive
    # shrinking so the corpus encodes them under their own kind.
    return type(trial)(
        tables=trial.tables, flow=flow, seed=trial.seed, notes=trial.notes
    )


def _drop_unused_tables(trial: FlowTrial) -> FlowTrial:
    used = {
        node.table
        for node in trial.flow.nodes()
        if node.kind == "Datastore"
    }
    kept = [table for table in trial.tables if table.name in used]
    if len(kept) == len(trial.tables):
        return trial
    return type(trial)(
        tables=kept, flow=trial.flow, seed=trial.seed, notes=trial.notes
    )


def _with_rows(trial: FlowTrial, table_name: str, rows: List[dict]) -> FlowTrial:
    tables = _copy_tables(trial.tables)
    for table in tables:
        if table.name == table_name:
            table.rows = [dict(row) for row in rows]
    return type(trial)(
        tables=tables, flow=trial.flow, seed=trial.seed, notes=trial.notes
    )


def shrink_flow_trial(
    trial: FlowTrial,
    check: Check = check_flow_trial,
    budget: int = 250,
) -> FlowTrial:
    """A smaller trial failing with the same category (best effort)."""
    detail = check(trial)
    if detail is None:
        return trial
    category = _category(detail)
    budget = _Budget(budget)

    def still_fails(candidate: Optional[FlowTrial]) -> bool:
        if candidate is None or not budget.spend():
            return False
        result = check(candidate)
        return result is not None and _category(result) == category

    improved = True
    while improved and budget.left > 0:
        improved = False
        # Drop whole nodes (loaders take their dead branch with them).
        for name in list(trial.flow.node_names()):
            operation = trial.flow.node(name)
            if operation.kind == "Datastore":
                continue
            candidate = _without_node(trial, name)
            if still_fails(candidate):
                trial = _drop_unused_tables(candidate)
                improved = True
                break
        if improved:
            continue
        # Halve, then nibble, table rows.
        for table in trial.tables:
            rows = table.rows
            if not rows:
                continue
            half = len(rows) // 2
            for chunk in ([], rows[:half], rows[half:]):
                if len(chunk) == len(rows):
                    continue
                candidate = _with_rows(trial, table.name, chunk)
                if still_fails(candidate):
                    trial = candidate
                    improved = True
                    break
            if improved:
                break
            for index in range(len(rows)):
                reduced = rows[:index] + rows[index + 1:]
                candidate = _with_rows(trial, table.name, reduced)
                if still_fails(candidate):
                    trial = candidate
                    improved = True
                    break
            if improved:
                break
    return _drop_unused_tables(trial)


# -- query trials --------------------------------------------------------------


def _query_candidates(query) -> List[object]:
    """Strictly-simpler variants of a query, most aggressive first."""
    if query is None:
        return []
    candidates: List[object] = [None]
    if not isinstance(query, dict):
        return candidates
    for key in list(query):
        if len(query) > 1:
            trimmed = dict(query)
            del trimmed[key]
            candidates.append(trimmed)
        condition = query[key]
        if key in ("$and", "$or"):
            candidates.extend(condition)
        elif key == "$not":
            candidates.append(condition)
        elif isinstance(condition, dict) and len(condition) > 1:
            for op in condition:
                slimmer = dict(condition)
                del slimmer[op]
                candidates.append({**query, key: slimmer})
        elif isinstance(condition, dict):
            for op, expected in condition.items():
                if isinstance(expected, list) and len(expected) > 1:
                    for index in range(len(expected)):
                        candidates.append(
                            {
                                **query,
                                key: {
                                    op: expected[:index]
                                    + expected[index + 1:]
                                },
                            }
                        )
    return candidates


def shrink_query_trial(
    trial: QueryTrial,
    check: Check = check_query_trial,
    budget: int = 250,
) -> QueryTrial:
    detail = check(trial)
    if detail is None:
        return trial
    category = _category(detail)
    budget = _Budget(budget)

    def variant(**changes) -> QueryTrial:
        fields = {
            "documents": [dict(document) for document in trial.documents],
            "query": trial.query,
            "sort_key": trial.sort_key,
            "limit": trial.limit,
            "indexes": list(trial.indexes),
            "session": trial.session,
            "decoys": {
                session: [dict(document) for document in documents]
                for session, documents in trial.decoys.items()
            },
            "seed": trial.seed,
            "notes": trial.notes,
        }
        fields.update(changes)
        return QueryTrial(**fields)

    def still_fails(candidate: QueryTrial) -> bool:
        if not budget.spend():
            return False
        result = check(candidate)
        return result is not None and _category(result) == category

    improved = True
    while improved and budget.left > 0:
        improved = False
        for index in range(len(trial.documents)):
            documents = (
                trial.documents[:index] + trial.documents[index + 1:]
            )
            candidate = variant(documents=documents)
            if still_fails(candidate):
                trial = candidate
                improved = True
                break
        if improved:
            continue
        if trial.limit is not None and still_fails(variant(limit=None)):
            trial = variant(limit=None)
            improved = True
            continue
        if trial.sort_key is not None and still_fails(
            variant(sort_key=None)
        ):
            trial = variant(sort_key=None)
            improved = True
            continue
        for index in range(len(trial.indexes)):
            indexes = trial.indexes[:index] + trial.indexes[index + 1:]
            candidate = variant(indexes=indexes)
            if still_fails(candidate):
                trial = candidate
                improved = True
                break
        if improved:
            continue
        for dropped in sorted(trial.decoys):
            decoys = {
                session: documents
                for session, documents in trial.decoys.items()
                if session != dropped
            }
            candidate = variant(decoys=decoys)
            if still_fails(candidate):
                trial = candidate
                improved = True
                break
        if improved:
            continue
        if trial.session and still_fails(variant(session="")):
            trial = variant(session="")
            improved = True
            continue
        for simpler in _query_candidates(trial.query):
            candidate = variant(query=simpler)
            if still_fails(candidate):
                trial = candidate
                improved = True
                break
    return trial
