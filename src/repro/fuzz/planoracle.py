"""The planner-equivalence oracle: planned versus unplanned execution.

Every rewrite the cost-based planner performs (selection/projection
pushdown, join reordering, build-side flips, fusion vetoes) must be
invisible in the results.  For each seed a random flow runs in
``columnar`` mode (unplanned) and in ``planned`` mode, and the two
outcomes must agree:

* **Row multisets per target.**  Reordering joins legitimately changes
  row *order*, so unlike the mode-parity oracle this one compares
  per-target multisets, not sequences.  Floats are quantised to nine
  significant digits first: SUM/AVERAGE accumulate in a different
  order after a reorder, and bit-identical float sums are not part of
  the planner's contract — nine digits is far tighter than any real
  divergence and far looser than accumulation-order noise.  The
  quantised tag keeps ``int``/``float``/``bool`` distinguishable.
* **Errors exactly.**  A failing flow must fail identically
  (``TypeName: message``) in both modes — the planner bails to the
  identity plan rather than rewrite a flow it cannot prove safe, so
  deliberate error flows (join collisions, union incompatibilities)
  still reproduce their exact error.

Trials are generated *division-free* (``allow_division=False``) and
without unhashable injection: those failures are data-position-
dependent, which no value-preserving rewrite can promise to preserve —
the planner refuses to move non-total expressions, so fuzzing them here
would only test the bail-out path, which the plain flow kind already
covers.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Optional, Tuple

from repro.engine.executor import Executor
from repro.fuzz.datagen import LooseDatabase, make_tables
from repro.fuzz.flowgen import FlowTrial, build_flow

Outcome = Tuple[str, object]


class PlanTrial(FlowTrial):
    """A flow trial checked for planned/unplanned equivalence."""


def _quantize(value):
    """A comparison key that absorbs accumulation-order float noise.

    Floats are tagged and rounded to nine significant digits; every
    other type (including bool, which is not an int here) compares by
    ``repr``, so type confusions stay visible.
    """
    if isinstance(value, float) and not isinstance(value, bool):
        return ("float", format(value, ".9g"))
    return (type(value).__name__, repr(value))


def quantized_multiset(rows) -> Counter:
    """An order-insensitive, float-tolerant fingerprint of a table."""
    return Counter(
        tuple(sorted((name, _quantize(value)) for name, value in row.items()))
        for row in rows
    )


def execute_plan_trial(mode: str, trial: FlowTrial) -> Outcome:
    """Run the trial on a fresh database; quantised-multiset outcome."""
    database = LooseDatabase.from_specs(trial.tables)
    executor = Executor(database, mode=mode)
    try:
        executor.execute(trial.flow)
    except Exception as exc:  # error parity is part of the contract
        return ("error", f"{type(exc).__name__}: {exc}")
    targets = sorted(
        {node.table for node in trial.flow.nodes() if node.kind == "Loader"}
    )
    return (
        "ok",
        {
            target: quantized_multiset(database.scan(target).rows)
            for target in targets
        },
    )


def check_plan_trial(trial: FlowTrial) -> Optional[str]:
    """``None`` when planned and unplanned agree, else a description.

    The category (text before the first colon) is ``plan-divergence``
    so the shrinker preserves the failure class while minimising.
    """
    unplanned = execute_plan_trial("columnar", trial)
    planned = execute_plan_trial("planned", trial)
    if unplanned == planned:
        return None
    unplanned_kind, unplanned_value = unplanned
    planned_kind, planned_value = planned
    if unplanned_kind != planned_kind or unplanned_kind == "error":
        return (
            f"plan-divergence: columnar -> {unplanned_kind} "
            f"({unplanned_value!r}), planned -> {planned_kind} "
            f"({planned_value!r})"
        )
    for target in sorted(unplanned_value):
        before = unplanned_value[target]
        after = planned_value.get(target, Counter())
        if before != after:
            missing = before - after
            extra = after - before
            return (
                f"plan-divergence: table {target!r}: "
                f"{sum(missing.values())} row(s) lost "
                f"{list(missing)[:2]!r}, {sum(extra.values())} row(s) "
                f"gained {list(extra)[:2]!r}"
            )
    return "plan-divergence: outcomes differ"


def build_plan_trial(seed: int) -> PlanTrial:
    """The deterministic planner trial for a seed.

    Same recipe as :func:`repro.fuzz.flowgen.build_flow_trial` on an
    independent RNG stream, but division-free and without unhashable
    injection (see the module docstring for why).
    """
    rng = random.Random(f"plan:{seed}")
    tables = make_tables(rng)
    flow = build_flow(rng, tables, allow_division=False)
    return PlanTrial(tables=tables, flow=flow, seed=seed, notes=[])


def shrink_plan_trial(trial: FlowTrial, budget: int = 250) -> FlowTrial:
    from repro.fuzz.shrink import shrink_flow_trial

    return shrink_flow_trial(trial, check=check_plan_trial, budget=budget)
