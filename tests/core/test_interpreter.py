"""Tests for the Requirements Interpreter (Figure 4's design process)."""

import pytest

from repro.core.interpreter import Interpreter
from repro.core.requirements import RequirementBuilder
from repro.errors import InterpretationError, RequirementError
from repro.mdmodel import AggregationFunction
from repro.mdmodel.constraints import is_sound
from repro.sources import retail, tpch

from .conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)


@pytest.fixture(scope="module")
def interpreter():
    return Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())


@pytest.fixture(scope="module")
def revenue_design(interpreter):
    return interpreter.interpret(build_revenue_requirement())


class TestMapping:
    def test_fact_concept_is_lineitem(self, revenue_design):
        assert revenue_design.mapping.fact_concept == "Lineitem"

    def test_dimension_concepts(self, revenue_design):
        assert revenue_design.mapping.dimension_concepts() == [
            "Part",
            "Supplier",
        ]

    def test_slicer_concepts(self, revenue_design):
        assert revenue_design.mapping.slicer_concepts() == ["Nation"]

    def test_slicer_path_goes_through_customer(self, revenue_design):
        # "ordered from Spain": the customer's nation, not the supplier's.
        path = revenue_design.mapping.path_to("Nation")
        assert path.concepts() == ["Lineitem", "Orders", "Customer", "Nation"]

    def test_netprofit_fact_is_lineitem(self, interpreter):
        # Measures span Lineitem and Partsupp; Lineitem reaches Partsupp
        # over a to-one path, so it is the sound fact choice.
        design = interpreter.interpret(build_netprofit_requirement())
        assert design.mapping.fact_concept == "Lineitem"

    def test_mixed_granularity_rejected(self, interpreter):
        # Customer's balance per supplier name: Customer cannot reach
        # Supplier over to-one paths and vice versa -> unsound.
        requirement = (
            RequirementBuilder("BAD")
            .measure("bal", "Customer_c_acctbal")
            .per("Region_r_name")
            .build()
        )
        # Customer reaches Region (to-one), so this one is fine...
        interpreter.interpret(requirement)
        requirement = (
            RequirementBuilder("BAD2")
            .measure("bal", "Customer_c_acctbal")
            .per("Part_p_name")
            .build()
        )
        # ...but nothing reaches both Customer (measure) and Part
        # at customer granularity.
        with pytest.raises(InterpretationError):
            interpreter.interpret(requirement)

    def test_invalid_requirement_rejected_early(self, interpreter):
        requirement = (
            RequirementBuilder("BAD")
            .measure("m", "No_such_property")
            .per("Part_p_name")
            .build()
        )
        with pytest.raises(RequirementError):
            interpreter.interpret(requirement)


class TestMDGeneration:
    def test_fact_named_after_measures(self, revenue_design):
        assert revenue_design.md_schema.has_fact("fact_table_revenue")

    def test_measure_carries_aggregation(self, revenue_design):
        fact = revenue_design.md_schema.fact("fact_table_revenue")
        assert fact.measure("revenue").aggregation is AggregationFunction.AVG

    def test_dimensions_match_paper(self, revenue_design):
        schema = revenue_design.md_schema
        assert set(schema.dimensions) == {"Part", "Supplier"}
        fact = schema.fact("fact_table_revenue")
        assert fact.linked_dimensions() == ["Part", "Supplier"]

    def test_supplier_dimension_complemented_with_geography(self, revenue_design):
        supplier = revenue_design.md_schema.dimension("Supplier")
        assert set(supplier.levels) == {"Supplier", "Nation", "Region"}
        assert supplier.hierarchies[0].levels == ["Supplier", "Nation", "Region"]

    def test_levels_carry_provenance_and_columns(self, revenue_design):
        supplier = revenue_design.md_schema.dimension("Supplier")
        level = supplier.level("Supplier")
        assert level.concept == "Supplier"
        assert level.attributes[0].name == "s_name"
        assert level.attributes[0].property == "Supplier_s_name"

    def test_schema_is_sound(self, revenue_design):
        assert is_sound(revenue_design.md_schema)

    def test_requirement_traceability(self, revenue_design):
        assert revenue_design.md_schema.all_requirements() == {"IR1"}

    def test_degenerate_dimension_for_fact_property(self, interpreter):
        design = interpreter.interpret(build_quantity_requirement())
        schema = design.md_schema
        assert "l_shipmode" in schema.dimensions
        degenerate = schema.dimension("l_shipmode")
        assert list(degenerate.levels) == ["l_shipmode"]
        assert degenerate.level("l_shipmode").concept == "Lineitem"

    def test_no_complement_mode(self):
        interpreter = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings(), complement=False
        )
        design = interpreter.interpret(build_revenue_requirement())
        assert set(design.md_schema.dimension("Supplier").levels) == {"Supplier"}


class TestEtlGeneration:
    def test_flow_is_valid_and_propagates(self, revenue_design):
        assert revenue_design.etl_flow.validate() == []

    def test_extractions_shared_per_table(self, revenue_design):
        names = revenue_design.etl_flow.node_names()
        extractions = [n for n in names if n.startswith("EXTRACTION_")]
        assert len(extractions) == len(set(extractions))
        # nation is needed by both the slicer path and the Supplier
        # dimension branch, yet appears once.
        assert extractions.count("EXTRACTION_nation") == 1

    def test_fact_branch_shape(self, revenue_design):
        flow = revenue_design.etl_flow
        agg = flow.node("AGG_fact_table_revenue")
        assert set(agg.group_by) == {"p_name", "s_name"}
        assert agg.aggregates[0].function == "AVERAGE"
        assert flow.node("LOAD_fact_table_revenue").table == "fact_table_revenue"

    def test_slicer_becomes_selection_with_source_columns(self, revenue_design):
        flow = revenue_design.etl_flow
        selection = flow.node("SELECTION_IR1_1")
        assert selection.predicate == "n_name = 'SPAIN'"

    def test_measure_expression_substituted(self, revenue_design):
        derive = revenue_design.etl_flow.node("DERIVE_revenue")
        assert derive.expression == "l_extendedprice * (1 - l_discount)"

    def test_dimension_branches_load_dim_tables(self, revenue_design):
        flow = revenue_design.etl_flow
        loaders = {
            node.table for node in flow.nodes() if node.kind == "Loader"
        }
        assert loaders == {"fact_table_revenue", "dim_Part", "dim_Supplier"}

    def test_dimension_branch_ends_in_distinct(self, revenue_design):
        flow = revenue_design.etl_flow
        assert flow.inputs("LOAD_dim_Part") == ["DISTINCT_dim_Part"]

    def test_supplier_dimension_joins_geography(self, revenue_design):
        flow = revenue_design.etl_flow
        project_inputs = flow.inputs("PROJECT_dim_Supplier")
        assert project_inputs[0].startswith("JOIN_dim_Supplier")

    def test_requirements_recorded_on_flow(self, revenue_design):
        assert revenue_design.etl_flow.requirements == {"IR1"}


class TestEndToEndExecution:
    def test_generated_flow_runs_and_star_answers_the_requirement(self, revenue_design):
        from repro.engine import Database, Executor
        from repro.sources import tpch as tpch_module

        database = Database()
        database.load_source(
            tpch_module.schema(), tpch_module.generate(0.3, seed=42)
        )
        Executor(database).execute(revenue_design.etl_flow)
        assert database.has_table("fact_table_revenue")
        assert database.has_table("dim_Supplier")
        # The fact table is already at the requested granularity.
        fact_rows = database.scan("fact_table_revenue").rows
        manual = _manual_revenue(database)
        got = {
            (row["p_name"], row["s_name"]): row["revenue"] for row in fact_rows
        }
        assert got == pytest.approx(manual)

    def test_retail_domain_interprets_too(self):
        interpreter = Interpreter(
            retail.ontology(), retail.schema(), retail.mappings()
        )
        requirement = (
            RequirementBuilder("R1", "sales per category and country")
            .measure("sales", "TicketLine_amount", "SUM")
            .per("Product_category", "Store_country")
            .build()
        )
        design = interpreter.interpret(requirement)
        assert design.mapping.fact_concept == "TicketLine"
        assert set(design.md_schema.dimensions) == {"Product", "Store"}
        from repro.engine import Database, Executor

        database = Database()
        database.load_source(retail.schema(), retail.generate(0.4, seed=1))
        stats = Executor(database).execute(design.etl_flow)
        assert stats.loaded["fact_table_sales"] > 0


def _manual_revenue(database):
    """Recompute IR1 (AVG revenue per part/supplier, customer in Spain)."""
    nations = {
        row["n_nationkey"]: row["n_name"] for row in database.scan("nation").rows
    }
    customers = {
        row["c_custkey"]: nations[row["c_nationkey"]]
        for row in database.scan("customer").rows
    }
    orders = {
        row["o_orderkey"]: customers[row["o_custkey"]]
        for row in database.scan("orders").rows
    }
    parts = {row["p_partkey"]: row["p_name"] for row in database.scan("part").rows}
    suppliers = {
        row["s_suppkey"]: row["s_name"] for row in database.scan("supplier").rows
    }
    sums = {}
    counts = {}
    for row in database.scan("lineitem").rows:
        if orders[row["l_orderkey"]] != "SPAIN":
            continue
        key = (parts[row["l_partkey"]], suppliers[row["l_suppkey"]])
        revenue = row["l_extendedprice"] * (1 - row["l_discount"])
        sums[key] = sums.get(key, 0.0) + revenue
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}
