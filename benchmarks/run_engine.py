"""Engine-core benchmark runner: legacy interpreter vs compiled columnar.

Runs the TPC-H executor workloads (the S1 revenue flow and the S2
integrated/partial flows built from ``benchmarks/_workloads.py``) at
several scale factors in BOTH executor modes, plus the A1-equivalence
micro-workload, and writes ``BENCH_engine.json`` with both timings.
It also compares unplanned columnar execution against the cost-based
``planned`` mode on join-order-sensitive flows (selection pushdown,
join reordering, build-side choice), gated on quantised row-multiset
equivalence, and serial columnar execution against the chunk-partitioned
``parallel`` mode on a scan-heavy revenue workload — sweeping worker
counts over both worker pools (``thread`` and ``process``) — gated on
**exact** row-multiset equivalence (the parallel engine promises
byte-identical results, so no quantisation is tolerated).

The runner is also the equivalence gate for the compiled columnar
engine: after every workload it compares the loaded warehouse tables of
the two modes **row-set-wise** (as multisets of rows, order ignored)
and exits non-zero on any disagreement — a benchmark number is only
reported for results that are known identical.

Usage::

    python -m benchmarks.run_engine [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import Counter

try:
    import repro  # noqa: F401  (needs PYTHONPATH=src or an install)
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )

from repro.engine import Database, Executor, TableDef
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Datastore,
    DerivedAttribute,
    Join,
    Loader,
    Selection,
)
from repro.expressions import ScalarType
from repro.fuzz.planoracle import quantized_multiset

from benchmarks.bench_a1_equivalence import (
    consolidate_pairwise,
    reordered_pair,
)
from benchmarks.bench_s2_integration_etl import build_flows
from benchmarks.conftest import make_database

SCALE_FACTORS = (0.25, 0.5, 1.0, 2.0)
ROUNDS = 5
MODES = ("legacy", "columnar")

#: Scale factor of the planner scenarios — larger than the mode-parity
#: sweep so join-order effects dominate fixed per-execution overheads.
PLANNER_SCALE_FACTOR = 4.0

#: The parallel scenario runs at the same large scale, sweeping worker
#: counts across BOTH worker pools (threads and processes); the ≥2x
#: speedup gate is enforced per configuration only when the machine has
#: at least that many cores (a 1-CPU box cannot speed anything up, and
#: a waived gate is recorded in the report rather than silently passed).
PARALLEL_SCALE_FACTOR = 4.0
PARALLEL_WORKER_SWEEP = (2, 4)
PARALLEL_POOLS = ("thread", "process")
PARALLEL_SPEEDUP_TARGET = 2.0


def loaded_tables(flow):
    return sorted(
        {node.table for node in flow.nodes() if node.kind == "Loader"}
    )


def row_multiset(database, tables):
    """{table: multiset of rows} — order-insensitive, duplicate-exact."""
    return {
        table: Counter(
            tuple(sorted(row.items())) for row in database.scan(table).rows
        )
        for table in tables
    }


def quantized_snapshot(database, tables):
    """{table: quantised multiset} — tolerant of accumulation-order
    float noise, which join reordering legitimately introduces."""
    return {
        table: quantized_multiset(database.scan(table).rows)
        for table in tables
    }


def time_flows(database, flows, mode, snapshot=row_multiset, **executor_options):
    """Best-of-rounds wall-clock of executing ``flows`` in ``mode``.

    Returns (seconds, snapshot of every loaded table).  The flows'
    loaders run in replace mode, so repeated rounds are idempotent; one
    warmup round removes one-time costs (parse/compile caches, columnar
    scan pivots, worker-pool spin-up) from the measurement.
    """
    tables = sorted({t for flow in flows for t in loaded_tables(flow)})
    with Executor(database, mode=mode, **executor_options) as executor:
        for flow in flows:  # warmup
            executor.execute(flow)
        best = float("inf")
        for __ in range(ROUNDS):
            started = time.perf_counter()
            for flow in flows:
                executor.execute(flow)
            best = min(best, time.perf_counter() - started)
    return best, snapshot(database, tables)


def compare_snapshots(name, snapshots, mismatches, modes=("legacy", "columnar")):
    baseline, candidate = snapshots[modes[0]], snapshots[modes[1]]
    for table in sorted(set(baseline) | set(candidate)):
        if baseline.get(table) != candidate.get(table):
            mismatches.append(f"{name}: table {table!r} differs across modes")


def run_tpch_workloads(mismatches):
    unified, partials = build_flows(6)
    workloads = {
        "s1_revenue": [partials[0]],
        "s2_integrated": [unified],
        "s2_partials": partials,
    }
    results = {}
    for scale_factor in SCALE_FACTORS:
        database = make_database(scale_factor)
        per_workload = {}
        for name, flows in workloads.items():
            timings, snapshots = {}, {}
            for mode in MODES:
                timings[mode], snapshots[mode] = time_flows(
                    database, flows, mode
                )
            compare_snapshots(f"SF {scale_factor} {name}", snapshots, mismatches)
            per_workload[name] = {
                "legacy_seconds": timings["legacy"],
                "columnar_seconds": timings["columnar"],
                "speedup": timings["legacy"] / timings["columnar"],
                "results_identical": not any(
                    m.startswith(f"SF {scale_factor} {name}")
                    for m in mismatches
                ),
            }
            print(
                f"  SF {scale_factor:<5} {name:<14} "
                f"legacy {timings['legacy'] * 1000:8.1f}ms  "
                f"columnar {timings['columnar'] * 1000:8.1f}ms  "
                f"speedup {per_workload[name]['speedup']:.2f}x"
            )
        results[str(scale_factor)] = per_workload
    return results


def planner_join_order_flow(nation_key):
    """A join-order-sensitive flow, written in its worst order.

    As authored, every lineitem row is joined against the (wide) part
    table before the selective supplier filter applies.  The planner
    pushes the ``s_nationkey`` selection below both joins and reorders
    the chain so the filtered supplier join runs first, shrinking the
    expensive wide join from the full lineitem table to the few rows
    that survive the filter.  All three source payloads reach the
    loader, so column pruning cannot erase the difference — the speedup
    is the join order.
    """
    flow = EtlFlow("planner_join_order")
    flow.add(Datastore("src_lineitem", table="lineitem"))
    flow.add(Datastore("src_part", table="part"))
    flow.add(Datastore("src_supplier", table="supplier"))
    flow.add(
        Join("j_part", left_keys=("l_partkey",), right_keys=("p_partkey",))
    )
    flow.add(
        Join("j_supp", left_keys=("l_suppkey",), right_keys=("s_suppkey",))
    )
    flow.add(
        Selection("only_nation", predicate=f"s_nationkey = {nation_key}")
    )
    flow.add(
        DerivedAttribute(
            "revenue",
            output="revenue",
            expression="l_extendedprice * (1 - l_discount)",
        )
    )
    flow.add(
        Loader("load_out", table="bench_planner_join_order", mode="replace")
    )
    flow.connect("src_lineitem", "j_part")
    flow.connect("src_part", "j_part")
    flow.connect("j_part", "j_supp")
    flow.connect("src_supplier", "j_supp")
    flow.connect("j_supp", "only_nation")
    flow.connect("only_nation", "revenue")
    flow.connect("revenue", "load_out")
    return flow


def planner_build_side_flow():
    """A join that hashes its huge input as authored: supplier is the
    probe side, lineitem the build side.  The planner flips the sides
    so the hash table is built over suppliers instead."""
    flow = EtlFlow("planner_build_side")
    flow.add(Datastore("src_supplier", table="supplier"))
    flow.add(Datastore("src_lineitem", table="lineitem"))
    flow.add(
        Join("j_supp", left_keys=("s_suppkey",), right_keys=("l_suppkey",))
    )
    flow.add(
        Loader("load_out", table="bench_planner_build_side", mode="replace")
    )
    flow.connect("src_supplier", "j_supp")
    flow.connect("src_lineitem", "j_supp")
    flow.connect("j_supp", "load_out")
    return flow


def run_planner_comparison(mismatches):
    """Unplanned columnar vs cost-based-planned on planner-sensitive
    flows, with quantised-multiset equivalence gating."""
    database = make_database(PLANNER_SCALE_FACTOR)
    nation_counts = Counter(
        row["s_nationkey"] for row in database.scan("supplier").rows
    )
    nation_key = nation_counts.most_common(1)[0][0]
    scenarios = {
        "join_order": planner_join_order_flow(nation_key),
        "build_side": planner_build_side_flow(),
    }
    results = {}
    for name, flow in scenarios.items():
        timings, snapshots = {}, {}
        for mode in ("columnar", "planned"):
            timings[mode], snapshots[mode] = time_flows(
                database, [flow], mode, snapshot=quantized_snapshot
            )
        compare_snapshots(
            f"planner {name}",
            snapshots,
            mismatches,
            modes=("columnar", "planned"),
        )
        executor = Executor(database, mode="planned")
        executor.execute(flow)
        results[name] = {
            "columnar_seconds": timings["columnar"],
            "planned_seconds": timings["planned"],
            "speedup": timings["columnar"] / timings["planned"],
            "results_identical": not any(
                m.startswith(f"planner {name}") for m in mismatches
            ),
            "decisions": list(executor.last_plan.decisions),
        }
        print(
            f"  SF {PLANNER_SCALE_FACTOR:<5} {name:<14} "
            f"unplanned {timings['columnar'] * 1000:8.1f}ms  "
            f"planned {timings['planned'] * 1000:8.1f}ms  "
            f"speedup {results[name]['speedup']:.2f}x"
        )
    return {
        "modes": ["columnar", "planned"],
        "scale_factor": PLANNER_SCALE_FACTOR,
        "scenarios": results,
        "join_order_speedup": results["join_order"]["speedup"],
    }


def parallel_revenue_flow():
    """The scan-heavy parallel scenario: a fused lineitem chain feeding
    a supplier join.

    Selection, derive and the join probe all partition over row chunks;
    the supplier-side hash build stays serial (it is tiny).  Everything
    downstream of the scan is per-row work, so this is the shape the
    partitioned engine is built for.
    """
    flow = EtlFlow("parallel_revenue")
    flow.add(Datastore("src_lineitem", table="lineitem"))
    flow.add(Datastore("src_supplier", table="supplier"))
    flow.add(Selection("bulk_only", predicate="l_quantity >= 10"))
    flow.add(
        DerivedAttribute(
            "revenue",
            output="revenue",
            expression="l_extendedprice * (1 - l_discount)",
        )
    )
    flow.add(
        Join("j_supp", left_keys=("l_suppkey",), right_keys=("s_suppkey",))
    )
    flow.add(
        Loader("load_out", table="bench_parallel_revenue", mode="replace")
    )
    flow.connect("src_lineitem", "bulk_only")
    flow.connect("bulk_only", "revenue")
    flow.connect("revenue", "j_supp")
    flow.connect("src_supplier", "j_supp")
    flow.connect("j_supp", "load_out")
    return flow


def run_parallel_comparison(mismatches):
    """Serial columnar vs chunk-partitioned parallel execution,
    sweeping worker counts across both worker pools.

    The equivalence gate is exact (unquantised) row multisets — the
    parallel engine's contract is byte-identical output, for the thread
    pool and the process pool alike.  The ≥2x speedup gate is enforced
    per configuration only when the host actually has as many cores as
    workers; on smaller machines the honest numbers are still recorded,
    with the waiver spelled out in the report.
    """
    database = make_database(PARALLEL_SCALE_FACTOR)
    flow = parallel_revenue_flow()
    serial_seconds, serial_snapshot = time_flows(database, [flow], "columnar")
    cpu_count = os.cpu_count() or 1
    print(
        f"  SF {PARALLEL_SCALE_FACTOR:<5} {'revenue':<14} "
        f"serial {serial_seconds * 1000:8.1f}ms  ({cpu_count} core(s))"
    )
    pools = {}
    for pool in PARALLEL_POOLS:
        per_workers = {}
        for workers in PARALLEL_WORKER_SWEEP:
            label = f"parallel revenue [{pool} x{workers}]"
            seconds, snapshot = time_flows(
                database,
                [flow],
                "parallel",
                workers=workers,
                pool=pool,
                parallel_row_threshold=0,
            )
            compare_snapshots(
                label,
                {"columnar": serial_snapshot, "parallel": snapshot},
                mismatches,
                modes=("columnar", "parallel"),
            )
            speedup = serial_seconds / seconds
            gate_enforced = cpu_count >= workers
            entry = {
                "workers": workers,
                "parallel_seconds": seconds,
                "speedup": speedup,
                "results_identical": not any(
                    m.startswith(label) for m in mismatches
                ),
                "speedup_gate_enforced": gate_enforced,
            }
            if not gate_enforced:
                entry["speedup_gate_waiver"] = (
                    f"host has {cpu_count} core(s) for {workers} workers; "
                    f"a worker pool cannot beat serial execution without "
                    f"cores to run on, so the {PARALLEL_SPEEDUP_TARGET}x "
                    f"gate is waived"
                )
            elif speedup < PARALLEL_SPEEDUP_TARGET:
                mismatches.append(
                    f"{label}: speedup {speedup:.2f}x is below the "
                    f"{PARALLEL_SPEEDUP_TARGET}x target with {cpu_count} "
                    f"cores for {workers} workers"
                )
            per_workers[str(workers)] = entry
            print(
                f"  SF {PARALLEL_SCALE_FACTOR:<5} "
                f"{pool + ' x' + str(workers):<14} "
                f"serial {serial_seconds * 1000:8.1f}ms  "
                f"parallel {seconds * 1000:8.1f}ms  "
                f"speedup {speedup:.2f}x"
                f"{'' if gate_enforced else '  (gate waived)'}"
            )
        pools[pool] = per_workers
    return {
        "modes": ["columnar", "parallel"],
        "scale_factor": PARALLEL_SCALE_FACTOR,
        "cpu_count": cpu_count,
        "columnar_seconds": serial_seconds,
        "worker_sweep": list(PARALLEL_WORKER_SWEEP),
        "speedup_target": PARALLEL_SPEEDUP_TARGET,
        "pools": pools,
        "results_identical": not any(
            m.startswith("parallel revenue") for m in mismatches
        ),
    }


def a1_database():
    database = Database()
    database.create_table(
        TableDef(
            "t",
            {
                "a": ScalarType.STRING,
                "b": ScalarType.STRING,
                "c": ScalarType.STRING,
            },
        )
    )
    database.insert_many(
        "t",
        [
            {"a": "x", "b": "y", "c": "1"},
            {"a": "x", "b": "z", "c": "2"},
            {"a": "q", "b": "y", "c": "3"},
        ],
    )
    return database


def run_a1_equivalence(mismatches):
    """The A1 workload: reordered-then-consolidated flows must load the
    same tables under both executor modes."""
    flows = reordered_pair()
    unified, __ = consolidate_pairwise(flows, align=True)
    tables = loaded_tables(unified)
    snapshots = {}
    for mode in MODES:
        database = a1_database()
        Executor(database, mode=mode).execute(unified)
        snapshots[mode] = row_multiset(database, tables)
    compare_snapshots("A1", snapshots, mismatches)
    identical = not any(m.startswith("A1") for m in mismatches)
    print(f"  A1 equivalence workload: {'identical' if identical else 'MISMATCH'}")
    return {"tables": tables, "results_identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="where to write the JSON report (default: BENCH_engine.json)",
    )
    options = parser.parse_args(argv)
    try:
        # Fail before the measurements, not after two minutes of them.
        open(options.output, "a").close()
    except OSError as exc:
        print(f"cannot write {options.output}: {exc}", file=sys.stderr)
        return 2

    mismatches: list = []
    print("engine-core benchmark: legacy interpreter vs compiled columnar")
    by_scale_factor = run_tpch_workloads(mismatches)
    print("planner benchmark: unplanned columnar vs cost-based planned")
    planner = run_planner_comparison(mismatches)
    print("parallel benchmark: serial columnar vs chunk-partitioned")
    parallel = run_parallel_comparison(mismatches)
    a1 = run_a1_equivalence(mismatches)

    largest = str(max(SCALE_FACTORS))
    report = {
        "benchmark": "engine-core: legacy row interpreter vs compiled columnar",
        "modes": list(MODES),
        "rounds": ROUNDS,
        "timing": "best of rounds, after one warmup execution",
        "scale_factors": by_scale_factor,
        "planner_comparison": planner,
        "parallel_comparison": parallel,
        "a1_equivalence": a1,
        "largest_scale_factor": largest,
        "speedup_at_largest_scale_factor": {
            name: by_scale_factor[largest][name]["speedup"]
            for name in by_scale_factor[largest]
        },
        "all_results_identical": not mismatches,
    }
    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {options.output}")

    if mismatches:
        for mismatch in mismatches:
            print(f"MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
