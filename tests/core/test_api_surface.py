"""Direct tests for small public API surfaces covered only indirectly."""

import pytest

from repro import Quarry, QuarryError
from repro.sources import tpch

from .conftest import build_revenue_requirement


class TestQuarrySurface:
    def test_partial_design_lookup(self):
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        quarry.add_requirement(build_revenue_requirement())
        partial = quarry.partial_design("IR1")
        assert partial.requirement.id == "IR1"
        assert partial.md_schema.has_fact("fact_table_revenue")
        with pytest.raises(QuarryError):
            quarry.partial_design("ghost")

    def test_deployer_platform_listing(self):
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        assert set(quarry.deployer.platforms()) == {
            "postgres", "sqlite", "pdi", "sql", "pig", "native",
        }


class TestMappingSurface:
    def test_mapped_enumerations(self):
        mappings = tpch.mappings()
        assert "Lineitem" in mappings.mapped_concepts()
        assert "Part_p_name" in mappings.mapped_properties()
        assert mappings.table_of("Part") == "part"

    def test_schema_has_column(self):
        schema = tpch.schema()
        assert schema.table("part").has_column("p_name")
        assert not schema.table("part").has_column("ghost")


class TestDatagenSurface:
    def test_sample_and_shuffle_deterministic(self):
        from repro.sources.datagen import DataGenerator

        first = DataGenerator(5)
        second = DataGenerator(5)
        options = list(range(20))
        assert first.sample(options, 5) == second.sample(options, 5)
        assert first.shuffle(options) == second.shuffle(options)
        # shuffle returns a copy
        assert options == list(range(20))

    def test_phone_and_phrase_shape(self):
        from repro.sources.datagen import DataGenerator

        gen = DataGenerator(1)
        assert gen.phone().count("-") == 3
        assert len(gen.phrase(3).split()) == 3

    def test_boolean_probability_bounds(self):
        from repro.sources.datagen import DataGenerator

        gen = DataGenerator(1)
        assert not any(gen.boolean(0.0) for __ in range(50))
        assert all(gen.boolean(1.0) for __ in range(50))


class TestFlowDisconnect:
    def test_disconnect_removes_edge(self):
        from repro.errors import EtlError
        from repro.etlmodel import Datastore, EtlFlow, Loader

        flow = EtlFlow("t")
        flow.add(Datastore("a", table="t", columns=("x",)))
        flow.add(Loader("b", table="o"))
        flow.connect("a", "b")
        flow.disconnect("a", "b")
        assert flow.inputs("b") == []
        with pytest.raises(EtlError):
            flow.disconnect("a", "b")


class TestDdlHelpers:
    def test_dimension_table_name_and_columns(self):
        from repro.core.deployer.ddl import (
            create_table_statement,
            dimension_columns,
            dimension_table_name,
        )
        from repro.expressions import ScalarType
        from repro.mdmodel import Dimension, Hierarchy, Level, LevelAttribute

        dimension = Dimension("Part")
        dimension.add_level(Level(
            "Part",
            attributes=[
                LevelAttribute("p_name", ScalarType.STRING),
                LevelAttribute("p_size", ScalarType.INTEGER),
            ],
        ))
        dimension.add_hierarchy(Hierarchy("h", ["Part"]))
        assert dimension_table_name(dimension) == "dim_Part"
        columns = dimension_columns(dimension)
        assert list(columns) == ["p_name", "p_size"]
        statement = create_table_statement("t", columns, primary_key=["p_name"])
        assert statement.startswith("CREATE TABLE t (")
        assert "PRIMARY KEY( p_name )" in statement
