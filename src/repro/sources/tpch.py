"""The TPC-H sample domain — the paper's running example.

Provides the four artefacts Quarry needs for a domain:

* :func:`schema` — the eight-table TPC-H relational schema,
* :func:`ontology` — a domain ontology capturing the sources (the graph
  shown in the top-left of Figure 2),
* :func:`mappings` — source schema mappings binding each concept and
  datatype property to its table/column,
* :func:`generate` — a deterministic, scale-factor-parameterised data
  generator (a laptop-scale stand-in for dbgen).

Ontology ids follow the paper's convention visible in Figure 4
(``Part_p_name``, ``Lineitem_l_extendedprice``, …): datatype property ids
are ``<Concept>_<column>``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.expressions.types import ScalarType
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology
from repro.sources.datagen import DataGenerator
from repro.sources.mappings import SourceMappings
from repro.sources.schema import ForeignKey, SourceSchema, make_table

INT = ScalarType.INTEGER
DEC = ScalarType.DECIMAL
STR = ScalarType.STRING
DATE = ScalarType.DATE

_REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

_NATION_NAMES = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("SPAIN", 3),
]

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_ORDER_STATUS = ["O", "F", "P"]
_SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_PART_TYPES = [
    "ECONOMY ANODIZED STEEL", "STANDARD POLISHED BRASS", "SMALL PLATED COPPER",
    "PROMO BURNISHED NICKEL", "MEDIUM BRUSHED TIN", "LARGE POLISHED STEEL",
]
_PART_BRANDS = [f"Brand#{digit1}{digit2}" for digit1 in range(1, 6) for digit2 in range(1, 6)]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG"]


def schema() -> SourceSchema:
    """The TPC-H relational schema (column subset relevant to the demo)."""
    source = SourceSchema(name="tpch", description="TPC-H operational sources")
    source.add_table(make_table(
        "region",
        [("r_regionkey", INT), ("r_name", STR), ("r_comment", STR)],
        primary_key=["r_regionkey"],
    ))
    source.add_table(make_table(
        "nation",
        [("n_nationkey", INT), ("n_name", STR), ("n_regionkey", INT),
         ("n_comment", STR)],
        primary_key=["n_nationkey"],
        foreign_keys=[ForeignKey(("n_regionkey",), "region", ("r_regionkey",))],
    ))
    source.add_table(make_table(
        "supplier",
        [("s_suppkey", INT), ("s_name", STR), ("s_address", STR),
         ("s_nationkey", INT), ("s_phone", STR), ("s_acctbal", DEC)],
        primary_key=["s_suppkey"],
        foreign_keys=[ForeignKey(("s_nationkey",), "nation", ("n_nationkey",))],
    ))
    source.add_table(make_table(
        "customer",
        [("c_custkey", INT), ("c_name", STR), ("c_address", STR),
         ("c_nationkey", INT), ("c_phone", STR), ("c_acctbal", DEC),
         ("c_mktsegment", STR)],
        primary_key=["c_custkey"],
        foreign_keys=[ForeignKey(("c_nationkey",), "nation", ("n_nationkey",))],
    ))
    source.add_table(make_table(
        "part",
        [("p_partkey", INT), ("p_name", STR), ("p_mfgr", STR),
         ("p_brand", STR), ("p_type", STR), ("p_size", INT),
         ("p_container", STR), ("p_retailprice", DEC)],
        primary_key=["p_partkey"],
    ))
    source.add_table(make_table(
        "partsupp",
        [("ps_partkey", INT), ("ps_suppkey", INT), ("ps_availqty", INT),
         ("ps_supplycost", DEC)],
        primary_key=["ps_partkey", "ps_suppkey"],
        foreign_keys=[
            ForeignKey(("ps_partkey",), "part", ("p_partkey",)),
            ForeignKey(("ps_suppkey",), "supplier", ("s_suppkey",)),
        ],
    ))
    source.add_table(make_table(
        "orders",
        [("o_orderkey", INT), ("o_custkey", INT), ("o_orderstatus", STR),
         ("o_totalprice", DEC), ("o_orderdate", DATE), ("o_orderpriority", STR),
         ("o_clerk", STR), ("o_shippriority", INT)],
        primary_key=["o_orderkey"],
        foreign_keys=[ForeignKey(("o_custkey",), "customer", ("c_custkey",))],
    ))
    source.add_table(make_table(
        "lineitem",
        [("l_orderkey", INT), ("l_linenumber", INT), ("l_partkey", INT),
         ("l_suppkey", INT), ("l_quantity", INT), ("l_extendedprice", DEC),
         ("l_discount", DEC), ("l_tax", DEC), ("l_returnflag", STR),
         ("l_linestatus", STR), ("l_shipdate", DATE), ("l_shipmode", STR)],
        primary_key=["l_orderkey", "l_linenumber"],
        foreign_keys=[
            ForeignKey(("l_orderkey",), "orders", ("o_orderkey",)),
            ForeignKey(("l_partkey", "l_suppkey"), "partsupp",
                       ("ps_partkey", "ps_suppkey")),
        ],
    ))
    source.validate()
    return source


def ontology() -> Ontology:
    """The TPC-H domain ontology of Figure 2 (concepts + vocabulary)."""
    builder = (
        OntologyBuilder("tpch", description="TPC-H domain ontology")
        .concept("Region", label="Region")
        .concept("Nation", label="Nation")
        .concept("Customer", label="Customer")
        .concept("Orders", label="Order")
        .concept("Supplier", label="Supplier")
        .concept("Part", label="Part")
        .concept("Partsupp", label="Part supply")
        .concept("Lineitem", label="Line item")
    )
    attributes = [
        ("Region_r_name", "Region", STR, "region name"),
        ("Nation_n_name", "Nation", STR, "nation name"),
        ("Customer_c_name", "Customer", STR, "customer name"),
        ("Customer_c_mktsegment", "Customer", STR, "market segment"),
        ("Customer_c_acctbal", "Customer", DEC, "account balance"),
        ("Orders_o_orderdate", "Orders", DATE, "order date"),
        ("Orders_o_orderpriority", "Orders", STR, "order priority"),
        ("Orders_o_orderstatus", "Orders", STR, "order status"),
        ("Orders_o_totalprice", "Orders", DEC, "order total price"),
        ("Supplier_s_name", "Supplier", STR, "supplier name"),
        ("Supplier_s_acctbal", "Supplier", DEC, "supplier balance"),
        ("Part_p_name", "Part", STR, "part name"),
        ("Part_p_brand", "Part", STR, "part brand"),
        ("Part_p_type", "Part", STR, "part type"),
        ("Part_p_size", "Part", INT, "part size"),
        ("Part_p_retailprice", "Part", DEC, "retail price"),
        ("Partsupp_ps_availqty", "Partsupp", INT, "available quantity"),
        ("Partsupp_ps_supplycost", "Partsupp", DEC, "supply cost"),
        ("Lineitem_l_quantity", "Lineitem", INT, "quantity"),
        ("Lineitem_l_extendedprice", "Lineitem", DEC, "extended price"),
        ("Lineitem_l_discount", "Lineitem", DEC, "discount"),
        ("Lineitem_l_tax", "Lineitem", DEC, "tax"),
        ("Lineitem_l_shipdate", "Lineitem", DATE, "ship date"),
        ("Lineitem_l_shipmode", "Lineitem", STR, "ship mode"),
        ("Lineitem_l_returnflag", "Lineitem", STR, "return flag"),
    ]
    for prop_id, concept, scalar_type, label in attributes:
        builder.attribute(prop_id, concept, scalar_type, label=label)
    relationships = [
        ("Nation_region", "Nation", "Region", "in region"),
        ("Customer_nation", "Customer", "Nation", "customer nation"),
        ("Orders_customer", "Orders", "Customer", "placed by"),
        ("Supplier_nation", "Supplier", "Nation", "supplier nation"),
        ("Partsupp_part", "Partsupp", "Part", "supplied part"),
        ("Partsupp_supplier", "Partsupp", "Supplier", "supplied by"),
        ("Lineitem_orders", "Lineitem", "Orders", "of order"),
        ("Lineitem_partsupp", "Lineitem", "Partsupp", "of part supply"),
    ]
    for prop_id, domain, range_, label in relationships:
        builder.relationship(prop_id, domain, range_, "N-1", label=label)
    return builder.build()


def mappings() -> SourceMappings:
    """Source schema mappings binding the ontology onto the schema."""
    result = SourceMappings(ontology_name="tpch", source_name="tpch")
    concept_tables = [
        ("Region", "region", ("r_regionkey",)),
        ("Nation", "nation", ("n_nationkey",)),
        ("Customer", "customer", ("c_custkey",)),
        ("Orders", "orders", ("o_orderkey",)),
        ("Supplier", "supplier", ("s_suppkey",)),
        ("Part", "part", ("p_partkey",)),
        ("Partsupp", "partsupp", ("ps_partkey", "ps_suppkey")),
        ("Lineitem", "lineitem", ("l_orderkey", "l_linenumber")),
    ]
    for concept, table, keys in concept_tables:
        result.map_concept(concept, table, keys)
    domain_ontology = ontology()
    for prop in domain_ontology.datatype_properties():
        # Ids are <Concept>_<column>, so the column is the suffix.
        column = prop.id[len(prop.concept) + 1 :]
        result.map_property(prop.id, column)
    return result


def generate(scale_factor: float = 1.0, seed: int = 20150323) -> Dict[str, List[dict]]:
    """Generate deterministic TPC-H data at a micro scale factor.

    ``scale_factor`` 1.0 yields roughly 4.5k lineitem rows — enough to
    make integrated-versus-separate ETL timings meaningful on a laptop
    while keeping the suite fast.  Same seed, same data.
    """
    gen = DataGenerator(seed)
    counts = _row_counts(scale_factor)
    data: Dict[str, List[dict]] = {}

    data["region"] = [
        {"r_regionkey": key, "r_name": name, "r_comment": gen.phrase()}
        for key, name in enumerate(_REGION_NAMES)
    ]
    data["nation"] = [
        {
            "n_nationkey": key,
            "n_name": name,
            "n_regionkey": region_key,
            "n_comment": gen.phrase(),
        }
        for key, (name, region_key) in enumerate(_NATION_NAMES)
    ]
    nation_keys = [row["n_nationkey"] for row in data["nation"]]

    data["supplier"] = [
        {
            "s_suppkey": key,
            "s_name": gen.code("Supplier", key),
            "s_address": gen.phrase(2),
            "s_nationkey": gen.choice(nation_keys),
            "s_phone": gen.phone(),
            "s_acctbal": gen.decimal(-999.99, 9999.99),
        }
        for key in range(1, counts["supplier"] + 1)
    ]
    data["customer"] = [
        {
            "c_custkey": key,
            "c_name": gen.code("Customer", key),
            "c_address": gen.phrase(2),
            "c_nationkey": gen.choice(nation_keys),
            "c_phone": gen.phone(),
            "c_acctbal": gen.decimal(-999.99, 9999.99),
            "c_mktsegment": gen.choice(_SEGMENTS),
        }
        for key in range(1, counts["customer"] + 1)
    ]
    data["part"] = [
        {
            "p_partkey": key,
            "p_name": gen.phrase(2),
            "p_mfgr": f"Manufacturer#{gen.integer(1, 5)}",
            "p_brand": gen.choice(_PART_BRANDS),
            "p_type": gen.choice(_PART_TYPES),
            "p_size": gen.integer(1, 50),
            "p_container": gen.choice(_CONTAINERS),
            "p_retailprice": gen.decimal(900.0, 2000.0),
        }
        for key in range(1, counts["part"] + 1)
    ]

    supplier_keys = [row["s_suppkey"] for row in data["supplier"]]
    partsupp_rows = []
    for part_row in data["part"]:
        for supp_key in gen.sample(
            supplier_keys, min(2, len(supplier_keys))
        ):
            partsupp_rows.append(
                {
                    "ps_partkey": part_row["p_partkey"],
                    "ps_suppkey": supp_key,
                    "ps_availqty": gen.integer(1, 9999),
                    "ps_supplycost": gen.decimal(1.0, 1000.0),
                }
            )
    data["partsupp"] = partsupp_rows

    customer_keys = [row["c_custkey"] for row in data["customer"]]
    data["orders"] = [
        {
            "o_orderkey": key,
            "o_custkey": gen.zipf_choice(customer_keys),
            "o_orderstatus": gen.choice(_ORDER_STATUS),
            "o_totalprice": gen.decimal(1000.0, 400000.0),
            "o_orderdate": gen.date(),
            "o_orderpriority": gen.choice(_PRIORITIES),
            "o_clerk": gen.code("Clerk", gen.integer(1, 100), width=6),
            "o_shippriority": 0,
        }
        for key in range(1, counts["orders"] + 1)
    ]

    lineitem_rows = []
    for order_row in data["orders"]:
        for line_number in range(1, gen.integer(1, counts["max_lines"]) + 1):
            partsupp_row = gen.choice(partsupp_rows)
            quantity = gen.integer(1, 50)
            price = round(quantity * gen.decimal(900.0, 1100.0), 2)
            lineitem_rows.append(
                {
                    "l_orderkey": order_row["o_orderkey"],
                    "l_linenumber": line_number,
                    "l_partkey": partsupp_row["ps_partkey"],
                    "l_suppkey": partsupp_row["ps_suppkey"],
                    "l_quantity": quantity,
                    "l_extendedprice": price,
                    "l_discount": gen.decimal(0.0, 0.10),
                    "l_tax": gen.decimal(0.0, 0.08),
                    "l_returnflag": gen.choice(["R", "A", "N"]),
                    "l_linestatus": gen.choice(["O", "F"]),
                    "l_shipdate": gen.date(),
                    "l_shipmode": gen.choice(_SHIP_MODES),
                }
            )
    data["lineitem"] = lineitem_rows
    return data


def _row_counts(scale_factor: float) -> Dict[str, int]:
    """Table cardinalities at a micro scale factor (dbgen ratios, scaled)."""
    return {
        "supplier": max(2, int(10 * scale_factor)),
        "customer": max(5, int(150 * scale_factor)),
        "part": max(5, int(200 * scale_factor)),
        "orders": max(10, int(500 * scale_factor)),
        "max_lines": 5,
    }
