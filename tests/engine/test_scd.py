"""The SCD merge operator, pinned against all four execution modes.

The kernel (:func:`repro.engine.scd.scd_merge`) is one pure function
shared by every mode, so dimension history must be *byte-identical* —
same row order, same window values — whether the flow runs legacy,
columnar, planned or parallel.  The semantics tests drive two
consecutive loads (initial + changed members) and check the pygrametl
contract: type1 overwrites in place, type2 closes the current row and
opens a versioned one, and a third load with unchanged members is a
no-op.
"""

import datetime

import pytest

from repro.engine import Database, Executor, TableDef
from repro.errors import ExecutionError
from repro.etlmodel import Datastore, EtlFlow, Loader
from repro.etlmodel.ops import SCDType, SCDUpdate
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING

MODES = ("legacy", "columnar", "planned", "parallel")

DATE = datetime.date.fromisoformat


def scd_flow(policy=SCDType.TYPE2, effective_date="2024-01-01"):
    flow = EtlFlow(name="scd")
    flow.add(Datastore("DATASTORE_staging", table="staging"))
    flow.add(
        SCDUpdate(
            "SCD_dim_supplier",
            table="dim_supplier",
            policy=policy,
            business_keys=("s_key",),
            effective_date=effective_date,
        )
    )
    flow.add(Loader("LOAD_dim_supplier", table="dim_supplier", mode="replace"))
    flow.connect("DATASTORE_staging", "SCD_dim_supplier")
    flow.connect("SCD_dim_supplier", "LOAD_dim_supplier")
    return flow


def staging_db(rows):
    database = Database()
    database.create_table(
        TableDef(name="staging", columns={"s_key": INT, "s_nation": STR})
    )
    for row in rows:
        database.insert("staging", dict(row))
    return database


INITIAL = [
    {"s_key": 1, "s_nation": "SPAIN"},
    {"s_key": 2, "s_nation": "FRANCE"},
]
CHANGED = [
    {"s_key": 1, "s_nation": "PERU"},  # descriptor change
    {"s_key": 2, "s_nation": "FRANCE"},  # unchanged
    {"s_key": 3, "s_nation": "KENYA"},  # new member
]


def run_two_loads(mode, policy=SCDType.TYPE2):
    database = staging_db(INITIAL)
    Executor(database, mode=mode).execute(scd_flow(policy, "2024-01-01"))
    database.truncate("staging")
    for row in CHANGED:
        database.insert("staging", dict(row))
    Executor(database, mode=mode).execute(scd_flow(policy, "2024-06-15"))
    return database.scan("dim_supplier").rows


class TestType2Semantics:
    def test_change_closes_and_versions(self):
        rows = run_two_loads("columnar")
        by_key = {}
        for row in rows:
            by_key.setdefault(row["s_key"], []).append(row)
        closed, reopened = by_key[1]
        assert closed["s_nation"] == "SPAIN"
        assert closed["scd_version"] == 1
        assert closed["scd_valid_to"] == DATE("2024-06-15")
        assert closed["scd_is_current"] is False
        assert reopened["s_nation"] == "PERU"
        assert reopened["scd_version"] == 2
        assert reopened["scd_valid_from"] == DATE("2024-06-15")
        assert reopened["scd_valid_to"] is None
        assert reopened["scd_is_current"] is True

    def test_unchanged_member_keeps_open_row(self):
        rows = [row for row in run_two_loads("columnar") if row["s_key"] == 2]
        assert len(rows) == 1
        assert rows[0]["scd_version"] == 1
        assert rows[0]["scd_valid_from"] == DATE("2024-01-01")
        assert rows[0]["scd_is_current"] is True

    def test_new_member_opens_at_version_one(self):
        rows = [row for row in run_two_loads("columnar") if row["s_key"] == 3]
        assert rows == [
            {
                "s_key": 3,
                "s_nation": "KENYA",
                "scd_version": 1,
                "scd_valid_from": DATE("2024-06-15"),
                "scd_valid_to": None,
                "scd_is_current": True,
            }
        ]

    def test_identical_reload_is_a_noop(self):
        database = staging_db(INITIAL)
        executor = Executor(database)
        executor.execute(scd_flow(SCDType.TYPE2, "2024-01-01"))
        first = [dict(row) for row in database.scan("dim_supplier").rows]
        executor.execute(scd_flow(SCDType.TYPE2, "2024-06-15"))
        assert database.scan("dim_supplier").rows == first


class TestType1Semantics:
    def test_overwrites_in_place_without_history(self):
        rows = run_two_loads("columnar", policy=SCDType.TYPE1)
        assert rows == [
            {"s_key": 1, "s_nation": "PERU"},
            {"s_key": 2, "s_nation": "FRANCE"},
            {"s_key": 3, "s_nation": "KENYA"},
        ]


class TestModeParity:
    @pytest.mark.parametrize("mode", MODES[1:])
    def test_history_is_byte_identical_across_modes(self, mode):
        reference = run_two_loads(MODES[0])
        assert run_two_loads(mode) == reference

    @pytest.mark.parametrize("mode", MODES[1:])
    def test_type1_is_byte_identical_across_modes(self, mode):
        reference = run_two_loads(MODES[0], policy=SCDType.TYPE1)
        assert run_two_loads(mode, policy=SCDType.TYPE1) == reference

    @pytest.mark.parametrize("mode", MODES)
    def test_bad_effective_date_fails_identically(self, mode):
        database = staging_db(INITIAL)
        with pytest.raises(ExecutionError, match="not an ISO date"):
            Executor(database, mode=mode).execute(
                scd_flow(SCDType.TYPE2, "junk")
            )


class TestPointInTime:
    def test_windows_reconstruct_any_date(self):
        """The validity windows answer as-of queries: each date between
        loads sees exactly one version of each member."""
        rows = run_two_loads("columnar")

        def as_of(date):
            return {
                row["s_key"]: row["s_nation"]
                for row in rows
                if row["scd_valid_from"] <= date
                and (
                    row["scd_valid_to"] is None
                    or date < row["scd_valid_to"]
                )
            }

        assert as_of(DATE("2024-03-01")) == {1: "SPAIN", 2: "FRANCE"}
        assert as_of(DATE("2024-07-01")) == {
            1: "PERU",
            2: "FRANCE",
            3: "KENYA",
        }
