"""Small helpers over :mod:`xml.etree.ElementTree`.

Centralises pretty-printing and the "required child" access pattern so
the format modules raise uniform, information-rich errors.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Type

from repro.errors import FormatError


def child(element: ET.Element, tag: str, error: Type[FormatError]) -> ET.Element:
    """The unique required child; raises ``error`` when missing."""
    found = element.find(tag)
    if found is None:
        raise error(f"<{element.tag}> is missing required child <{tag}>")
    return found


def child_text(
    element: ET.Element, tag: str, error: Type[FormatError]
) -> str:
    """Text content of a required child (empty string when self-closed)."""
    found = child(element, tag, error)
    return found.text or ""


def optional_text(element: ET.Element, tag: str) -> Optional[str]:
    found = element.find(tag)
    if found is None:
        return None
    return found.text or ""


def attribute(
    element: ET.Element, name: str, error: Type[FormatError]
) -> str:
    """A required attribute value."""
    value = element.get(name)
    if value is None:
        raise error(f"<{element.tag}> is missing required attribute {name!r}")
    return value


def sub(parent: ET.Element, tag: str, text: Optional[str] = None, **attributes) -> ET.Element:
    """Create a child element, optionally with text and attributes."""
    element = ET.SubElement(parent, tag, {k: str(v) for k, v in attributes.items()})
    if text is not None:
        element.text = text
    return element


def parse_document(text: str, root_tag: str, error: Type[FormatError]) -> ET.Element:
    """Parse XML text and check the root tag."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise error(f"malformed XML: {exc}") from exc
    if root.tag != root_tag:
        raise error(f"expected root <{root_tag}>, found <{root.tag}>")
    return root


def render(root: ET.Element) -> str:
    """Pretty-print an element tree with 2-space indentation."""
    _indent(root, 0)
    return ET.tostring(root, encoding="unicode") + "\n"


def _indent(element: ET.Element, depth: int) -> None:
    pad = "\n" + "  " * depth
    children = list(element)
    if children:
        if element.text is None or not element.text.strip():
            element.text = pad + "  "
        for index, node in enumerate(children):
            _indent(node, depth + 1)
            tail_pad = pad + "  " if index + 1 < len(children) else pad
            if node.tail is None or not node.tail.strip():
                node.tail = tail_pad
