"""S2 (MD side) — structural design complexity of integrated schemas.

The demo uses structural design complexity as the MD quality factor.
Expected shapes:

* the integrated schema is strictly simpler than the naive union of the
  partial stars (conformed dimensions are counted once),
* the saving grows with the number of requirements,
* integration keeps the schema sound and all requirements satisfiable.
"""

import pytest

from repro.core.integrator import MDIntegrator
from repro.core.interpreter import Interpreter
from repro.mdmodel import MDSchema
from repro.mdmodel.complexity import score
from repro.mdmodel.constraints import is_sound
from repro.sources import tpch

from benchmarks._workloads import requirement_corpus


@pytest.fixture(scope="module")
def partial_schemas():
    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    return [
        interpreter.interpret(requirement).md_schema
        for requirement in requirement_corpus(12)
    ]


def integrate(partials):
    integrator = MDIntegrator()
    unified = MDSchema(name="unified")
    for partial in partials:
        unified = integrator.integrate(unified, partial).schema
    return unified


@pytest.mark.parametrize("count", [2, 6, 12])
def test_md_integration_speed(benchmark, partial_schemas, count):
    benchmark.group = f"S2 md N={count}"
    unified = benchmark(lambda: integrate(partial_schemas[:count]))
    assert is_sound(unified)


@pytest.mark.parametrize("count", [2, 6, 12])
def test_shape_integrated_simpler_than_union(partial_schemas, count):
    unified = integrate(partial_schemas[:count])
    naive = sum(score(partial) for partial in partial_schemas[:count])
    assert score(unified) < naive


def test_shape_saving_grows_with_n(partial_schemas):
    savings = []
    for count in (2, 6, 12):
        unified = integrate(partial_schemas[:count])
        naive = sum(score(partial) for partial in partial_schemas[:count])
        savings.append(naive - score(unified))
    assert savings[0] < savings[1] < savings[2]


def test_shape_conformed_dimensions_shared(partial_schemas):
    unified = integrate(partial_schemas[:12])
    # Part appears in many requirements but exists once.
    part_dims = [name for name in unified.dimensions if name.startswith("Part")]
    assert len(part_dims) == 1
    # ... and several facts link it.
    linked = sum(
        1
        for fact in unified.facts.values()
        if any(link.dimension == "Part" for link in fact.links)
    )
    assert linked >= 3
