"""Apache Pig Latin export of ETL flows.

§2.5 names Apache PigLatin as one of the external notations the
metadata layer's plug-in parsers support.  This exporter renders an xLM
flow as a Pig Latin script: one relation definition per operation, in
topological order, with a ``STORE`` per loader.

The translation targets classic Pig idioms:

* ``Datastore``  -> ``LOAD '<table>' USING PigStorage() AS (...)``
* ``Selection``  -> ``FILTER ... BY <predicate>``
* ``Projection``/``Extraction`` -> ``FOREACH ... GENERATE col, ...``
* ``Join``       -> ``JOIN left BY (...), right BY (...)``
* ``Aggregation``-> ``GROUP`` + ``FOREACH ... GENERATE`` with aggregates
* ``Distinct``   -> ``DISTINCT``
* ``Union``      -> ``UNION``
* ``Sort``       -> ``ORDER ... BY``
* ``Loader``     -> ``STORE ... INTO '<table>'``

Pig aliases must be identifiers; node names qualify already.
"""

from __future__ import annotations

from typing import List

from repro.errors import DeploymentError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    Loader,
    Operation,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.expressions import ast, parse

_PIG_AGGREGATES = {
    "SUM": "SUM",
    "AVERAGE": "AVG",
    "MIN": "MIN",
    "MAX": "MAX",
    "COUNT": "COUNT",
}


def generate(flow: EtlFlow) -> str:
    """Render a flow as a Pig Latin script."""
    lines: List[str] = [f"-- Pig Latin export of flow '{flow.name}'"]
    if flow.requirements:
        lines.append(
            f"-- satisfies requirements: {', '.join(sorted(flow.requirements))}"
        )
    lines.append("")
    for name in flow.topological_order():
        lines.extend(_statement(flow, flow.node(name)))
    return "\n".join(lines) + "\n"


def _statement(flow: EtlFlow, operation: Operation) -> List[str]:
    inputs = flow.inputs(operation.name)
    alias = operation.name
    if isinstance(operation, Datastore):
        schema = (
            ", ".join(f"{column}" for column in operation.columns)
            if operation.columns
            else ""
        )
        as_clause = f" AS ({schema})" if schema else ""
        return [
            f"{alias} = LOAD '{operation.table}' USING PigStorage()"
            f"{as_clause};"
        ]
    if isinstance(operation, (Extraction, Projection)):
        columns = ", ".join(operation.columns)
        return [f"{alias} = FOREACH {inputs[0]} GENERATE {columns};"]
    if isinstance(operation, Selection):
        predicate = _pig_expression(parse(operation.predicate))
        return [f"{alias} = FILTER {inputs[0]} BY {predicate};"]
    if isinstance(operation, Join):
        left_keys = ", ".join(operation.left_keys)
        right_keys = ", ".join(operation.right_keys)
        kind = " LEFT OUTER" if operation.join_type == "left" else ""
        return [
            f"{alias} = JOIN {inputs[0]} BY ({left_keys}){kind}, "
            f"{inputs[1]} BY ({right_keys});"
        ]
    if isinstance(operation, Aggregation):
        group_alias = f"{alias}_grouped"
        if operation.group_by:
            keys = ", ".join(operation.group_by)
            group_line = f"{group_alias} = GROUP {inputs[0]} BY ({keys});"
            key_refs = [f"group.{column}" for column in operation.group_by]
        else:
            group_line = f"{group_alias} = GROUP {inputs[0]} ALL;"
            key_refs = []
        outputs = list(key_refs)
        for spec in operation.aggregates:
            function = _PIG_AGGREGATES.get(spec.function)
            if function is None:
                raise DeploymentError(
                    f"no Pig aggregate for {spec.function!r}"
                )
            outputs.append(
                f"{function}({inputs[0]}.{spec.input}) AS {spec.output}"
            )
        generate_line = (
            f"{alias} = FOREACH {group_alias} GENERATE "
            f"{', '.join(outputs)};"
        )
        return [group_line, generate_line]
    if isinstance(operation, DerivedAttribute):
        expression = _pig_expression(parse(operation.expression))
        return [
            f"{alias} = FOREACH {inputs[0]} GENERATE *, "
            f"{expression} AS {operation.output};"
        ]
    if isinstance(operation, Rename):
        # Pig renames via FOREACH..GENERATE; columns not listed are
        # dropped, so only the renamed columns survive here — the
        # generated flows never rely on passthrough across a Rename.
        renames = ", ".join(f"{old} AS {new}" for old, new in operation.renaming)
        return [
            f"-- rename: {renames}",
            f"{alias} = FOREACH {inputs[0]} GENERATE {renames};",
        ]
    if isinstance(operation, Distinct):
        return [f"{alias} = DISTINCT {inputs[0]};"]
    if isinstance(operation, UnionOp):
        return [f"{alias} = UNION {inputs[0]}, {inputs[1]};"]
    if isinstance(operation, Sort):
        keys = ", ".join(f"{key} ASC" for key in operation.keys)
        return [f"{alias} = ORDER {inputs[0]} BY {keys};"]
    if isinstance(operation, SurrogateKey):
        return [
            f"{alias} = RANK {inputs[0]} BY "
            f"{', '.join(operation.business_keys)} DENSE;",
        ]
    if isinstance(operation, Loader):
        return [
            f"STORE {inputs[0]} INTO '{operation.table}' USING PigStorage();"
        ]
    raise DeploymentError(
        f"operation kind {operation.kind!r} has no Pig rendering"
    )


_PIG_OPERATORS = {
    "=": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "%": "%",
    "and": "AND",
    "or": "OR",
}


def _pig_expression(node: ast.Expression) -> str:
    """Render an expression AST in Pig Latin syntax."""
    if isinstance(node, ast.Literal):
        value = node.value
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            escaped = value.replace("'", "\\'")
            return f"'{escaped}'"
        import datetime

        if isinstance(value, datetime.date):
            return f"ToDate('{value.isoformat()}')"
        return repr(value)
    if isinstance(node, ast.Attribute):
        return node.name
    if isinstance(node, ast.UnaryOp):
        inner = _pig_expression(node.operand)
        if node.operator == "not":
            return f"NOT ({inner})"
        return f"-({inner})"
    if isinstance(node, ast.BinaryOp):
        left = _pig_expression(node.left)
        right = _pig_expression(node.right)
        if node.operator == "in":
            return f"{left} IN {right}"
        return f"({left} {_PIG_OPERATORS[node.operator]} {right})"
    if isinstance(node, ast.ValueList):
        return f"({', '.join(_pig_expression(item) for item in node.items)})"
    if isinstance(node, ast.FunctionCall):
        arguments = ", ".join(
            _pig_expression(argument) for argument in node.arguments
        )
        return f"{node.name.upper()}({arguments})"
    raise DeploymentError(f"cannot render {node!r} in Pig Latin")
