"""Quickstart: the paper's running example, end to end (Figures 1 & 4).

Takes the Figure-4 information requirement — *analyze the average
revenue per part and supplier name, for orders coming from Spain* —
through the whole Quarry lifecycle on the TPC-H domain:

1. elicit: suggest analytical perspectives around the Lineitem focus,
2. interpret: translate the requirement into partial MD + ETL designs,
3. show the xRQ / xMD / xLM documents exchanged between components,
4. deploy natively and run an OLAP query against the resulting star.

Run with::

    python examples/quickstart.py
"""

from repro import Quarry, RequirementBuilder
from repro.engine import Database, OlapQuery, query_star
from repro.sources import tpch
from repro.xformats import xlm, xmd, xrq


def main() -> None:
    print("=== Quarry quickstart: TPC-H revenue analysis ===\n")
    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())

    # -- 1. Requirements Elicitor (Figure 2) -----------------------------
    elicitor = quarry.elicitor()
    print("Focus concept suggestions (fact candidates):")
    for suggestion in elicitor.suggest_facts(limit=3):
        print(f"  {suggestion.element_id:<10} score={suggestion.score:>5.1f}  "
              f"({suggestion.reason})")
    print("\nDimension suggestions for focus 'Lineitem':")
    for suggestion in elicitor.suggest_dimensions("Lineitem", limit=5):
        print(f"  {suggestion.element_id:<10} score={suggestion.score:>5.1f}")

    # -- 2. The Figure-4 requirement --------------------------------------
    requirement = (
        RequirementBuilder(
            "IR1",
            "Analyze the average revenue per part and supplier name, "
            "for orders coming from Spain",
        )
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "AVERAGE",
        )
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )
    print("\nxRQ document (excerpt):")
    print(_head(xrq.dumps(requirement), 14))

    # -- 3. Interpret + integrate ------------------------------------------
    report = quarry.add_requirement(requirement)
    partial = report.partial
    print("Fact concept chosen:", partial.mapping.fact_concept)
    print("Slicer path:",
          " -> ".join(partial.mapping.path_to("Nation").concepts()))

    print("\nxMD document (excerpt):")
    print(_head(xmd.dumps(partial.md_schema), 12))
    print("xLM document (excerpt):")
    print(_head(xlm.dumps(partial.etl_flow), 12))

    # -- 4. Deploy and query -------------------------------------------------
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(scale_factor=0.5))
    result = quarry.deploy("native", source_database=database)
    print("Deployment loaded rows per table:", result.stats.loaded)

    answer = query_star(
        database,
        OlapQuery(
            fact_table="fact_table_revenue",
            group_by=["s_name"],
            aggregates=[("AVERAGE", "revenue", "avg_revenue")],
        ),
    )
    print("\nAverage revenue per supplier (orders from Spain):")
    for row in answer.rows[:8]:
        print(f"  {row['s_name']:<22} {row['avg_revenue']:>12.2f}")
    print("\nDone: the star answers the requirement it was designed from.")


def _head(text: str, lines: int) -> str:
    return "\n".join(text.splitlines()[:lines]) + "\n  ...\n"


if __name__ == "__main__":
    main()
