"""A3 — scalability of incremental accommodation (§1's motivation).

"BI systems require automated means for efficiently adapting a physical
DW design to frequent changes of business needs."  Two measurements:

* the time to accommodate the N-th requirement into an existing design
  of N-1 requirements (incremental step) stays far below re-designing
  everything from scratch,
* the incremental step time grows slowly with design size.
"""

import time

import pytest

from repro import Quarry
from repro.sources import tpch

from benchmarks._workloads import ROW_COUNTS, requirement_corpus


def fresh_quarry():
    return Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )


def build_design(count):
    quarry = fresh_quarry()
    for requirement in requirement_corpus(count):
        quarry.add_requirement(requirement)
    return quarry


@pytest.mark.parametrize("existing", [4, 9, 14])
def test_incremental_step(benchmark, existing):
    """Time to accommodate one more requirement into a design of size N."""
    corpus = requirement_corpus(existing + 1)
    benchmark.group = "A3 accommodate one requirement"
    benchmark.name = f"into N={existing}"

    def setup():
        quarry = build_design(existing)
        return (quarry, corpus[existing]), {}

    def step(quarry, requirement):
        return quarry.add_requirement(requirement)

    report = benchmark.pedantic(step, setup=setup, rounds=5)
    assert report.action == "added"


@pytest.mark.parametrize("count", [5, 10, 15])
def test_full_redesign(benchmark, count):
    """Baseline: time to redesign the whole warehouse from scratch."""
    benchmark.group = "A3 full redesign"
    benchmark.name = f"N={count}"
    quarry = benchmark(lambda: build_design(count))
    assert len(quarry.requirements()) == count


def test_shape_incremental_beats_redesign():
    """Adding requirement 15 is much cheaper than redoing all 15."""

    def timed(action, rounds=3):
        samples = []
        for __ in range(rounds):
            started = time.perf_counter()
            action()
            samples.append(time.perf_counter() - started)
        return sorted(samples)[rounds // 2]

    corpus = requirement_corpus(15)
    redesign = timed(lambda: build_design(15))

    def incremental():
        quarry = build_design(14)

        def step():
            quarry.add_requirement(corpus[14])
            quarry.remove_requirement(corpus[14].id)

        # measure only the add; the remove resets state between rounds
        started = time.perf_counter()
        quarry.add_requirement(corpus[14])
        return time.perf_counter() - started

    step_time = min(incremental() for __ in range(3))
    assert step_time < redesign / 3


def test_shape_design_size_grows_sublinearly():
    """Thanks to reuse, unified ETL ops grow sublinearly with N."""
    sizes = []
    for count in (5, 10, 15):
        quarry = build_design(count)
        sizes.append(quarry.status().etl_operations)
    # Non-decreasing (requirements 11-15 revisit earlier structures and
    # are served entirely by reuse) ...
    assert sizes[0] <= sizes[1] <= sizes[2]
    # ... with a shrinking per-requirement increment.
    first_increment = sizes[1] - sizes[0]
    second_increment = sizes[2] - sizes[1]
    assert second_increment < first_increment
    # And always far below the no-reuse upper bound.
    per_requirement_upper = sizes[0] / 5 * 15
    assert sizes[2] < per_requirement_upper


def test_remove_requirement_rebuild_time():
    """Removal triggers a rebuild — bounded by a fresh redesign."""

    quarry = build_design(10)
    started = time.perf_counter()
    quarry.remove_requirement("IR5")
    removal = time.perf_counter() - started
    started = time.perf_counter()
    build_design(10)
    redesign = time.perf_counter() - started
    assert removal < redesign * 1.5
    assert len(quarry.requirements()) == 9
