"""The synchronous artifact bus.

The in-process stand-in for the paper's RESTful service fabric: services
``subscribe`` to topics and ``publish`` envelopes; delivery is
synchronous and in subscription order, so the design pipeline keeps its
deterministic left-fold semantics (and exceptions propagate to the
caller exactly as direct calls would).

Every published envelope is appended to a per-session event log in the
metadata repository *before* delivery, which makes the bus:

* **observable** — ``events()`` exposes the full per-topic history,
* **replayable** — ``replay(topic, handler)`` re-delivers the logged
  envelopes in publication order (reconstructed from their payloads, so
  a replay consumes exactly what was persisted),
* **transactional at the session level** — ``marker()`` /
  ``rollback(marker)`` let an orchestrator drop the events of a failed
  lifecycle operation so the log only ever contains committed history.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.core.services.envelope import ArtifactEnvelope
from repro.errors import QuarryError
from repro.locks import new_rlock

Handler = Callable[[ArtifactEnvelope], None]

#: Process-wide bus instance ids; markers carry their bus's id so a
#: marker can never be rolled back on a bus it was not taken from.
_BUS_IDS = itertools.count(1)


class ArtifactBus:
    """Synchronous publish/subscribe over a persisted event log."""

    def __init__(self, repository, session: str) -> None:
        self._repository = repository  # session-scoped MetadataRepository
        self._session = session
        self._subscribers: Dict[str, List[Handler]] = {}
        #: Guards sequences, positions and marker capture.  Reentrant
        #: because a subscriber delivered under the lock may itself
        #: publish (service pipelines chain topic to topic).
        self._lock = new_rlock("ArtifactBus._lock")
        self._id = next(_BUS_IDS)
        # Resume sequences from a persisted log (session reload).
        self._sequences: Dict[str, int] = {}  # guarded-by: ArtifactBus._lock
        self._next_position = 0  # guarded-by: ArtifactBus._lock
        for event in self._repository.bus_events():
            topic = event["topic"]
            self._sequences[topic] = max(
                self._sequences.get(topic, 0), event["sequence"]
            )
            self._next_position = max(
                self._next_position, event["position"] + 1
            )

    @property
    def session(self) -> str:
        return self._session

    # -- pub/sub -----------------------------------------------------------

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Deliver every future envelope on ``topic`` to ``handler``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def publish(
        self,
        topic: str,
        kind: str,
        payload: dict,
        producer: str,
        attachment=None,
    ) -> ArtifactEnvelope:
        """Log an envelope, then deliver it synchronously.

        The append-then-deliver order is what makes ``rollback`` sound:
        if a subscriber raises, the orchestrator can still see (and
        drop) everything the failed operation logged.

        The whole publish — sequence draw, log append, delivery — runs
        under the bus lock, so concurrent publishers (the served front
        end hammers one session from many handler threads) can never
        draw the same sequence or interleave a marker between the
        sequence read and the position bump.
        """
        with self._lock:
            sequence = self._sequences.get(topic, 0) + 1
            envelope = ArtifactEnvelope(
                topic=topic,
                kind=kind,
                session=self._session,
                sequence=sequence,
                position=self._next_position,
                producer=producer,
                payload=payload,
                attachment=attachment,
            )
            self._repository.append_bus_event(envelope.to_dict())
            self._sequences[topic] = sequence
            self._next_position += 1
            for handler in self._subscribers.get(topic, []):
                handler(envelope)
            return envelope

    # -- the event log -----------------------------------------------------

    def events(self, topic: Optional[str] = None) -> List[ArtifactEnvelope]:
        """Logged envelopes in publication order (optionally one topic)."""
        return [
            ArtifactEnvelope.from_dict(document)
            for document in self._repository.bus_events(topic)
        ]

    def replay(self, topic: str, handler: Handler) -> int:
        """Re-deliver the logged envelopes of a topic; returns the count.

        Replayed envelopes carry no attachment — the handler consumes
        the persisted payload, which is the point of a replay.
        """
        envelopes = self.events(topic)
        for envelope in envelopes:
            handler(envelope)
        return len(envelopes)

    # -- session-level transactions ---------------------------------------

    def marker(self) -> dict:
        """An opaque snapshot of the log's current extent.

        Captured atomically under the bus lock: a publish can never
        land between the position read and the sequence copy, so a
        marker always describes a log state that actually existed —
        ``rollback`` can honor every marker ever taken.
        """
        with self._lock:
            return {
                "bus": self._id,
                "position": self._next_position - 1,
                "sequences": dict(self._sequences),
            }

    def rollback(self, marker: dict) -> int:
        """Drop every envelope logged after ``marker``; returns the count.

        Markers are bus-specific: rolling back a marker taken from a
        different bus instance (another session, or a reloaded one)
        raises instead of silently truncating the wrong log.

        Subscribers are *not* notified: rollback compensates a failed
        lifecycle operation whose in-memory effects the orchestrator
        handles (or deliberately preserves, matching pre-service
        behaviour); the log just must not advertise uncommitted events.
        """
        if marker.get("bus") != self._id:
            raise QuarryError(
                f"cannot roll back bus {self._id} (session "
                f"{self._session!r}) to a marker from bus "
                f"{marker.get('bus')!r}"
            )
        with self._lock:
            dropped = self._repository.delete_bus_events_after(
                marker["position"]
            )
            self._sequences = dict(marker["sequences"])
            self._next_position = marker["position"] + 1
            return dropped
