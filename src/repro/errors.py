"""Exception hierarchy for the Quarry reproduction.

Every error raised by the library derives from :class:`QuarryError`, so
callers can catch one type at the facade boundary.  Sub-hierarchies mirror
the system components (expressions, ontology, sources, MD model, ETL
model, engine, formats, repository, core design components).
"""

from __future__ import annotations


class QuarryError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Expression language
# --------------------------------------------------------------------------


class ExpressionError(QuarryError):
    """Base class for expression-language errors."""


class LexError(ExpressionError):
    """Raised when the expression lexer meets an invalid character."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(ExpressionError):
    """Raised when the expression parser meets an unexpected token."""


class TypeCheckError(ExpressionError):
    """Raised when an expression fails static type checking.

    ``node`` and ``expression`` optionally carry the flow-node name and
    the concrete expression text the failure occurred in, so diagnostics
    can point at the exact location instead of just quoting the message.
    """

    def __init__(
        self,
        message: str,
        *,
        node: "str | None" = None,
        expression: "str | None" = None,
    ) -> None:
        self.bare_message = message
        self.node = node
        self.expression = expression
        detail = message
        if expression is not None:
            detail = f"{detail} (in expression {expression!r})"
        if node is not None:
            detail = f"{detail} (at node {node!r})"
        super().__init__(detail)


class EvaluationError(ExpressionError):
    """Raised when an expression cannot be evaluated against a row."""


# --------------------------------------------------------------------------
# Ontology
# --------------------------------------------------------------------------


class OntologyError(QuarryError):
    """Base class for domain-ontology errors."""


class UnknownConceptError(OntologyError):
    """Raised when a concept id is not present in the ontology."""

    def __init__(self, concept_id: str) -> None:
        super().__init__(f"unknown concept: {concept_id!r}")
        self.concept_id = concept_id


class UnknownPropertyError(OntologyError):
    """Raised when a property id is not present in the ontology."""

    def __init__(self, property_id: str) -> None:
        super().__init__(f"unknown property: {property_id!r}")
        self.property_id = property_id


class DuplicateDefinitionError(OntologyError):
    """Raised when a concept or property id is defined twice."""


class OntologyParseError(OntologyError):
    """Raised when the ontology text serialisation cannot be parsed."""


# --------------------------------------------------------------------------
# Sources and mappings
# --------------------------------------------------------------------------


class SourceError(QuarryError):
    """Base class for source-schema errors."""


class UnknownTableError(SourceError):
    """Raised when a table name is not present in a source schema."""

    def __init__(self, table: str) -> None:
        super().__init__(f"unknown table: {table!r}")
        self.table = table


class UnknownColumnError(SourceError):
    """Raised when a column name is not present in a table."""

    def __init__(self, table: str, column: str) -> None:
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class MappingError(SourceError):
    """Raised when a source schema mapping is missing or inconsistent."""


# --------------------------------------------------------------------------
# Multidimensional model
# --------------------------------------------------------------------------


class MDError(QuarryError):
    """Base class for multidimensional-model errors."""


class MDConstraintViolation(MDError):
    """Raised when a schema violates an MD integrity constraint.

    Carries the individual violation messages so validation reports can
    show all problems at once.
    """

    def __init__(self, violations: list) -> None:
        self.violations = list(violations)
        summary = "; ".join(str(violation) for violation in self.violations)
        super().__init__(f"MD constraint violations: {summary}")


class SummarizabilityError(MDError):
    """Raised when an aggregation is not summarizable over a hierarchy."""


# --------------------------------------------------------------------------
# ETL model
# --------------------------------------------------------------------------


class EtlError(QuarryError):
    """Base class for ETL-flow errors."""


class FlowValidationError(EtlError):
    """Raised when an ETL flow fails structural validation."""

    def __init__(self, violations: list) -> None:
        self.violations = list(violations)
        summary = "; ".join(str(violation) for violation in self.violations)
        super().__init__(f"ETL flow validation failed: {summary}")


class SchemaPropagationError(EtlError):
    """Raised when an operation's output schema cannot be derived."""


class UnknownOperationError(EtlError):
    """Raised when a flow references an operation name that does not exist."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown operation: {name!r}")
        self.name = name


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------


class EngineError(QuarryError):
    """Base class for execution-engine errors."""


class ExecutionError(EngineError):
    """Raised when executing an ETL flow fails."""


class IntegrityError(EngineError):
    """Raised on primary/foreign key violations in the embedded database."""


# --------------------------------------------------------------------------
# Interchange formats
# --------------------------------------------------------------------------


class FormatError(QuarryError):
    """Base class for xRQ/xMD/xLM and XML-JSON conversion errors."""


class XrqFormatError(FormatError):
    """Raised when an xRQ document is malformed."""


class XmdFormatError(FormatError):
    """Raised when an xMD document is malformed."""


class XlmFormatError(FormatError):
    """Raised when an xLM document is malformed."""


# --------------------------------------------------------------------------
# Metadata repository
# --------------------------------------------------------------------------


class RepositoryError(QuarryError):
    """Base class for metadata-repository errors."""


class DocumentNotFoundError(RepositoryError):
    """Raised when a document id is not present in a collection."""

    def __init__(self, collection: str, doc_id: str) -> None:
        super().__init__(f"document {doc_id!r} not found in {collection!r}")
        self.collection = collection
        self.doc_id = doc_id


class DuplicateDocumentError(RepositoryError):
    """Raised when inserting a document whose id already exists."""


# --------------------------------------------------------------------------
# Core design components
# --------------------------------------------------------------------------


class RequirementError(QuarryError):
    """Raised when an information requirement is malformed or unmappable."""


class InterpretationError(QuarryError):
    """Raised when a requirement cannot be translated into partial designs."""


class IntegrationError(QuarryError):
    """Raised when partial designs cannot be integrated."""


class DeploymentError(QuarryError):
    """Raised when a unified design cannot be deployed to a platform."""


class EvolutionError(QuarryError):
    """Raised when a design-evolution operator cannot be applied."""


class LintError(QuarryError):
    """Raised when the static linter blocks an action on ERROR diagnostics.

    Carries the individual :class:`repro.analysis.Diagnostic` objects so
    callers can render or filter them.
    """

    def __init__(self, diagnostics: list) -> None:
        self.diagnostics = list(diagnostics)
        summary = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(
            f"lint found {len(self.diagnostics)} error(s): {summary}"
        )
