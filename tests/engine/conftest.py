"""Engine fixtures: an embedded database loaded with TPC-H micro data."""

import pytest

from repro.engine import Database
from repro.sources import tpch


@pytest.fixture(scope="module")
def tpch_db():
    database = Database("tpch")
    database.load_source(tpch.schema(), tpch.generate(scale_factor=0.3, seed=77))
    return database
