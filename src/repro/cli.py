"""Command-line interface: ``python -m repro <command>``.

A terminal front door over the library — a quick way to watch the demo
without writing code, and a usable tool for exploring a session file:

.. code-block:: console

    $ python -m repro demo                  # the three demo scenarios
    $ python -m repro suggest Lineitem      # elicitor perspectives
    $ python -m repro ddl [--dialect sqlite]
    $ python -m repro explain               # unified ETL operator tree
    $ python -m repro status --store s.json
    $ python -m repro sessions --store s.json

All commands operate on the TPC-H domain; ``--store FILE`` loads (and
``demo --save FILE`` stores) a metadata-repository snapshot, and
``--session NAME`` selects which design session inside the store to
operate on (stores can hold many).  For backward compatibility a
``--session`` value naming an existing file is treated as
``--store FILE``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from repro import Quarry, RequirementBuilder
from repro.sources import tpch


def _build_demo_requirements():
    revenue = (
        RequirementBuilder(
            "IR1",
            "Average revenue per part and supplier name, orders from Spain",
        )
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "AVERAGE",
        )
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )
    netprofit = (
        RequirementBuilder("IR2", "Total net profit per part brand")
        .measure(
            "netprofit",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
            "- Partsupp_ps_supplycost * Lineitem_l_quantity",
            "SUM",
        )
        .per("Part_p_brand")
        .build()
    )
    return [revenue, netprofit]


def _store_and_session(args) -> Tuple[Optional[str], str]:
    """Resolve the (store file, session name) pair from the CLI flags.

    ``--session FILE`` predates multi-session stores; a value naming an
    existing file keeps its old meaning (the store file, default
    session) so existing invocations are unaffected.
    """
    from repro.repository.metadata import DEFAULT_SESSION

    store = getattr(args, "store", None)
    session = getattr(args, "session", None)
    if store is None and session is not None and os.path.exists(session):
        return session, DEFAULT_SESSION
    return store, session if session is not None else DEFAULT_SESSION


def _load_quarry(args) -> Quarry:
    store, session = _store_and_session(args)
    if store is not None:
        return Quarry.load_from(
            store, tpch.schema(), tpch.mappings(), session=session
        )
    quarry = Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), session=session
    )
    for requirement in _build_demo_requirements():
        quarry.add_requirement(requirement)
    return quarry


def command_demo(args) -> int:
    from repro.engine import Database

    from repro.repository.metadata import DEFAULT_SESSION

    print("== Scenario 1: DW design from requirements ==")
    quarry = Quarry(
        tpch.ontology(),
        tpch.schema(),
        tpch.mappings(),
        session=getattr(args, "session", None) or DEFAULT_SESSION,
    )
    for requirement in _build_demo_requirements():
        report = quarry.add_requirement(requirement)
        consolidation = report.etl_consolidation
        print(
            f"  + {requirement.id}: reuse "
            f"{len(consolidation.reused)}/{len(consolidation.reused) + len(consolidation.added)} ops"
        )
    status = quarry.status()
    print(f"  facts={status.facts} dimensions={status.dimensions}")

    print("== Scenario 2: accommodating a change ==")
    quarry.remove_requirement("IR2")
    print(f"  - IR2 removed; remaining: {quarry.status().requirements}")

    print("== Scenario 3: deployment ==")
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(scale_factor=0.3))
    result = quarry.deploy("native", source_database=database)
    for table, rows in sorted(result.stats.loaded.items()):
        print(f"  loaded {rows:>6} rows into {table}")
    if args.save is not None:
        quarry.save_to(args.save)
        print(f"session saved to {args.save}")
    return 0


def command_suggest(args) -> int:
    from repro.core.requirements import Elicitor

    elicitor = Elicitor(tpch.ontology())
    if args.focus is None:
        print("Fact candidates:")
        for suggestion in elicitor.suggest_facts(limit=args.limit):
            print(f"  {suggestion.element_id:<12} {suggestion.reason}")
        return 0
    perspective = elicitor.suggest_perspective(args.focus)
    for kind in ("dimensions", "measures", "slicers"):
        print(f"{kind}:")
        for suggestion in perspective[kind][: args.limit]:
            print(f"  {suggestion.element_id:<28} score={suggestion.score:.1f}")
    return 0


def command_ddl(args) -> int:
    quarry = _load_quarry(args)
    result = quarry.deploy(args.dialect)
    print(result.artifacts["ddl"], end="")
    return 0


def command_explain(args) -> int:
    from repro.etlmodel.cost import CostModel
    from repro.etlmodel.explain import explain, explain_plan

    quarry = _load_quarry(args)
    __, etl = quarry.unified_design()
    if not getattr(args, "planned", False):
        print(explain(etl, cost_model=CostModel()), end="")
        return 0
    # --planned: load the TPC-H sources, run the unified flow through
    # the cost-based planner and show estimated vs. actual cardinalities.
    from repro.engine import Database
    from repro.engine.executor import Executor

    database = Database()
    database.load_source(
        tpch.schema(), tpch.generate(scale_factor=args.scale_factor)
    )
    executor = Executor(database, mode="planned")
    stats = executor.execute(etl)
    print(explain_plan(executor.last_plan, stats), end="")
    return 0


def command_status(args) -> int:
    quarry = _load_quarry(args)
    status = quarry.status()
    print(f"requirements : {', '.join(status.requirements) or '(none)'}")
    print(f"facts        : {', '.join(status.facts) or '(none)'}")
    print(f"dimensions   : {', '.join(status.dimensions) or '(none)'}")
    print(f"MD complexity: {status.complexity:.1f}")
    print(f"ETL ops      : {status.etl_operations}")
    print(f"ETL cost est.: {status.estimated_etl_cost:,.0f}")
    problems = quarry.satisfiability_problems()
    print(f"satisfiable  : {'yes' if not problems else '; '.join(problems)}")
    return 0


def command_sessions(args) -> int:
    """List the design sessions in a store, with bus-log artifact counts."""
    from collections import Counter

    from repro.repository.metadata import MetadataRepository

    if args.store is not None:
        repository = MetadataRepository.load_from(args.store)
    else:
        repository = _load_quarry(args).repository
    names = repository.session_names()
    if not names:
        print("(no sessions registered)")
        return 0
    for name in names:
        scoped = repository.for_session(name)
        events = scoped.bus_events()
        topics = Counter(event["topic"] for event in events)
        detail = ", ".join(
            f"{topic}={count}" for topic, count in sorted(topics.items())
        )
        print(
            f"{name:<16} requirements={len(scoped.requirement_ids())} "
            f"events={len(events)}" + (f" ({detail})" if detail else "")
        )
    return 0


def command_tune(args) -> int:
    from repro.core.tuning import TuningAdvisor

    quarry = _load_quarry(args)
    md, __ = quarry.unified_design()
    report = TuningAdvisor().advise(md, quarry.requirements())
    if not report.suggestions:
        print("no tuning suggestions")
        return 0
    for suggestion in report.top(args.limit):
        print(str(suggestion))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quarry reproduction: DW design lifecycle over TPC-H",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_store_args(subparser):
        subparser.add_argument(
            "--store",
            help="load the metadata-repository snapshot from FILE",
        )
        subparser.add_argument(
            "--session",
            help="design session NAME inside the store (legacy: a value "
            "naming an existing file is treated as --store FILE)",
        )

    demo = subparsers.add_parser("demo", help="run the three demo scenarios")
    demo.add_argument("--save", help="save the session repository to FILE")
    demo.add_argument(
        "--session", help="design session NAME to run the demo in"
    )
    demo.set_defaults(handler=command_demo)

    suggest = subparsers.add_parser(
        "suggest", help="elicitor suggestions (facts, or perspectives of FOCUS)"
    )
    suggest.add_argument("focus", nargs="?", help="focus concept id")
    suggest.add_argument("--limit", type=int, default=5)
    suggest.set_defaults(handler=command_suggest)

    ddl = subparsers.add_parser("ddl", help="print the star-schema DDL")
    ddl.add_argument("--dialect", choices=["postgres", "sqlite"],
                     default="postgres")
    add_store_args(ddl)
    ddl.set_defaults(handler=command_ddl)

    explain = subparsers.add_parser(
        "explain", help="print the unified ETL operator tree"
    )
    add_store_args(explain)
    explain.add_argument(
        "--planned",
        action="store_true",
        help="execute the flow in planned mode against generated TPC-H "
        "data and show estimated vs. actual cardinalities (q-error)",
    )
    explain.add_argument(
        "--scale-factor",
        type=float,
        default=0.3,
        help="TPC-H scale factor for --planned (default 0.3)",
    )
    explain.set_defaults(handler=command_explain)

    status = subparsers.add_parser("status", help="summarise the design")
    add_store_args(status)
    status.set_defaults(handler=command_status)

    sessions = subparsers.add_parser(
        "sessions",
        help="list the store's design sessions and their bus-log artifacts",
    )
    add_store_args(sessions)
    sessions.set_defaults(handler=command_sessions)

    tune = subparsers.add_parser(
        "tune", help="self-tuning advice for the current design"
    )
    add_store_args(tune)
    tune.add_argument("--limit", type=int, default=10)
    tune.set_defaults(handler=command_tune)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
