"""Concurrency discipline: lock-order/race static analysis + sanitizer.

The static side (:mod:`extract`, :mod:`rules`, :mod:`driver`) parses the
``repro`` package itself with :mod:`ast`, builds a named lock model
(every ``with self._lock`` / ``.acquire()`` site, call-graph propagated)
and emits stable ``QRY9xx`` diagnostics: lock-order inversions, locks
held across blocking operations, unguarded access to ``# guarded-by:``
fields, impure process-pool kernels.

The runtime side (:mod:`sanitizer`, enabled with ``REPRO_LOCKSAN=1``)
wraps every lock built through :mod:`repro.locks`, records per-thread
acquisition stacks and the observed lock-order graph, raises on cycle
formation or fork-while-held, and cross-checks the observed graph
against the static may-acquire-under graph.
"""

from repro.analysis.concurrency.driver import (
    CodeLintContext,
    analyze_package,
    analyze_paths,
    code_lint,
    repro_package_root,
    static_lock_graph,
)
from repro.analysis.concurrency.model import CodeModel, LockDecl
from repro.analysis.concurrency.waivers import Waiver, load_waivers

__all__ = [
    "CodeLintContext",
    "CodeModel",
    "LockDecl",
    "Waiver",
    "analyze_package",
    "analyze_paths",
    "code_lint",
    "load_waivers",
    "repro_package_root",
    "static_lock_graph",
]
