"""Relational source schema model.

A :class:`SourceSchema` describes one operational data source: tables
with typed columns, primary keys, and foreign keys.  The Requirements
Interpreter consults it (through the source mappings) to ground
ontological concepts, and the ETL generator reads FK metadata to build
join operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SourceError, UnknownColumnError, UnknownTableError
from repro.expressions.types import ScalarType


@dataclass(frozen=True)
class Column:
    """A typed column of a source table."""

    name: str
    type: ScalarType
    nullable: bool = False
    description: str = ""


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key from ``columns`` to ``target_table.target_columns``."""

    columns: Tuple[str, ...]
    target_table: str
    target_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.target_columns):
            raise SourceError(
                f"foreign key column count mismatch: {self.columns} "
                f"-> {self.target_columns}"
            )


@dataclass
class Table:
    """A source table: ordered columns, a primary key, foreign keys."""

    name: str
    columns: List[Column] = field(default_factory=list)
    primary_key: Tuple[str, ...] = ()
    foreign_keys: List[ForeignKey] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(names) != len(set(names)):
            raise SourceError(f"duplicate column names in table {self.name!r}")
        for key_column in self.primary_key:
            if key_column not in names:
                raise UnknownColumnError(self.name, key_column)
        for foreign_key in self.foreign_keys:
            for key_column in foreign_key.columns:
                if key_column not in names:
                    raise UnknownColumnError(self.name, key_column)

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise UnknownColumnError(self.name, name)

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column_types(self) -> Dict[str, ScalarType]:
        """Schema dictionary used by expression type checking."""
        return {column.name: column.type for column in self.columns}

    def foreign_key_to(self, target_table: str) -> Optional[ForeignKey]:
        """The (first) foreign key pointing at ``target_table``, if any."""
        for foreign_key in self.foreign_keys:
            if foreign_key.target_table == target_table:
                return foreign_key
        return None


@dataclass
class SourceSchema:
    """A named collection of tables forming one data source."""

    name: str
    description: str = ""
    _tables: Dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        """Add a table; FK targets are validated against existing tables
        at :meth:`validate` time (to allow any declaration order)."""
        if table.name in self._tables:
            raise SourceError(
                f"table {table.name!r} already defined in schema {self.name!r}"
            )
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> List[str]:
        return list(self._tables)

    def validate(self) -> None:
        """Check referential integrity of all FK declarations.

        Raises :class:`SourceError` listing the first problem found.
        """
        for table in self._tables.values():
            for foreign_key in table.foreign_keys:
                if foreign_key.target_table not in self._tables:
                    raise SourceError(
                        f"table {table.name!r} references unknown table "
                        f"{foreign_key.target_table!r}"
                    )
                target = self._tables[foreign_key.target_table]
                for column_name in foreign_key.target_columns:
                    if not target.has_column(column_name):
                        raise UnknownColumnError(target.name, column_name)
                if tuple(foreign_key.target_columns) != tuple(target.primary_key):
                    raise SourceError(
                        f"foreign key {table.name}{foreign_key.columns} must "
                        f"reference the primary key of {target.name!r}"
                    )


def make_table(
    name: str,
    columns: Sequence[Tuple[str, ScalarType]],
    primary_key: Sequence[str] = (),
    foreign_keys: Sequence[ForeignKey] = (),
    nullable: Sequence[str] = (),
    description: str = "",
) -> Table:
    """Convenience constructor used by the sample schema modules."""
    nullable_set = set(nullable)
    return Table(
        name=name,
        columns=[
            Column(column_name, column_type, nullable=column_name in nullable_set)
            for column_name, column_type in columns
        ],
        primary_key=tuple(primary_key),
        foreign_keys=list(foreign_keys),
        description=description,
    )
