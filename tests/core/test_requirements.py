"""Unit tests for the information-requirement model and builder."""

import pytest

from repro.core.requirements import (
    InformationRequirement,
    RequirementBuilder,
    RequirementDimension,
    RequirementMeasure,
    RequirementSlicer,
)
from repro.errors import RequirementError
from repro.mdmodel import AggregationFunction


class TestBuilder:
    def test_figure4_requirement(self, revenue_requirement):
        requirement = revenue_requirement
        assert requirement.id == "IR1"
        assert requirement.dimension_properties() == [
            "Part_p_name",
            "Supplier_s_name",
        ]
        assert requirement.measure("revenue").expression == (
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)"
        )
        assert len(requirement.slicers) == 1

    def test_builder_derives_aggregations(self, revenue_requirement):
        aggregations = revenue_requirement.aggregations
        # 1 measure x 2 dimensions
        assert len(aggregations) == 2
        assert all(
            aggregation.function is AggregationFunction.AVG
            for aggregation in aggregations
        )

    def test_explicit_aggregations_respected(self):
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .aggregate("Part_p_name", "m", "MAX", order=2)
            .build()
        )
        assert len(requirement.aggregations) == 1
        assert requirement.aggregations[0].function is AggregationFunction.MAX
        assert requirement.aggregations[0].order == 2

    def test_aggregation_for(self, revenue_requirement):
        assert (
            revenue_requirement.aggregation_for("revenue")
            is AggregationFunction.AVG
        )
        assert (
            InformationRequirement(id="x").aggregation_for("ghost")
            is AggregationFunction.SUM
        )

    def test_unknown_measure_lookup_raises(self, revenue_requirement):
        with pytest.raises(RequirementError):
            revenue_requirement.measure("ghost")


class TestReferencedProperties:
    def test_collects_all_property_ids(self, revenue_requirement):
        properties = revenue_requirement.referenced_properties()
        assert set(properties) == {
            "Part_p_name",
            "Supplier_s_name",
            "Lineitem_l_extendedprice",
            "Lineitem_l_discount",
            "Nation_n_name",
        }

    def test_deduplicates(self):
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity + Lineitem_l_quantity")
            .per("Lineitem_l_quantity")
            .build()
        )
        assert requirement.referenced_properties() == ["Lineitem_l_quantity"]

    def test_effective_aggregations_default(self):
        requirement = InformationRequirement(id="R")
        requirement.measures.append(RequirementMeasure("m", "x"))
        requirement.dimensions.append(RequirementDimension("d"))
        derived = requirement.effective_aggregations()
        assert len(derived) == 1
        assert derived[0].function is AggregationFunction.SUM


class TestSlicer:
    def test_simple_comparison_decomposes(self):
        slicer = RequirementSlicer("Nation_n_name = 'Spain'")
        assert slicer.as_comparison() == ("Nation_n_name", "=", "Spain")

    def test_range_comparison_decomposes(self):
        slicer = RequirementSlicer("Lineitem_l_quantity >= 10")
        assert slicer.as_comparison() == ("Lineitem_l_quantity", ">=", 10)

    def test_complex_predicate_does_not(self):
        slicer = RequirementSlicer("a = 1 and b = 2")
        assert slicer.as_comparison() is None

    def test_in_predicate_does_not(self):
        slicer = RequirementSlicer("a in (1, 2)")
        assert slicer.as_comparison() is None


class TestValidation:
    def test_valid_requirement_passes(self, revenue_requirement, tpch_domain):
        ontology, __, __ = tpch_domain
        assert revenue_requirement.validate(ontology) == []
        revenue_requirement.check(ontology)

    def test_unknown_property_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Ghost_property")
            .per("Part_p_name")
            .build()
        )
        problems = requirement.validate(ontology)
        assert any("Ghost_property" in problem for problem in problems)

    def test_non_numeric_measure_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Part_p_name")
            .per("Part_p_brand")
            .build()
        )
        problems = requirement.validate(ontology)
        assert any("not numeric" in problem for problem in problems)

    def test_non_boolean_slicer_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .where("Lineitem_l_tax + 1")
            .build()
        )
        problems = requirement.validate(ontology)
        assert any("not boolean" in problem for problem in problems)

    def test_uninferrable_slicer_is_not_guessed_non_boolean(self, tpch_domain):
        """``infer_type`` returns None for a bare NULL literal — "could
        not infer" must not be reported as "is not boolean"."""
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .where("null")
            .build()
        )
        problems = requirement.validate(ontology)
        assert not any("not boolean" in problem for problem in problems)

    def test_empty_requirement_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        problems = InformationRequirement(id="R").validate(ontology)
        assert any("no measures" in problem for problem in problems)
        assert any("no dimensions" in problem for problem in problems)

    def test_duplicate_measures_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .measure("m", "Lineitem_l_tax")
            .per("Part_p_name")
            .build()
        )
        assert any(
            "duplicate measure" in problem
            for problem in requirement.validate(ontology)
        )

    def test_dangling_aggregation_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Lineitem_l_quantity")
            .per("Part_p_name")
            .aggregate("Ghost_dim", "ghost_measure", "SUM")
            .build()
        )
        problems = requirement.validate(ontology)
        assert any("unknown dimension" in problem for problem in problems)
        assert any("unknown measure" in problem for problem in problems)

    def test_check_raises(self, tpch_domain):
        ontology, __, __ = tpch_domain
        with pytest.raises(RequirementError):
            InformationRequirement(id="R").check(ontology)

    def test_type_error_in_measure_flagged(self, tpch_domain):
        ontology, __, __ = tpch_domain
        requirement = (
            RequirementBuilder("R")
            .measure("m", "Part_p_name * 2")
            .per("Part_p_brand")
            .build()
        )
        problems = requirement.validate(ontology)
        assert any("measure 'm'" in problem for problem in problems)
