"""Partial ETL flow generation from a mapped requirement.

Produces one xLM flow that populates the partial star:

* a **fact branch**: extractions of the needed source tables, the join
  tree along the requirement's to-one paths, slicer selections, derived
  measures, the aggregation at the requested granularity, and a loader
  into the fact table,
* one **dimension branch** per (non-degenerate) dimension: the join
  chain over the complement levels, a projection to the level
  attributes, a duplicate-removing Distinct and a loader into
  ``dim_<name>``.

Branches share extraction nodes per source table (columns are the union
of all needs), so the generated flow already reuses source reads — the
seed the ETL Process Integrator later builds on across requirements.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.interpreter.mapper import RequirementMapping
from repro.errors import InterpretationError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    Loader,
    Projection,
    SCDType,
    SCDUpdate,
    Selection,
)
from repro.expressions import parse
from repro.expressions.ast import substitute
from repro.mdmodel.model import Dimension, MDSchema, SCDPolicy
from repro.ontology.graph import OntologyGraph, PathStep
from repro.ontology.model import Ontology
from repro.sources.mappings import SourceMappings
from repro.sources.schema import SourceSchema


class EtlGenerator:
    """Generates partial ETL flows."""

    def __init__(
        self,
        ontology: Ontology,
        schema: SourceSchema,
        mappings: SourceMappings,
        scd_effective_date: str = "1970-01-01",
    ) -> None:
        self._ontology = ontology
        self._graph = OntologyGraph(ontology)
        self._schema = schema
        self._mappings = mappings
        self._scd_effective_date = scd_effective_date

    @property
    def scd_effective_date(self) -> str:
        """The deterministic effective date stamped on SCD merges."""
        return self._scd_effective_date

    def generate(self, mapping: RequirementMapping, md_schema: MDSchema) -> EtlFlow:
        """Build the partial flow for one requirement + its partial star."""
        builder = _FlowBuilder(self, mapping, md_schema)
        return builder.build()

    # -- shared lookups -----------------------------------------------------

    def table_of(self, concept: str) -> str:
        return self._mappings.table_of(concept)

    def column_of(self, property_id: str) -> str:
        return self._mappings.property_column(property_id)

    def property_renaming(self, property_ids) -> Dict[str, str]:
        """property id -> source column, for expression substitution."""
        return {
            property_id: self.column_of(property_id)
            for property_id in property_ids
        }

    def join_columns(self, step: PathStep) -> Tuple[str, List[Tuple[str, str]], str]:
        return self._mappings.join_columns(
            self._ontology, self._schema, step.property_id, step.forward
        )

    def to_one_step(self, source: str, target: str) -> PathStep:
        """The to-one hop between two adjacent concepts."""
        for step in self._graph.to_one_neighbours(source):
            if step.target == target:
                return step
        raise InterpretationError(
            f"no to-one relationship from {source!r} to {target!r}"
        )


#: Sentinel marking a synthesised calendar dimension in the chains map.
TIME_DIMENSION = "::time::"


class _FlowBuilder:
    """One flow construction (mutable state lives here)."""

    def __init__(self, generator, mapping, md_schema) -> None:
        self._gen = generator
        self._mapping = mapping
        self._md = md_schema
        requirement = mapping.requirement
        self._requirement = requirement
        self._flow = EtlFlow(
            name=f"etl_{requirement.id}", requirements={requirement.id}
        )
        #: table -> set of needed columns (for shared extraction nodes)
        self._table_columns: Dict[str, Set[str]] = {}
        self._join_counter: Dict[str, int] = {}
        self._renaming = self._gen.property_renaming(
            requirement.referenced_properties()
        )

    # -- public ---------------------------------------------------------------

    def build(self) -> EtlFlow:
        fact_steps = self._fact_steps()
        dimension_chains = self._dimension_chains()
        self._collect_columns(fact_steps, dimension_chains)
        self._create_extractions()
        fact_tree = self._build_join_tree(
            start_table=self._gen.table_of(self._mapping.fact_concept),
            steps=fact_steps,
            prefix="",
        )
        self._build_fact_branch(fact_tree)
        for dimension_name, chains in dimension_chains.items():
            self._build_dimension_branch(dimension_name, chains)
        return self._flow

    # -- planning -----------------------------------------------------------------

    def _fact_steps(self) -> List[PathStep]:
        """Deduplicated join steps of all fact-branch paths, BFS order."""
        steps: List[PathStep] = []
        seen = set()
        concepts = (
            self._mapping.measure_concepts()
            + self._mapping.dimension_concepts()
            + self._mapping.slicer_concepts()
        )
        for concept in concepts:
            if concept == self._mapping.fact_concept:
                continue
            for step in self._mapping.path_to(concept).steps:
                key = (step.property_id, step.forward)
                if key in seen:
                    continue
                seen.add(key)
                steps.append(step)
        return steps

    def _dimension_chains(self) -> Dict[str, List[List[str]]]:
        """dimension name -> concept chains (from the MD schema levels)."""
        from repro.core.interpreter.md_generation import is_time_dimension

        chains: Dict[str, List[List[str]]] = {}
        for dimension in self._md.dimensions.values():
            if is_time_dimension(dimension):
                chains[dimension.name] = TIME_DIMENSION
                continue
            base_concepts = {
                dimension.level(base).concept
                for base in dimension.base_levels()
            }
            if base_concepts == {self._mapping.fact_concept}:
                chains[dimension.name] = []  # degenerate dimension
                continue
            concept_chains = []
            for hierarchy in dimension.hierarchies:
                chain = [
                    dimension.level(level_name).concept
                    for level_name in hierarchy.levels
                ]
                concept_chains.append(chain)
            chains[dimension.name] = concept_chains
        return chains

    def _collect_columns(self, fact_steps, dimension_chains) -> None:
        fact_table = self._gen.table_of(self._mapping.fact_concept)
        self._table_columns.setdefault(fact_table, set())
        # Requirement property columns land on their concept's table.
        for property_id in self._requirement.referenced_properties():
            table = self._mappings_table_of_property(property_id)
            self._table_columns.setdefault(table, set()).add(
                self._gen.column_of(property_id)
            )
        # Join key columns for the fact branch.
        for step in fact_steps:
            left_table, pairs, right_table = self._gen.join_columns(step)
            for left_column, right_column in pairs:
                self._table_columns.setdefault(left_table, set()).add(left_column)
                self._table_columns.setdefault(right_table, set()).add(right_column)
        # Dimension branches: level attributes + chain join keys.
        for dimension_name, chains in dimension_chains.items():
            if chains == TIME_DIMENSION:
                continue  # the date column is a requirement property
            dimension = self._md.dimension(dimension_name)
            for level in dimension.levels.values():
                table = self._gen.table_of(level.concept)
                for attribute in level.attributes:
                    self._table_columns.setdefault(table, set()).add(
                        attribute.name
                    )
            for chain in chains:
                for source, target in zip(chain, chain[1:]):
                    step = self._gen.to_one_step(source, target)
                    left_table, pairs, right_table = self._gen.join_columns(step)
                    for left_column, right_column in pairs:
                        self._table_columns.setdefault(left_table, set()).add(
                            left_column
                        )
                        self._table_columns.setdefault(right_table, set()).add(
                            right_column
                        )

    def _mappings_table_of_property(self, property_id: str) -> str:
        return self._gen._mappings.property_table(
            self._gen._ontology, property_id
        )

    # -- node construction -------------------------------------------------------------

    def _create_extractions(self) -> None:
        for table, columns in self._table_columns.items():
            self._flow.add(
                Datastore(
                    f"DATASTORE_{table}",
                    table=table,
                    columns=tuple(sorted(columns)),
                )
            )
            self._flow.add(
                Extraction(
                    f"EXTRACTION_{table}", columns=tuple(sorted(columns))
                )
            )
            self._flow.connect(f"DATASTORE_{table}", f"EXTRACTION_{table}")

    def _build_join_tree(
        self, start_table: str, steps: List[PathStep], prefix: str
    ) -> str:
        """Join the step targets into a tree; returns the root node name."""
        tree_node = f"EXTRACTION_{start_table}"
        for step in steps:
            left_table, pairs, right_table = self._gen.join_columns(step)
            if left_table == right_table:
                continue  # split concepts share a table: nothing to join
            join_name = self._fresh_join_name(prefix, right_table)
            self._flow.add(
                Join(
                    join_name,
                    left_keys=tuple(left for left, __ in pairs),
                    right_keys=tuple(right for __, right in pairs),
                )
            )
            self._flow.connect(tree_node, join_name)
            self._flow.connect(f"EXTRACTION_{right_table}", join_name)
            tree_node = join_name
        return tree_node

    def _fresh_join_name(self, prefix: str, right_table: str) -> str:
        base = f"JOIN{prefix}_{right_table}"
        count = self._join_counter.get(base, 0) + 1
        self._join_counter[base] = count
        return base if count == 1 else f"{base}_{count}"

    def _build_fact_branch(self, tree_node: str) -> None:
        requirement = self._requirement
        current = tree_node
        for index, slicer in enumerate(requirement.slicers, start=1):
            predicate = substitute(parse(slicer.predicate), self._renaming)
            selection = Selection(
                f"SELECTION_{requirement.id}_{index}", predicate=str(predicate)
            )
            self._flow.add(selection)
            self._flow.connect(current, selection.name)
            current = selection.name
        for measure in requirement.measures:
            expression = substitute(parse(measure.expression), self._renaming)
            derive = DerivedAttribute(
                f"DERIVE_{measure.name}",
                output=measure.name,
                expression=str(expression),
            )
            self._flow.add(derive)
            self._flow.connect(current, derive.name)
            current = derive.name
        fact = next(iter(self._md.facts.values()))
        group_columns = tuple(fact.grain)
        aggregation = Aggregation(
            f"AGG_{fact.name}",
            group_by=group_columns,
            aggregates=tuple(
                AggregationSpec(
                    output=measure.name,
                    function=requirement.aggregation_for(measure.name).value,
                    input=measure.name,
                )
                for measure in requirement.measures
            ),
        )
        self._flow.add(aggregation)
        self._flow.connect(current, aggregation.name)
        loader = Loader(f"LOAD_{fact.name}", table=fact.name, mode="replace")
        self._flow.add(loader)
        self._flow.connect(aggregation.name, loader.name)

    def _build_dimension_branch(
        self, dimension_name: str, chains: List[List[str]]
    ) -> None:
        if chains == TIME_DIMENSION:
            self._build_time_dimension_branch(dimension_name)
            return
        dimension = self._md.dimension(dimension_name)
        columns = []
        for level in dimension.levels.values():
            for attribute in level.attributes:
                if attribute.name not in columns:
                    columns.append(attribute.name)
        if not chains:
            # Degenerate dimension: project its column off the fact table.
            source = f"EXTRACTION_{self._gen.table_of(self._mapping.fact_concept)}"
        else:
            steps: List[PathStep] = []
            seen = set()
            for chain in chains:
                for source_concept, target_concept in zip(chain, chain[1:]):
                    step = self._gen.to_one_step(source_concept, target_concept)
                    key = (step.property_id, step.forward)
                    if key in seen:
                        continue
                    seen.add(key)
                    steps.append(step)
            base_concept = chains[0][0]
            source = self._build_join_tree(
                start_table=self._gen.table_of(base_concept),
                steps=steps,
                prefix=f"_dim_{dimension_name}",
            )
        table = f"dim_{dimension_name}"
        projection = Projection(
            f"PROJECT_{table}", columns=tuple(columns)
        )
        self._flow.add(projection)
        self._flow.connect(source, projection.name)
        distinct = Distinct(f"DISTINCT_{table}")
        self._flow.add(distinct)
        self._flow.connect(projection.name, distinct.name)
        tail = self._append_scd_update(dimension, table, distinct.name)
        loader = Loader(f"LOAD_{table}", table=table, mode="replace")
        self._flow.add(loader)
        self._flow.connect(tail, loader.name)

    def _append_scd_update(
        self, dimension: Dimension, table: str, tail: str
    ) -> str:
        """Insert an SCD merge before the loader of a tracked dimension.

        Returns the name of the loader's new upstream node (unchanged
        for type-0 dimensions, which simply replace their contents).
        """
        base = dimension.level(dimension.base_levels()[0])
        if base.scd_policy is SCDPolicy.TYPE0 or base.key is None:
            return tail
        policy = (
            SCDType.TYPE2
            if base.scd_policy is SCDPolicy.TYPE2
            else SCDType.TYPE1
        )
        scd = SCDUpdate(
            f"SCD_{table}",
            table=table,
            policy=policy,
            business_keys=(base.key,),
            effective_date=self._gen.scd_effective_date,
        )
        self._flow.add(scd)
        self._flow.connect(tail, scd.name)
        return scd.name

    def _build_time_dimension_branch(self, dimension_name: str) -> None:
        """date column -> derived month/quarter/year keys -> dim table."""
        from repro.core.interpreter.md_generation import time_level_expressions

        dimension = self._md.dimension(dimension_name)
        base = dimension.level(dimension.base_levels()[0])
        column = base.attributes[0].name
        property_id = base.attributes[0].property
        owner_concept = self._mapping.concept_of(property_id)
        source = f"EXTRACTION_{self._gen.table_of(owner_concept)}"
        table = f"dim_{dimension_name}"
        current = Projection(f"PROJECT_{table}", columns=(column,))
        self._flow.add(current)
        self._flow.connect(source, current.name)
        for output, expression in time_level_expressions(column):
            derive = DerivedAttribute(
                f"DERIVE_{output}", output=output, expression=expression
            )
            self._flow.add(derive)
            self._flow.connect(current.name, derive.name)
            current = derive
        distinct = Distinct(f"DISTINCT_{table}")
        self._flow.add(distinct)
        self._flow.connect(current.name, distinct.name)
        loader = Loader(f"LOAD_{table}", table=table, mode="replace")
        self._flow.add(loader)
        self._flow.connect(distinct.name, loader.name)
