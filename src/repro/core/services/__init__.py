"""Session-scoped design services over a synchronous artifact bus.

The in-process realisation of the paper's service-oriented
architecture (§2): four services — Requirements Elicitation,
Requirements Interpretation, Design Integration, Design Deployment —
that communicate *only* through typed, versioned artifact envelopes
(xRQ/xMD/xLM payloads) published on an :class:`ArtifactBus` and
persisted in the metadata repository.  A :class:`DesignSession` wires
one set of services onto one bus over a session-scoped repository
view; the :class:`~repro.core.quarry.Quarry` facade is a thin shim
over one default session.
"""

from repro.core.services.bus import ArtifactBus
from repro.core.services.deployment import DeploymentService
from repro.core.services.elicitation import ElicitationService
from repro.core.services.envelope import ENVELOPE_VERSION, ArtifactEnvelope
from repro.core.services.integration import IntegrationService
from repro.core.services.interpretation import InterpretationService
from repro.core.services.reports import ChangeReport, DesignStatus
from repro.core.services.session import DesignSession

__all__ = [
    "ArtifactBus",
    "ArtifactEnvelope",
    "ChangeReport",
    "DesignSession",
    "DesignStatus",
    "DeploymentService",
    "ENVELOPE_VERSION",
    "ElicitationService",
    "IntegrationService",
    "InterpretationService",
]
