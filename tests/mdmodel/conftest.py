"""Shared fixtures: the paper's revenue star (Figures 3-4) in MD form."""

import pytest

from repro.expressions import ScalarType
from repro.mdmodel import (
    AggregationFunction,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
)

STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


def make_part_dimension():
    dimension = Dimension(name="Part", requirements={"IR1"})
    dimension.add_level(
        Level(
            name="Part",
            attributes=[
                LevelAttribute("p_name", STR, property="Part_p_name"),
                LevelAttribute("p_brand", STR, property="Part_p_brand"),
            ],
            concept="Part",
        )
    )
    dimension.add_hierarchy(Hierarchy(name="part", levels=["Part"]))
    return dimension


def make_supplier_dimension():
    dimension = Dimension(name="Supplier", requirements={"IR1"})
    dimension.add_level(
        Level(
            name="Supplier",
            attributes=[LevelAttribute("s_name", STR, property="Supplier_s_name")],
            concept="Supplier",
        )
    )
    dimension.add_level(
        Level(
            name="Nation",
            attributes=[LevelAttribute("n_name", STR, property="Nation_n_name")],
            concept="Nation",
        )
    )
    dimension.add_level(
        Level(
            name="Region",
            attributes=[LevelAttribute("r_name", STR, property="Region_r_name")],
            concept="Region",
        )
    )
    dimension.add_hierarchy(
        Hierarchy(name="geo", levels=["Supplier", "Nation", "Region"])
    )
    return dimension


def make_revenue_fact():
    fact = Fact(name="fact_table_revenue", concept="Lineitem", requirements={"IR1"})
    fact.add_measure(
        Measure(
            name="revenue",
            expression="Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            type=DEC,
            aggregation=AggregationFunction.SUM,
            requirements={"IR1"},
        )
    )
    fact.link_dimension("Part", "Part")
    fact.link_dimension("Supplier", "Supplier")
    return fact


@pytest.fixture
def revenue_star():
    schema = MDSchema(name="demo")
    schema.add_dimension(make_part_dimension())
    schema.add_dimension(make_supplier_dimension())
    schema.add_fact(make_revenue_fact())
    return schema
