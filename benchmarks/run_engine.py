"""Engine-core benchmark runner: legacy interpreter vs compiled columnar.

Runs the TPC-H executor workloads (the S1 revenue flow and the S2
integrated/partial flows built from ``benchmarks/_workloads.py``) at
several scale factors in BOTH executor modes, plus the A1-equivalence
micro-workload, and writes ``BENCH_engine.json`` with both timings.

The runner is also the equivalence gate for the compiled columnar
engine: after every workload it compares the loaded warehouse tables of
the two modes **row-set-wise** (as multisets of rows, order ignored)
and exits non-zero on any disagreement — a benchmark number is only
reported for results that are known identical.

Usage::

    python -m benchmarks.run_engine [--output BENCH_engine.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import Counter

try:
    import repro  # noqa: F401  (needs PYTHONPATH=src or an install)
except ModuleNotFoundError:  # running from a source checkout
    sys.path.insert(
        0,
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )

from repro.engine import Database, Executor, TableDef
from repro.expressions import ScalarType

from benchmarks.bench_a1_equivalence import (
    consolidate_pairwise,
    reordered_pair,
)
from benchmarks.bench_s2_integration_etl import build_flows
from benchmarks.conftest import make_database

SCALE_FACTORS = (0.25, 0.5, 1.0, 2.0)
ROUNDS = 5
MODES = ("legacy", "columnar")


def loaded_tables(flow):
    return sorted(
        {node.table for node in flow.nodes() if node.kind == "Loader"}
    )


def row_multiset(database, tables):
    """{table: multiset of rows} — order-insensitive, duplicate-exact."""
    return {
        table: Counter(
            tuple(sorted(row.items())) for row in database.scan(table).rows
        )
        for table in tables
    }


def time_flows(database, flows, mode):
    """Best-of-rounds wall-clock of executing ``flows`` in ``mode``.

    Returns (seconds, snapshot of every loaded table).  The flows'
    loaders run in replace mode, so repeated rounds are idempotent; one
    warmup round removes one-time costs (parse/compile caches, columnar
    scan pivots) from the measurement.
    """
    executor = Executor(database, mode=mode)
    tables = sorted({t for flow in flows for t in loaded_tables(flow)})
    for flow in flows:  # warmup
        executor.execute(flow)
    best = float("inf")
    for __ in range(ROUNDS):
        started = time.perf_counter()
        for flow in flows:
            executor.execute(flow)
        best = min(best, time.perf_counter() - started)
    return best, row_multiset(database, tables)


def compare_snapshots(name, snapshots, mismatches):
    legacy, columnar = snapshots["legacy"], snapshots["columnar"]
    for table in sorted(set(legacy) | set(columnar)):
        if legacy.get(table) != columnar.get(table):
            mismatches.append(f"{name}: table {table!r} differs across modes")


def run_tpch_workloads(mismatches):
    unified, partials = build_flows(6)
    workloads = {
        "s1_revenue": [partials[0]],
        "s2_integrated": [unified],
        "s2_partials": partials,
    }
    results = {}
    for scale_factor in SCALE_FACTORS:
        database = make_database(scale_factor)
        per_workload = {}
        for name, flows in workloads.items():
            timings, snapshots = {}, {}
            for mode in MODES:
                timings[mode], snapshots[mode] = time_flows(
                    database, flows, mode
                )
            compare_snapshots(f"SF {scale_factor} {name}", snapshots, mismatches)
            per_workload[name] = {
                "legacy_seconds": timings["legacy"],
                "columnar_seconds": timings["columnar"],
                "speedup": timings["legacy"] / timings["columnar"],
                "results_identical": not any(
                    m.startswith(f"SF {scale_factor} {name}")
                    for m in mismatches
                ),
            }
            print(
                f"  SF {scale_factor:<5} {name:<14} "
                f"legacy {timings['legacy'] * 1000:8.1f}ms  "
                f"columnar {timings['columnar'] * 1000:8.1f}ms  "
                f"speedup {per_workload[name]['speedup']:.2f}x"
            )
        results[str(scale_factor)] = per_workload
    return results


def a1_database():
    database = Database()
    database.create_table(
        TableDef(
            "t",
            {
                "a": ScalarType.STRING,
                "b": ScalarType.STRING,
                "c": ScalarType.STRING,
            },
        )
    )
    database.insert_many(
        "t",
        [
            {"a": "x", "b": "y", "c": "1"},
            {"a": "x", "b": "z", "c": "2"},
            {"a": "q", "b": "y", "c": "3"},
        ],
    )
    return database


def run_a1_equivalence(mismatches):
    """The A1 workload: reordered-then-consolidated flows must load the
    same tables under both executor modes."""
    flows = reordered_pair()
    unified, __ = consolidate_pairwise(flows, align=True)
    tables = loaded_tables(unified)
    snapshots = {}
    for mode in MODES:
        database = a1_database()
        Executor(database, mode=mode).execute(unified)
        snapshots[mode] = row_multiset(database, tables)
    compare_snapshots("A1", snapshots, mismatches)
    identical = not any(m.startswith("A1") for m in mismatches)
    print(f"  A1 equivalence workload: {'identical' if identical else 'MISMATCH'}")
    return {"tables": tables, "results_identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="where to write the JSON report (default: BENCH_engine.json)",
    )
    options = parser.parse_args(argv)
    try:
        # Fail before the measurements, not after two minutes of them.
        open(options.output, "a").close()
    except OSError as exc:
        print(f"cannot write {options.output}: {exc}", file=sys.stderr)
        return 2

    mismatches: list = []
    print("engine-core benchmark: legacy interpreter vs compiled columnar")
    by_scale_factor = run_tpch_workloads(mismatches)
    a1 = run_a1_equivalence(mismatches)

    largest = str(max(SCALE_FACTORS))
    report = {
        "benchmark": "engine-core: legacy row interpreter vs compiled columnar",
        "modes": list(MODES),
        "rounds": ROUNDS,
        "timing": "best of rounds, after one warmup execution",
        "scale_factors": by_scale_factor,
        "a1_equivalence": a1,
        "largest_scale_factor": largest,
        "speedup_at_largest_scale_factor": {
            name: by_scale_factor[largest][name]["speedup"]
            for name in by_scale_factor[largest]
        },
        "all_results_identical": not mismatches,
    }
    with open(options.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"report written to {options.output}")

    if mismatches:
        for mismatch in mismatches:
            print(f"MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
