TRUNCATE TABLE "dim_Part";
WITH "DATASTORE_part" AS (
  SELECT p_brand, p_name, p_partkey FROM part
),
"EXTRACTION_part" AS (
  SELECT p_brand, p_name, p_partkey FROM "DATASTORE_part"
),
"PROJECT_dim_Part" AS (
  SELECT p_brand, p_name FROM "EXTRACTION_part"
),
"DISTINCT_dim_Part" AS (
  SELECT DISTINCT * FROM "PROJECT_dim_Part"
)
INSERT INTO "dim_Part" SELECT * FROM "DISTINCT_dim_Part";

TRUNCATE TABLE "dim_Supplier";
WITH "DATASTORE_supplier" AS (
  SELECT s_name, s_nationkey, s_suppkey FROM supplier
),
"DATASTORE_nation" AS (
  SELECT n_name, n_nationkey, n_regionkey FROM nation
),
"DATASTORE_region" AS (
  SELECT r_name, r_regionkey FROM region
),
"EXTRACTION_supplier" AS (
  SELECT s_name, s_nationkey, s_suppkey FROM "DATASTORE_supplier"
),
"EXTRACTION_nation" AS (
  SELECT n_name, n_nationkey, n_regionkey FROM "DATASTORE_nation"
),
"EXTRACTION_region" AS (
  SELECT r_name, r_regionkey FROM "DATASTORE_region"
),
"JOIN_dim_Supplier_nation" AS (
  SELECT * FROM "EXTRACTION_supplier" JOIN "EXTRACTION_nation" ON "EXTRACTION_supplier".s_nationkey = "EXTRACTION_nation".n_nationkey
),
"JOIN_dim_Supplier_region" AS (
  SELECT * FROM "JOIN_dim_Supplier_nation" JOIN "EXTRACTION_region" ON "JOIN_dim_Supplier_nation".n_regionkey = "EXTRACTION_region".r_regionkey
),
"PROJECT_dim_Supplier" AS (
  SELECT s_name, n_name, r_name FROM "JOIN_dim_Supplier_region"
),
"DISTINCT_dim_Supplier" AS (
  SELECT DISTINCT * FROM "PROJECT_dim_Supplier"
)
INSERT INTO "dim_Supplier" SELECT * FROM "DISTINCT_dim_Supplier";

TRUNCATE TABLE fact_table_revenue;
WITH "DATASTORE_lineitem" AS (
  SELECT l_discount, l_extendedprice, l_orderkey, l_partkey, l_quantity, l_suppkey FROM lineitem
),
"DATASTORE_part" AS (
  SELECT p_brand, p_name, p_partkey FROM part
),
"DATASTORE_supplier" AS (
  SELECT s_name, s_nationkey, s_suppkey FROM supplier
),
"DATASTORE_nation" AS (
  SELECT n_name, n_nationkey, n_regionkey FROM nation
),
"DATASTORE_partsupp" AS (
  SELECT ps_partkey, ps_suppkey, ps_supplycost FROM partsupp
),
"DATASTORE_orders" AS (
  SELECT o_custkey, o_orderkey FROM orders
),
"DATASTORE_customer" AS (
  SELECT c_custkey, c_nationkey FROM customer
),
"EXTRACTION_lineitem" AS (
  SELECT l_discount, l_extendedprice, l_orderkey, l_partkey, l_quantity, l_suppkey FROM "DATASTORE_lineitem"
),
"EXTRACTION_part" AS (
  SELECT p_brand, p_name, p_partkey FROM "DATASTORE_part"
),
"EXTRACTION_supplier" AS (
  SELECT s_name, s_nationkey, s_suppkey FROM "DATASTORE_supplier"
),
"EXTRACTION_nation" AS (
  SELECT n_name, n_nationkey, n_regionkey FROM "DATASTORE_nation"
),
"EXTRACTION_partsupp" AS (
  SELECT ps_partkey, ps_suppkey, ps_supplycost FROM "DATASTORE_partsupp"
),
"EXTRACTION_orders" AS (
  SELECT o_custkey, o_orderkey FROM "DATASTORE_orders"
),
"EXTRACTION_customer" AS (
  SELECT c_custkey, c_nationkey FROM "DATASTORE_customer"
),
"SELECTION_IR1_1" AS (
  SELECT * FROM "EXTRACTION_nation" WHERE (n_name = 'SPAIN')
),
"JOIN_partsupp" AS (
  SELECT * FROM "EXTRACTION_lineitem" JOIN "EXTRACTION_partsupp" ON "EXTRACTION_lineitem".l_partkey = "EXTRACTION_partsupp".ps_partkey AND "EXTRACTION_lineitem".l_suppkey = "EXTRACTION_partsupp".ps_suppkey
),
"JOIN_part" AS (
  SELECT * FROM "JOIN_partsupp" JOIN "EXTRACTION_part" ON "JOIN_partsupp".ps_partkey = "EXTRACTION_part".p_partkey
),
"JOIN_supplier" AS (
  SELECT * FROM "JOIN_part" JOIN "EXTRACTION_supplier" ON "JOIN_part".ps_suppkey = "EXTRACTION_supplier".s_suppkey
),
"JOIN_orders" AS (
  SELECT * FROM "JOIN_supplier" JOIN "EXTRACTION_orders" ON "JOIN_supplier".l_orderkey = "EXTRACTION_orders".o_orderkey
),
"JOIN_customer" AS (
  SELECT * FROM "JOIN_orders" JOIN "EXTRACTION_customer" ON "JOIN_orders".o_custkey = "EXTRACTION_customer".c_custkey
),
"JOIN_nation" AS (
  SELECT * FROM "JOIN_customer" JOIN "SELECTION_IR1_1" ON "JOIN_customer".c_nationkey = "SELECTION_IR1_1".n_nationkey
),
"DERIVE_revenue" AS (
  SELECT *, (l_extendedprice * (1 - l_discount)) AS revenue FROM "JOIN_nation"
),
"AGG_fact_table_revenue" AS (
  SELECT p_name, s_name, AVG(revenue) AS revenue FROM "DERIVE_revenue" GROUP BY p_name, s_name
)
INSERT INTO fact_table_revenue SELECT * FROM "AGG_fact_table_revenue";

TRUNCATE TABLE fact_table_netprofit;
WITH "DATASTORE_lineitem" AS (
  SELECT l_discount, l_extendedprice, l_orderkey, l_partkey, l_quantity, l_suppkey FROM lineitem
),
"DATASTORE_part" AS (
  SELECT p_brand, p_name, p_partkey FROM part
),
"DATASTORE_partsupp" AS (
  SELECT ps_partkey, ps_suppkey, ps_supplycost FROM partsupp
),
"EXTRACTION_lineitem" AS (
  SELECT l_discount, l_extendedprice, l_orderkey, l_partkey, l_quantity, l_suppkey FROM "DATASTORE_lineitem"
),
"EXTRACTION_part" AS (
  SELECT p_brand, p_name, p_partkey FROM "DATASTORE_part"
),
"EXTRACTION_partsupp" AS (
  SELECT ps_partkey, ps_suppkey, ps_supplycost FROM "DATASTORE_partsupp"
),
"JOIN_partsupp" AS (
  SELECT * FROM "EXTRACTION_lineitem" JOIN "EXTRACTION_partsupp" ON "EXTRACTION_lineitem".l_partkey = "EXTRACTION_partsupp".ps_partkey AND "EXTRACTION_lineitem".l_suppkey = "EXTRACTION_partsupp".ps_suppkey
),
"JOIN_part" AS (
  SELECT * FROM "JOIN_partsupp" JOIN "EXTRACTION_part" ON "JOIN_partsupp".ps_partkey = "EXTRACTION_part".p_partkey
),
"DERIVE_netprofit" AS (
  SELECT *, ((l_extendedprice * (1 - l_discount)) - (ps_supplycost * l_quantity)) AS netprofit FROM "JOIN_part"
),
"AGG_fact_table_netprofit" AS (
  SELECT p_brand, SUM(netprofit) AS netprofit FROM "DERIVE_netprofit" GROUP BY p_brand
)
INSERT INTO fact_table_netprofit SELECT * FROM "AGG_fact_table_netprofit";
