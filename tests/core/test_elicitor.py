"""Unit tests for the Requirements Elicitor backend (Figure 2)."""

import pytest

from repro.core.requirements import Elicitor
from repro.core.requirements.vocabulary import Vocabulary
from repro.errors import RequirementError
from repro.sources import tpch


@pytest.fixture(scope="module")
def elicitor():
    return Elicitor(tpch.ontology())


class TestFactSuggestions:
    def test_lineitem_is_top_fact_candidate(self, elicitor):
        facts = elicitor.suggest_facts()
        assert facts[0].element_id == "Lineitem"

    def test_partsupp_is_also_a_candidate(self, elicitor):
        ids = [suggestion.element_id for suggestion in elicitor.suggest_facts()]
        assert "Partsupp" in ids

    def test_reasons_are_informative(self, elicitor):
        top = elicitor.suggest_facts()[0]
        assert "references" in top.reason

    def test_limit_respected(self, elicitor):
        assert len(elicitor.suggest_facts(limit=2)) == 2


class TestDimensionSuggestions:
    def test_paper_example(self, elicitor):
        # "a user may choose the focus of an analysis (e.g., Lineitem),
        # while the system then automatically suggests useful dimensions
        # (e.g., Supplier, Nation, Part)"
        ids = [s.element_id for s in elicitor.suggest_dimensions("Lineitem")]
        for expected in ("Supplier", "Nation", "Part"):
            assert expected in ids

    def test_nation_ranks_high_due_to_fan_in(self, elicitor):
        suggestions = elicitor.suggest_dimensions("Lineitem")
        by_id = {s.element_id: s for s in suggestions}
        # Nation is shared by Customer and Supplier (fan-in 2).
        assert by_id["Nation"].score > by_id["Region"].score

    def test_paths_attached(self, elicitor):
        suggestions = elicitor.suggest_dimensions("Lineitem")
        by_id = {s.element_id: s for s in suggestions}
        assert by_id["Part"].path.concepts() == ["Lineitem", "Partsupp", "Part"]

    def test_leaf_focus_has_few_dimensions(self, elicitor):
        assert [s.element_id for s in elicitor.suggest_dimensions("Region")] == []


class TestMeasureAndSlicerSuggestions:
    def test_measures_of_focus_rank_first(self, elicitor):
        measures = elicitor.suggest_measures("Lineitem")
        top_ids = [s.element_id for s in measures[:4]]
        assert "Lineitem_l_extendedprice" in top_ids
        assert "Lineitem_l_quantity" in top_ids

    def test_distant_numeric_attributes_included(self, elicitor):
        ids = [s.element_id for s in elicitor.suggest_measures("Lineitem", limit=20)]
        assert "Partsupp_ps_supplycost" in ids

    def test_slicers_are_descriptive_attributes(self, elicitor):
        ids = [s.element_id for s in elicitor.suggest_slicers("Lineitem", limit=30)]
        assert "Nation_n_name" in ids
        assert "Lineitem_l_shipdate" in ids
        assert "Lineitem_l_quantity" not in ids

    def test_perspective_bundle(self, elicitor):
        perspective = elicitor.suggest_perspective("Lineitem")
        assert perspective["focus"] == "Lineitem"
        assert perspective["dimensions"] and perspective["measures"]


class TestGraphDocument:
    def test_highlight_matches_suggestions(self, elicitor):
        document = elicitor.graph_document(highlight="Lineitem")
        suggested = {
            node["id"] for node in document["nodes"] if node["suggested"]
        }
        ids = {s.element_id for s in elicitor.suggest_dimensions("Lineitem")}
        assert suggested == ids


class TestVocabulary:
    @pytest.fixture(scope="class")
    def vocabulary(self):
        return Vocabulary(tpch.ontology())

    def test_resolves_label(self, vocabulary):
        resolution = vocabulary.resolve("Line item")
        assert resolution.element_id == "Lineitem"
        assert resolution.kind == "concept"

    def test_resolves_attribute_label(self, vocabulary):
        resolution = vocabulary.resolve("nation name")
        assert resolution.element_id == "Nation_n_name"
        assert resolution.kind == "attribute"

    def test_resolves_id_directly(self, vocabulary):
        assert vocabulary.resolve("Part_p_brand").element_id == "Part_p_brand"

    def test_unknown_term_raises_with_suggestions(self, vocabulary):
        with pytest.raises(RequirementError) as excinfo:
            vocabulary.resolve("Lineitm")
        assert "did you mean" in str(excinfo.value)

    def test_try_resolve_returns_none(self, vocabulary):
        assert vocabulary.try_resolve("nonsense-term") is None

    def test_resolve_all(self, vocabulary):
        resolutions = vocabulary.resolve_all(["Part", "Supplier"])
        assert [r.element_id for r in resolutions] == ["Part", "Supplier"]

    def test_ambiguous_term_raises(self):
        from repro.ontology import OntologyBuilder

        ontology = (
            OntologyBuilder("amb")
            .concept("A", label="thing")
            .concept("B", label="Thing")
            .build()
        )
        with pytest.raises(RequirementError) as excinfo:
            Vocabulary(ontology).resolve("thing")
        assert "ambiguous" in str(excinfo.value)
