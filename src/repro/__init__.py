"""Quarry reproduction: incremental data-warehouse design from requirements.

A from-scratch implementation of *Quarry: Digging Up the Gems of Your
Data Treasury* (EDBT 2015): elicit analytical requirements over a domain
ontology, translate each into partial multidimensional (MD) schema and
ETL designs, incrementally integrate partial designs into a unified,
quality-optimised design, and deploy it (SQL DDL, Pentaho-PDI ``.ktr``,
or natively on the embedded engine).

Quickstart::

    from repro import Quarry, RequirementBuilder
    from repro.sources import tpch

    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    requirement = (
        RequirementBuilder("IR1", "avg revenue per part, Spain")
        .measure("revenue",
                 "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
                 "AVERAGE")
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )
    quarry.add_requirement(requirement)
    md_schema, etl_flow = quarry.unified_design()
"""

from repro.core.quarry import ChangeReport, DesignStatus, Quarry
from repro.core.requirements import RequirementBuilder
from repro.core.services import DesignSession
from repro.errors import QuarryError

__version__ = "1.0.0"

__all__ = [
    "ChangeReport",
    "DesignSession",
    "DesignStatus",
    "Quarry",
    "QuarryError",
    "RequirementBuilder",
    "__version__",
]
