"""``python -m repro.serve.smoke`` — end-to-end round trip over HTTP.

Boots the served front door (or targets ``--url``), then drives two
isolated sessions through the full lifecycle — create, elicit via xRQ,
inspect status and design, deploy (foreground *and* background job,
polled to completion), remove — asserting status codes and
cross-session isolation at every step.  Exit code 0 only if every check
passes; CI runs this as the serving gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

from repro import RequirementBuilder
from repro.xformats import xrq


def demo_xrq(requirement_id: str) -> str:
    """One of the demo requirements as an xRQ document."""
    if requirement_id == "IR1":
        requirement = (
            RequirementBuilder(
                "IR1",
                "Average revenue per part and supplier name, "
                "orders from Spain",
            )
            .measure(
                "revenue",
                "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
                "AVERAGE",
            )
            .per("Part_p_name", "Supplier_s_name")
            .where("Nation_n_name = 'SPAIN'")
            .build()
        )
    else:
        requirement = (
            RequirementBuilder(requirement_id, "Total net profit per brand")
            .measure(
                "netprofit",
                "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
                "- Partsupp_ps_supplycost * Lineitem_l_quantity",
                "SUM",
            )
            .per("Part_p_brand")
            .build()
        )
    return xrq.dumps(requirement)


def request(base: str, method: str, path: str, body=None):
    """One JSON request; returns ``(status, payload)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)
    print(f"  ok: {message}")


def run_round_trip(base: str) -> None:
    status, payload = request(base, "GET", "/healthz")
    check(status == 200 and payload["status"] == "ok", "healthz answers")

    for name in ("smoke-alpha", "smoke-beta"):
        status, __ = request(base, "POST", "/sessions", {"name": name})
        check(status == 201, f"session {name} created")
    status, __ = request(
        base, "POST", "/sessions", {"name": "smoke-alpha"}
    )
    check(status == 409, "duplicate session rejected with 409")
    status, __ = request(base, "GET", "/sessions/ghost/status")
    check(status == 404, "unknown session is 404")

    status, report = request(
        base,
        "POST",
        "/sessions/smoke-alpha/requirements",
        {"xrq": demo_xrq("IR1")},
    )
    check(
        status == 201 and report["requirement_id"] == "IR1",
        "IR1 elicited into smoke-alpha",
    )
    status, report = request(
        base,
        "POST",
        "/sessions/smoke-beta/requirements",
        {"xrq": demo_xrq("IR2")},
    )
    check(
        status == 201 and report["requirement_id"] == "IR2",
        "IR2 elicited into smoke-beta",
    )

    __, alpha = request(base, "GET", "/sessions/smoke-alpha/status")
    __, beta = request(base, "GET", "/sessions/smoke-beta/status")
    check(
        alpha["requirements"] == ["IR1"]
        and beta["requirements"] == ["IR2"],
        "sessions are isolated",
    )
    __, design = request(base, "GET", "/sessions/smoke-alpha/design")
    check(
        design["facts"] and design["etl_operations"] > 0,
        "unified design materialised",
    )

    for name in ("smoke-alpha", "smoke-beta"):
        status, deployed = request(
            base,
            "POST",
            f"/sessions/{name}/deploy",
            {"platform": "sql"},
        )
        check(
            status == 200 and deployed["artifacts"],
            f"{name} deployed to sql "
            f"({len(deployed.get('artifacts', {}))} artifacts)",
        )

    status, accepted = request(
        base,
        "POST",
        "/sessions/smoke-beta/deploy",
        {"platform": "sql", "background": True},
    )
    check(
        status == 202 and accepted["state"] == "queued",
        "background deploy accepted with 202",
    )
    job_url = accepted["status_url"]
    deadline = time.monotonic() + 60
    while True:
        status, job = request(base, "GET", job_url)
        check(status == 200, f"job status readable at {job_url}")
        if job["state"] not in ("queued", "running"):
            break
        check(time.monotonic() < deadline, "background deploy finished")
        time.sleep(0.05)
    check(
        job["state"] == "done" and job["result"]["artifacts"],
        f"background deploy completed "
        f"({len(job.get('result', {}).get('artifacts', {}))} artifacts)",
    )

    status, __ = request(
        base, "DELETE", "/sessions/smoke-alpha/requirements/IR1"
    )
    check(status == 200, "IR1 removed from smoke-alpha")
    __, listed = request(
        base, "GET", "/sessions/smoke-alpha/requirements"
    )
    check(listed["requirements"] == [], "smoke-alpha is empty again")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve.smoke")
    parser.add_argument(
        "--url",
        default=None,
        help="target an already-running server instead of booting one",
    )
    args = parser.parse_args(argv)
    if args.url is not None:
        try:
            run_round_trip(args.url.rstrip("/"))
        except SmokeFailure as failure:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("serving smoke: PASS")
        return 0

    from repro.serve.server import QuarryServer, tpch_manager

    with QuarryServer(tpch_manager()) as server:
        print(f"booted {server.url}")
        try:
            run_round_trip(server.url)
        except SmokeFailure as failure:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    print("serving smoke: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
