"""Cross-module integration tests: the full pipeline under one roof.

These tests tie together every subsystem: requirements through the
facade, format round-trips of the *unified* (not just partial) designs,
measure-merge across requirements, full persistence cycles, and
correctness of the deployed warehouse against independent recomputation.
"""

import pytest

from repro import Quarry, RequirementBuilder
from repro.engine import Database, Executor, OlapQuery, query_star
from repro.sources import retail, tpch
from repro.xformats import xlm, xmd

from tests.core.conftest import (
    build_netprofit_requirement,
    build_quantity_requirement,
    build_revenue_requirement,
)


@pytest.fixture
def quarry():
    return Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())


@pytest.fixture
def loaded_db():
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(0.25, seed=99))
    return database


class TestUnifiedDesignRoundTrips:
    def test_unified_flow_survives_xlm_and_executes(self, quarry, loaded_db):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        __, unified = quarry.unified_design()
        reloaded = xlm.loads(xlm.dumps(unified))
        stats = Executor(loaded_db).execute(reloaded)
        assert stats.loaded["fact_table_revenue"] >= 0
        assert stats.loaded["fact_table_netprofit"] > 0

    def test_unified_schema_survives_xmd_and_deploys(self, quarry, loaded_db):
        from repro.core.deployer import Deployer

        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        md, etl = quarry.unified_design()
        reloaded = xmd.loads(xmd.dumps(md))
        deployer = Deployer(source_schema=tpch.schema())
        result = deployer.deploy(reloaded, etl, "native", source_database=loaded_db)
        assert result.stats is not None


class TestMeasureMergeAcrossRequirements:
    """Two requirements, same grain + slicers, different measures: one
    fact table carries both measures (MD fact merge + ETL aggregation
    fusion)."""

    def _requirements(self):
        first = (
            RequirementBuilder("Q1", "revenue per brand")
            .measure(
                "revenue",
                "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
                "SUM",
            )
            .per("Part_p_brand")
            .build()
        )
        second = (
            RequirementBuilder("Q2", "quantity per brand")
            .measure("quantity", "Lineitem_l_quantity", "SUM")
            .per("Part_p_brand")
            .build()
        )
        return first, second

    def test_md_fact_merged(self, quarry):
        first, second = self._requirements()
        quarry.add_requirement(first)
        quarry.add_requirement(second)
        md, __ = quarry.unified_design()
        assert len(md.facts) == 1
        fact = next(iter(md.facts.values()))
        assert set(fact.measures) == {"revenue", "quantity"}
        assert fact.requirements == {"Q1", "Q2"}

    def test_etl_aggregation_fused(self, quarry):
        first, second = self._requirements()
        quarry.add_requirement(first)
        report = quarry.add_requirement(second)
        __, etl = quarry.unified_design()
        aggregations = [n for n in etl.nodes() if n.kind == "Aggregation"]
        assert len(aggregations) == 1
        outputs = {spec.output for spec in aggregations[0].aggregates}
        assert outputs == {"revenue", "quantity"}

    def test_deployed_fact_answers_both(self, quarry, loaded_db):
        first, second = self._requirements()
        quarry.add_requirement(first)
        quarry.add_requirement(second)
        quarry.deploy("native", source_database=loaded_db)
        fact_table = next(iter(quarry.unified_design()[0].facts))
        rows = loaded_db.scan(fact_table).rows
        assert rows
        assert all(
            row["revenue"] is not None and row["quantity"] is not None
            for row in rows
        )
        # Cross-check quantity against raw sources.
        parts = {
            r["p_partkey"]: r["p_brand"] for r in loaded_db.scan("part").rows
        }
        expected = {}
        for row in loaded_db.scan("lineitem").rows:
            brand = parts[row["l_partkey"]]
            expected[brand] = expected.get(brand, 0) + row["l_quantity"]
        got = {row["p_brand"]: row["quantity"] for row in rows}
        assert got == expected


class TestCorrectnessAgainstRecomputation:
    def test_three_requirement_warehouse_is_exact(self, quarry, loaded_db):
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        quarry.add_requirement(build_quantity_requirement())
        quarry.deploy("native", source_database=loaded_db)

        # IR3: quantity per (l_shipmode, n_name) — recompute by hand.
        nations = {
            r["n_nationkey"]: r["n_name"] for r in loaded_db.scan("nation").rows
        }
        customers = {
            r["c_custkey"]: nations[r["c_nationkey"]]
            for r in loaded_db.scan("customer").rows
        }
        orders = {
            r["o_orderkey"]: customers[r["o_custkey"]]
            for r in loaded_db.scan("orders").rows
        }
        expected = {}
        for row in loaded_db.scan("lineitem").rows:
            key = (row["l_shipmode"], orders[row["l_orderkey"]])
            expected[key] = expected.get(key, 0) + row["l_quantity"]
        got = {
            (row["l_shipmode"], row["n_name"]): row["quantity"]
            for row in loaded_db.scan("fact_table_quantity").rows
        }
        assert got == expected

    def test_olap_rollup_over_complemented_hierarchy(self, quarry, loaded_db):
        """Roll revenue up from supplier to region via dim_Supplier."""
        quarry.add_requirement(build_revenue_requirement())
        quarry.deploy("native", source_database=loaded_db)
        answer = query_star(
            loaded_db,
            OlapQuery(
                fact_table="fact_table_revenue",
                group_by=["r_name"],
                aggregates=[("COUNT", "revenue", "cells")],
                joins=[("dim_Supplier", "s_name", "s_name")],
            ),
        )
        total_cells = sum(row["cells"] for row in answer.rows)
        assert total_cells == loaded_db.row_count("fact_table_revenue")


class TestMultiDomainIsolation:
    def test_two_quarries_do_not_interfere(self, loaded_db):
        tpch_quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        retail_quarry = Quarry(
            retail.ontology(), retail.schema(), retail.mappings()
        )
        tpch_quarry.add_requirement(build_revenue_requirement())
        retail_quarry.add_requirement(
            RequirementBuilder("R1", "sales per country")
            .measure("sales", "TicketLine_amount", "SUM")
            .per("Store_country")
            .build()
        )
        retail_db = Database()
        retail_db.load_source(retail.schema(), retail.generate(0.3, seed=2))
        tpch_quarry.deploy("native", source_database=loaded_db)
        retail_quarry.deploy("native", source_database=retail_db)
        assert loaded_db.has_table("fact_table_revenue")
        assert retail_db.has_table("fact_table_sales")
        assert not retail_db.has_table("fact_table_revenue")


class TestFullPersistenceCycle:
    def test_save_resume_change_deploy(self, tmp_path, loaded_db):
        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        quarry.add_requirement(build_revenue_requirement())
        quarry.add_requirement(build_netprofit_requirement())
        path = tmp_path / "session.json"
        quarry.save_to(path)

        resumed = Quarry.load_from(path, tpch.schema(), tpch.mappings())
        resumed.remove_requirement("IR1")
        resumed.add_requirement(build_quantity_requirement())
        result = resumed.deploy("native", source_database=loaded_db)
        assert result.stats.loaded["fact_table_netprofit"] > 0
        assert result.stats.loaded["fact_table_quantity"] > 0
        assert "fact_table_revenue" not in result.stats.loaded
