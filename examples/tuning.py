"""Inspecting and self-tuning a unified design.

The demo leaves "further user-preferred tunings" (§2.4) to an expert
user and names "design self-tuning" as a future plug-in (§2.6).  This
example shows both ends:

* EXPLAIN — the unified ETL flow rendered as per-loader operator trees
  with the cost model's row/cost estimates (what an expert would read
  before tuning by hand),
* the TuningAdvisor — ranked index / materialised-roll-up / dimension-
  slimming suggestions derived from the design and its requirements.

Run with::

    python examples/tuning.py
"""

from repro import Quarry, RequirementBuilder
from repro.core.tuning import TuningAdvisor
from repro.etlmodel.cost import CostModel
from repro.etlmodel.explain import explain
from repro.sources import tpch

ROW_COUNTS = {
    "lineitem": 60000, "orders": 15000, "customer": 1500,
    "nation": 25, "region": 5, "part": 2000, "partsupp": 4000,
    "supplier": 100,
}


def main() -> None:
    quarry = Quarry(
        tpch.ontology(), tpch.schema(), tpch.mappings(), row_counts=ROW_COUNTS
    )
    quarry.add_requirement(
        RequirementBuilder("IR1", "quantity per brand and ship mode")
        .measure("quantity", "Lineitem_l_quantity", "SUM")
        .per("Part_p_brand", "Lineitem_l_shipmode")
        .build()
    )
    quarry.add_requirement(
        RequirementBuilder("IR2", "revenue per supplier")
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "SUM",
        )
        .per("Supplier_s_name")
        .build()
    )

    md, etl = quarry.unified_design()

    print("=== EXPLAIN: unified ETL flow with cost estimates ===\n")
    print(explain(etl, cost_model=CostModel(), row_counts=ROW_COUNTS))

    print("=== Self-tuning advice ===\n")
    advisor = TuningAdvisor(
        row_counts={fact: 50_000 for fact in md.facts}
    )
    report = advisor.advise(md, quarry.requirements())
    for suggestion in report.top(8):
        print(f"  {suggestion}")
    print(f"\n({len(report.suggestions)} suggestions total: "
          f"{len(report.of_kind('index'))} index, "
          f"{len(report.of_kind('rollup'))} rollup, "
          f"{len(report.of_kind('slim'))} slimming)")


if __name__ == "__main__":
    main()
