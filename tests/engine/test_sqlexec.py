"""Tests for executing generated SQL against the embedded database."""

import pytest

from repro.engine import Database, OlapQuery, TableDef, query_star
from repro.engine.sqlexec import execute_ddl, execute_select
from repro.errors import EngineError
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


@pytest.fixture
def star_db():
    database = Database()
    database.create_table(
        TableDef(
            "fact_sales",
            {"p_name": STR, "region": STR, "revenue": DEC},
        )
    )
    database.insert_many(
        "fact_sales",
        [
            {"p_name": "bolt", "region": "EU", "revenue": 10.0},
            {"p_name": "bolt", "region": "EU", "revenue": 30.0},
            {"p_name": "bolt", "region": "US", "revenue": 7.0},
            {"p_name": "nut", "region": "EU", "revenue": 5.0},
            {"p_name": "nut", "region": "US", "revenue": None},
        ],
    )
    return database


class TestExecuteDdl:
    def test_generated_ddl_creates_tables(self):
        from repro.core.deployer import ddl
        from repro.core.interpreter import Interpreter
        from repro.sources import tpch
        from tests.core.conftest import build_revenue_requirement

        design = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings()
        ).interpret(build_revenue_requirement())
        script = ddl.generate(design.md_schema, database_name="demo")
        database = Database()
        created = execute_ddl(database, script)
        assert set(created) == {
            "dim_Part", "dim_Supplier", "fact_table_revenue",
        }
        fact = database.table_def("fact_table_revenue")
        assert fact.primary_key == ("p_name", "s_name")
        assert fact.columns["revenue"] is DEC

    def test_created_tables_enforce_keys(self):
        database = Database()
        execute_ddl(
            database,
            "CREATE TABLE t (\n  a BIGINT,\n  b VARCHAR(255),\n"
            "  PRIMARY KEY( a )\n);",
        )
        database.insert("t", {"a": 1, "b": "x"})
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            database.insert("t", {"a": 1, "b": "y"})

    def test_create_database_is_ignored(self):
        database = Database()
        created = execute_ddl(database, "CREATE DATABASE demo;")
        assert created == []

    def test_unsupported_statement_rejected(self):
        with pytest.raises(EngineError):
            execute_ddl(Database(), "DROP TABLE x;")


class TestExecuteSelect:
    def test_plain_select(self, star_db):
        result = execute_select(star_db, "SELECT p_name, region FROM fact_sales;")
        assert len(result) == 5
        assert result.attribute_names() == ["p_name", "region"]

    def test_where_filters(self, star_db):
        result = execute_select(
            star_db,
            "SELECT p_name FROM fact_sales WHERE (region = 'EU');",
        )
        assert len(result) == 3

    def test_group_by_with_aggregates(self, star_db):
        result = execute_select(
            star_db,
            "SELECT p_name, SUM(revenue) AS total, COUNT(revenue) AS n\n"
            "FROM fact_sales\nGROUP BY p_name\nORDER BY p_name;",
        )
        rows = result.rows
        assert rows[0] == {"p_name": "bolt", "total": 47.0, "n": 3}
        assert rows[1] == {"p_name": "nut", "total": 5.0, "n": 1}

    def test_avg_translated(self, star_db):
        result = execute_select(
            star_db,
            "SELECT region, AVG(revenue) AS a FROM fact_sales GROUP BY region "
            "ORDER BY region;",
        )
        by_region = {row["region"]: row["a"] for row in result.rows}
        assert by_region["EU"] == pytest.approx(15.0)
        assert by_region["US"] == pytest.approx(7.0)

    def test_global_aggregate(self, star_db):
        result = execute_select(
            star_db, "SELECT COUNT(revenue) AS n FROM fact_sales;"
        )
        assert result.rows == [{"n": 4}]

    def test_sql_not_equal_spelling(self, star_db):
        result = execute_select(
            star_db,
            "SELECT p_name FROM fact_sales WHERE (region <> 'EU');",
        )
        assert len(result) == 2

    def test_unsupported_shape_rejected(self, star_db):
        with pytest.raises(EngineError):
            execute_select(star_db, "SELECT * FROM a JOIN b ON x = y;")

    def test_group_mismatch_rejected(self, star_db):
        with pytest.raises(EngineError):
            execute_select(
                star_db,
                "SELECT p_name, SUM(revenue) AS t FROM fact_sales "
                "GROUP BY region;",
            )


class TestOlapSqlAgreesWithQueryStar:
    def test_rendered_sql_computes_same_answer(self, star_db):
        query = OlapQuery(
            fact_table="fact_sales",
            group_by=["p_name"],
            aggregates=[("SUM", "revenue", "total")],
            slicer="region = 'EU'",
        )
        via_engine = query_star(star_db, query)
        via_sql = execute_select(star_db, query.to_sql())
        assert via_engine.rows == via_sql.rows

    def test_against_deployed_warehouse(self):
        from repro import Quarry
        from repro.sources import tpch
        from tests.core.conftest import build_netprofit_requirement

        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        quarry.add_requirement(build_netprofit_requirement())
        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.2, seed=6))
        quarry.deploy("native", source_database=database)
        query = OlapQuery(
            fact_table="fact_table_netprofit",
            group_by=["p_brand"],
            aggregates=[("SUM", "netprofit", "total")],
        )
        assert (
            execute_select(database, query.to_sql()).rows
            == query_star(database, query).rows
        )
