"""Unit tests for the columnar relation and its batch operators."""

import pytest

from repro.errors import EngineError, ExecutionError
from repro.engine import ColumnarRelation, Relation
from repro.engine.columnar import (
    aggregate_values,
    hash_aggregate,
    hash_join,
    surrogate_keys,
)
from repro.etlmodel import AggregationSpec
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING
DEC = ScalarType.DECIMAL


def items():
    return ColumnarRelation(
        schema={"k": INT, "cat": STR, "price": DEC},
        columns={
            "k": [1, 2, 3, 4],
            "cat": ["a", "a", "b", None],
            "price": [10.0, 20.0, 5.0, None],
        },
    )


class TestAdapters:
    def test_from_rows_round_trip(self):
        rows = [{"k": 1, "cat": "a"}, {"k": 2, "cat": None}]
        relation = ColumnarRelation.from_rows({"k": INT, "cat": STR}, rows)
        assert relation.length == 2
        assert relation.rows == rows
        assert list(relation) == rows

    def test_from_relation_and_back(self):
        row_relation = Relation(
            schema={"k": INT}, rows=[{"k": 1}, {"k": 2}]
        )
        columnar = ColumnarRelation.from_relation(row_relation)
        assert columnar.to_relation().rows == row_relation.rows

    def test_zero_column_relation_needs_length(self):
        with pytest.raises(EngineError):
            ColumnarRelation(schema={}, columns={})
        empty = ColumnarRelation(schema={}, columns={}, length=3)
        assert len(empty) == 3
        assert empty.rows == [{}, {}, {}]


class TestStructuralOperators:
    def test_project_shares_columns(self):
        relation = items()
        projected = relation.project(["k", "price"])
        assert projected.columns["k"] is relation.columns["k"]
        assert projected.attribute_names() == ["k", "price"]

    def test_project_unknown_column_message(self):
        with pytest.raises(EngineError) as excinfo:
            items().project(["k", "ghost"])
        assert "cannot project unknown columns ['ghost']" in str(excinfo.value)

    def test_rename_shares_columns(self):
        relation = items()
        renamed = relation.rename_columns({"k": "key"})
        assert renamed.columns["key"] is relation.columns["k"]
        assert renamed.attribute_names() == ["key", "cat", "price"]

    def test_head(self):
        assert items().head(2).columns["k"] == [1, 2]
        assert items().head(0).length == 0
        assert items().head(10).length == 4


class TestBatchOperators:
    def test_take_reorders(self):
        taken = items().take([2, 0])
        assert taken.columns["k"] == [3, 1]

    def test_distinct_keeps_first_occurrence(self):
        relation = ColumnarRelation(
            schema={"x": STR},
            columns={"x": ["a", "b", "a", "c", "b"]},
        )
        assert relation.distinct().columns["x"] == ["a", "b", "c"]

    def test_distinct_without_duplicates_returns_self(self):
        relation = items()
        assert relation.distinct() is relation

    def test_sorted_by_nulls_first_and_descending(self):
        relation = items()
        ascending = relation.sorted_by(["price"])
        assert ascending.columns["price"] == [None, 5.0, 10.0, 20.0]
        descending = relation.sorted_by(["price"], descending=True)
        assert descending.columns["price"] == [20.0, 10.0, 5.0, None]

    def test_sorted_by_unknown_column_message(self):
        with pytest.raises(EngineError) as excinfo:
            items().sorted_by(["ghost"])
        assert "cannot sort by unknown columns ['ghost']" in str(excinfo.value)

    def test_concat(self):
        relation = items()
        doubled = relation.concat(relation)
        assert doubled.length == 8
        assert doubled.columns["k"] == [1, 2, 3, 4, 1, 2, 3, 4]


class TestHashJoin:
    def cats(self):
        return ColumnarRelation(
            schema={"cat": STR, "label": STR},
            columns={"cat": ["a", "b"], "label": ["Alpha", "Beta"]},
        )

    def test_inner_join_single_key(self):
        joined = hash_join(
            items(),
            self.cats(),
            ["cat"],
            ["cat"],
            ["label"],
            {"k": INT, "cat": STR, "price": DEC, "label": STR},
        )
        assert joined.columns["k"] == [1, 2, 3]
        assert joined.columns["label"] == ["Alpha", "Alpha", "Beta"]

    def test_left_outer_join_null_payload(self):
        joined = hash_join(
            items(),
            self.cats(),
            ["cat"],
            ["cat"],
            ["label"],
            {"k": INT, "cat": STR, "price": DEC, "label": STR},
            left_outer=True,
        )
        assert joined.columns["k"] == [1, 2, 3, 4]
        assert joined.columns["label"][-1] is None

    def test_duplicate_right_keys_fan_out_in_order(self):
        right = ColumnarRelation(
            schema={"cat": STR, "label": STR},
            columns={"cat": ["a", "a"], "label": ["first", "second"]},
        )
        joined = hash_join(
            items(),
            right,
            ["cat"],
            ["cat"],
            ["label"],
            {"k": INT, "cat": STR, "price": DEC, "label": STR},
        )
        assert joined.columns["k"] == [1, 1, 2, 2]
        assert joined.columns["label"] == ["first", "second"] * 2

    def test_multi_column_key(self):
        left = ColumnarRelation(
            schema={"a": INT, "b": INT},
            columns={"a": [1, 1, None], "b": [1, 2, 1]},
        )
        right = ColumnarRelation(
            schema={"a": INT, "b": INT, "v": STR},
            columns={"a": [1, 1], "b": [2, 1], "v": ["x", "y"]},
        )
        joined = hash_join(
            left, right, ["a", "b"], ["a", "b"], ["v"],
            {"a": INT, "b": INT, "v": STR},
        )
        assert joined.columns["v"] == ["y", "x"]


class TestHashAggregate:
    def test_grouped(self):
        result = hash_aggregate(
            items(),
            ("cat",),
            (AggregationSpec("total", "SUM", "price"),
             AggregationSpec("n", "COUNT", "price")),
            {"cat": STR, "total": DEC, "n": INT},
        )
        assert result.columns["cat"] == ["a", "b", None]
        assert result.columns["total"] == [30.0, 5.0, None]
        assert result.columns["n"] == [2, 1, 0]

    def test_global_on_empty_input(self):
        empty = ColumnarRelation(
            schema={"x": INT}, columns={"x": []}, length=0
        )
        result = hash_aggregate(
            empty,
            (),
            (AggregationSpec("n", "COUNT", "x"),),
            {"n": INT},
        )
        assert result.rows == [{"n": 0}]


class TestSurrogateAndAggregateValues:
    def test_surrogate_keys_dense(self):
        keys = surrogate_keys(items(), ("cat",))
        assert keys == [1, 1, 2, 3]

    def test_aggregate_values(self):
        assert aggregate_values("COUNT", []) == 0
        assert aggregate_values("SUM", []) is None
        assert aggregate_values("AVERAGE", [1, 3]) == 2
        assert aggregate_values("MIN", [4, 2]) == 2
        assert aggregate_values("MAX", [4, 2]) == 4
        with pytest.raises(ExecutionError):
            aggregate_values("MEDIAN", [1])
