"""Partitioned kernels for the parallel columnar engine.

``Executor(mode="parallel")`` splits each relation into contiguous
row-range chunks and drives the per-chunk kernels below across a worker
pool.  The contract of every kernel is **byte-identical results** to
the serial columnar engine:

* Chunks are contiguous and processed results are merged *in chunk
  order*, so row order — and with it NULL placement, sort stability
  and ``distinct``/group first-occurrence order — is exactly the
  serial order.
* Join probes run against one serially-built right-side index; each
  chunk emits global row positions, so the merged output is the serial
  ``left order × right insertion order``.
* Aggregation parallelises only the grouping scan.  Chunks return
  *member position lists*, merged order-preservingly into the serial
  group layout; the aggregate functions then fold the exact serial
  value sequences, which keeps floating-point results bit-identical
  (float addition is not associative — merging partial sums would
  not be).
* Errors keep parity: chunk results are collected in chunk order and
  the earliest chunk's exception wins, which is the chunk holding the
  globally-first failing row; unhashable-key reporting scans the full
  key columns (:func:`repro.engine.columnar.unhashable_key_error`), so
  messages are independent of which chunk tripped first.

The kernels are pure functions over explicit arguments.  The executor
runs them on a :class:`~concurrent.futures.ThreadPoolExecutor`: on
CPython the chunks then share the column arrays zero-copy and the GIL
bounds the speedup by the interpreter's ability to overlap work — the
kernel shape is deliberately process-pool-ready (no shared mutable
state) for runtimes and machines where that pays.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.columnar import ColumnarRelation

#: Default worker-pool width of ``Executor(mode="parallel")``.
DEFAULT_WORKERS = 4

#: Relations smaller than this run on the serial columnar kernels —
#: below it, chunk bookkeeping costs more than the scan itself.
DEFAULT_PARALLEL_ROW_THRESHOLD = 4096


def chunk_ranges(length: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(length)`` into ``workers`` contiguous ranges.

    Sizes differ by at most one row; fewer ranges come back when there
    are fewer rows than workers.  A single range signals the caller to
    stay on the serial path.
    """
    if workers <= 1 or length <= 1:
        return [(0, length)]
    count = min(workers, length)
    base, extra = divmod(length, count)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def slice_relation(
    relation: ColumnarRelation, start: int, stop: int
) -> ColumnarRelation:
    """The rows ``[start, stop)`` as a relation (column-slice copies)."""
    return ColumnarRelation(
        schema=dict(relation.schema),
        columns={
            name: column[start:stop]
            for name, column in relation.columns.items()
        },
        length=stop - start,
    )


def concat_parts(
    schema: Dict[str, object], parts: List[ColumnarRelation]
) -> ColumnarRelation:
    """Merge chunk results in chunk order (one pass per column)."""
    columns: Dict[str, list] = {name: [] for name in schema}
    length = 0
    for part in parts:
        for name in schema:
            columns[name].extend(part.columns[name])
        length += part.length
    return ColumnarRelation(
        schema=dict(schema), columns=columns, length=length
    )


# -- selection / derivation ---------------------------------------------------


def filter_chunk(
    function, argument_columns: List[list], start: int, stop: int
) -> List[int]:
    """Global positions of the chunk's rows the predicate keeps."""
    chunk = [column[start:stop] for column in argument_columns]
    return [
        start + offset
        for offset, value in enumerate(map(function, *chunk))
        if value is True
    ]


def derive_chunk(
    function, argument_columns: List[list], start: int, stop: int
) -> list:
    """The derived values of the chunk's rows, in row order."""
    chunk = [column[start:stop] for column in argument_columns]
    return list(map(function, *chunk))


# -- join ---------------------------------------------------------------------


def build_join_index(right: ColumnarRelation, right_keys: List[str]):
    """The serial right-side index the probe chunks share.

    Single-column keys keep the unique/duplicates split of the serial
    kernel (so the no-duplicate fast path survives partitioning); tuple
    keys build the position-list index.  ``TypeError`` on unhashable
    keys propagates for the caller to wrap.
    """
    if len(right_keys) == 1:
        unique: Dict[object, int] = {}
        duplicates: Dict[object, List[int]] = {}
        for position, key in enumerate(right.columns[right_keys[0]]):
            if key is None:
                continue
            if key in unique:
                duplicates.setdefault(key, [unique[key]]).append(position)
            else:
                unique[key] = position
        return ("single", unique, duplicates)
    index: Dict[tuple, List[int]] = {}
    key_columns = [right.columns[key] for key in right_keys]
    for position, key in enumerate(zip(*key_columns)):
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(position)
    return ("multi", index)


def _probe_chunk(
    index,
    left: ColumnarRelation,
    left_keys: List[str],
    left_outer: bool,
    start: int,
    stop: int,
) -> Tuple[List[int], List[int]]:
    """Matched (left, right) global position pairs for one left chunk."""
    left_take: List[int] = []
    right_take: List[int] = []  # -1 marks an outer-join NULL slot
    if index[0] == "single":
        __, unique, duplicates = index
        key_column = left.columns[left_keys[0]]
        if not duplicates and not left_outer:
            get = unique.get
            for position in range(start, stop):
                key = key_column[position]
                if key is None:
                    continue
                match = get(key)
                if match is not None:
                    left_take.append(position)
                    right_take.append(match)
            return left_take, right_take
        for position in range(start, stop):
            key = key_column[position]
            matches = None
            if key is not None:
                matches = duplicates.get(key)
                if matches is None and key in unique:
                    left_take.append(position)
                    right_take.append(unique[key])
                    continue
            if matches:
                for match in matches:
                    left_take.append(position)
                    right_take.append(match)
            elif left_outer:
                left_take.append(position)
                right_take.append(-1)
        return left_take, right_take
    __, mapping = index
    key_columns = [left.columns[key][start:stop] for key in left_keys]
    for offset, key in enumerate(zip(*key_columns)):
        position = start + offset
        matches = (
            mapping.get(key)
            if not any(part is None for part in key)
            else None
        )
        if matches:
            for match in matches:
                left_take.append(position)
                right_take.append(match)
        elif left_outer:
            left_take.append(position)
            right_take.append(-1)
    return left_take, right_take


def join_chunk(
    index,
    left: ColumnarRelation,
    right: ColumnarRelation,
    left_keys: List[str],
    payload: List[str],
    schema: Dict[str, object],
    left_outer: bool,
    start: int,
    stop: int,
) -> ColumnarRelation:
    """Probe one left chunk and gather its slice of the join output."""
    left_take, right_take = _probe_chunk(
        index, left, left_keys, left_outer, start, stop
    )
    columns: Dict[str, list] = {
        name: [column[i] for i in left_take]
        for name, column in left.columns.items()
    }
    has_outer_slots = left_outer and -1 in right_take
    for name in payload:
        column = right.columns[name]
        if has_outer_slots:
            columns[name] = [
                column[j] if j >= 0 else None for j in right_take
            ]
        else:
            columns[name] = [column[j] for j in right_take]
    return ColumnarRelation(
        schema=dict(schema), columns=columns, length=len(left_take)
    )


# -- aggregation --------------------------------------------------------------


def group_chunk(
    group_columns: List[list], start: int, stop: int
) -> Tuple[List[tuple], List[List[int]]]:
    """Group one chunk: local first-seen key order, global positions.

    ``TypeError`` on unhashable group keys propagates for the caller to
    wrap.
    """
    chunk_columns = [column[start:stop] for column in group_columns]
    group_of: Dict[tuple, int] = {}
    keys_in_order: List[tuple] = []
    members: List[List[int]] = []
    for offset, key in enumerate(zip(*chunk_columns)):
        slot = group_of.get(key)
        if slot is None:
            group_of[key] = slot = len(members)
            keys_in_order.append(key)
            members.append([])
        members[slot].append(start + offset)
    return keys_in_order, members


def merge_group_chunks(
    parts: List[Tuple[List[tuple], List[List[int]]]],
) -> Tuple[List[tuple], List[List[int]]]:
    """Fold chunk groupings into the serial group layout.

    Chunk-order iteration over chunk-local first-seen key orders yields
    the global first-seen order; extending member lists in the same
    sweep keeps every group's positions in ascending row order — the
    aggregate fold then consumes exactly the serial value sequences.
    """
    group_of: Dict[tuple, int] = {}
    keys_in_order: List[tuple] = []
    members: List[List[int]] = []
    for chunk_keys, chunk_members in parts:
        for key, positions in zip(chunk_keys, chunk_members):
            slot = group_of.get(key)
            if slot is None:
                group_of[key] = len(members)
                keys_in_order.append(key)
                members.append(positions)
            else:
                members[slot].extend(positions)
    return keys_in_order, members


# -- fused chains -------------------------------------------------------------


def run_chain_chunk(program, relation: ColumnarRelation, start: int, stop: int):
    """Run a fused chain program over one chunk of its input."""
    return program.run(slice_relation(relation, start, stop))
