"""The committed waiver file for intentional concurrency findings.

Findings the analyzer raises but the code *means* (e.g. the artifact
bus delivering to subscribers under its own lock — synchronous
delivery is the bus contract) are recorded in ``codelint-waivers.json``
at the repo root, one entry per finding fingerprint with a mandatory
human justification:

.. code-block:: json

    {
      "waivers": [
        {
          "fingerprint": "QRY903:ArtifactBus.publish:bus publish",
          "reason": "subscribers run under the bus lock by design; ..."
        }
      ]
    }

Fingerprints are line-number-free (rule + qualname + finding-specific
key), so waivers survive unrelated edits.  Stale waivers — entries
whose fingerprint no longer matches any finding — are reported by the
CLI so the file cannot quietly rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.errors import QuarryError


@dataclass(frozen=True)
class Waiver:
    fingerprint: str
    reason: str


def load_waivers(path: Optional[Path]) -> Dict[str, Waiver]:
    """Load a waiver file; missing path -> no waivers."""
    if path is None:
        return {}
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise QuarryError(f"{path}: invalid waiver file: {exc}") from exc
    entries = payload.get("waivers") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise QuarryError(f"{path}: waiver file needs a 'waivers' list")
    waivers: Dict[str, Waiver] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise QuarryError(f"{path}: waiver entries must be objects")
        fingerprint = entry.get("fingerprint")
        reason = entry.get("reason", "").strip()
        if not fingerprint:
            raise QuarryError(f"{path}: waiver entry missing 'fingerprint'")
        if not reason:
            raise QuarryError(
                f"{path}: waiver {fingerprint!r} has no justification; "
                f"every waiver needs a 'reason'"
            )
        if fingerprint in waivers:
            raise QuarryError(f"{path}: duplicate waiver {fingerprint!r}")
        waivers[fingerprint] = Waiver(fingerprint=fingerprint, reason=reason)
    return waivers


def default_waiver_path() -> Optional[Path]:
    """``codelint-waivers.json`` next to the repo's pyproject, if any."""
    here = Path(__file__).resolve()
    for ancestor in here.parents:
        candidate = ancestor / "codelint-waivers.json"
        if candidate.exists():
            return candidate
        if (ancestor / "pyproject.toml").exists():
            return candidate  # canonical location even when absent
    return None
