"""Unit tests for the expression tokeniser."""

import pytest

from repro.errors import LexError
from repro.expressions.lexer import TokenKind, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def texts(text):
    return [token.text for token in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_end(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.END

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "42"

    def test_decimal_literal(self):
        tokens = tokenize("3.14")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "3.14"

    def test_number_followed_by_dot_does_not_swallow_dot(self):
        # "1." is a number then an error: the dot is not part of the number.
        with pytest.raises(LexError):
            tokenize("1.")

    def test_string_literal(self):
        tokens = tokenize("'Spain'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "Spain"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].text == "O'Brien"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_identifier(self):
        tokens = tokenize("l_extendedprice")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].text == "l_extendedprice"

    def test_qualified_identifier_keeps_dot(self):
        tokens = tokenize("Part.p_name")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].text == "Part.p_name"

    def test_identifier_case_is_preserved(self):
        tokens = tokenize("Nation_N_Name")
        assert tokens[0].text == "Nation_N_Name"


class TestKeywordsAndOperators:
    @pytest.mark.parametrize("word", ["and", "or", "not", "in", "true", "false", "null"])
    def test_keywords_lowercase(self, word):
        tokens = tokenize(word)
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == word

    @pytest.mark.parametrize("word", ["AND", "Or", "NOT", "In", "TRUE", "NULL"])
    def test_keywords_are_case_insensitive(self, word):
        tokens = tokenize(word)
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == word.lower()

    @pytest.mark.parametrize(
        "operator", ["=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%"]
    )
    def test_operators(self, operator):
        tokens = tokenize(operator)
        assert tokens[0].kind is TokenKind.OPERATOR
        assert tokens[0].text == operator

    def test_sql_not_equal_normalised(self):
        tokens = tokenize("a <> b")
        assert tokens[1].text == "!="

    def test_two_char_operators_not_split(self):
        assert texts("a <= b") == ["a", "<=", "b"]

    def test_punctuation(self):
        assert kinds("(a, b)")[:5] == [
            TokenKind.LPAREN,
            TokenKind.IDENTIFIER,
            TokenKind.COMMA,
            TokenKind.IDENTIFIER,
            TokenKind.RPAREN,
        ]


class TestWhitespaceAndPositions:
    def test_whitespace_is_skipped(self):
        assert texts("  a  +\tb\n") == ["a", "+", "b"]

    def test_positions_point_into_source(self):
        tokens = tokenize("ab + cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
        assert tokens[2].position == 5

    def test_lex_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a ? b")
        assert excinfo.value.position == 2


class TestRealisticExpressions:
    def test_paper_revenue_measure(self):
        # The measure from Figure 4 of the paper.
        words = texts("Lineitem_l_extendedprice * Lineitem_l_discount")
        assert words == [
            "Lineitem_l_extendedprice",
            "*",
            "Lineitem_l_discount",
        ]

    def test_paper_slicer(self):
        words = texts("Nation_n_name = 'Spain'")
        assert words == ["Nation_n_name", "=", "Spain"]

    def test_date_keyword(self):
        tokens = tokenize("date '1995-01-01'")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[0].text == "date"
        assert tokens[1].kind is TokenKind.STRING
