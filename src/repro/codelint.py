"""Concurrency lint front door: ``python -m repro.codelint``.

Runs the QRY9xx concurrency analyzer over the ``repro`` package itself
(or explicit paths) and exits non-zero on unwaived ERROR findings:

.. code-block:: console

    $ python -m repro.codelint                    # the whole package
    $ python -m repro.codelint src/repro/serve    # a subtree
    $ python -m repro.codelint --json             # machine-readable
    $ python -m repro.codelint --graph            # may-acquire-under graph
    $ python -m repro.codelint --list-rules       # shared rule catalog

Waivers live in ``codelint-waivers.json`` at the repo root (see
:mod:`repro.analysis.concurrency.waivers`); ``--waivers`` overrides
the location, ``--no-waivers`` ignores the file entirely.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import repro.analysis.concurrency.rules  # noqa: F401  (registers QRY9xx)
from repro.analysis.concurrency.driver import (
    analyze_paths,
    code_lint,
    repro_package_root,
)
from repro.analysis.concurrency.waivers import default_waiver_path, load_waivers
from repro.analysis.diagnostics import all_rules, rule_by_code
from repro.errors import QuarryError


def _collect(paths: List[str]) -> List[Path]:
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    return collected


def _list_rules() -> int:
    for rule in all_rules():
        print(
            f"{rule.code}  {rule.severity.value:<7}  {rule.target:<4}  "
            f"{rule.title}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.codelint",
        description="Concurrency-discipline static analysis (QRY9xx).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python files or directories (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object instead of text",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="print the static may-acquire-under graph and exit",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="CODE",
        help="disable a rule by code (repeatable)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="CODE",
        help="run only the given rule codes (repeatable)",
    )
    parser.add_argument(
        "--waivers",
        metavar="FILE",
        default=None,
        help="waiver file (default: codelint-waivers.json at repo root)",
    )
    parser.add_argument(
        "--no-waivers",
        action="store_true",
        help="ignore the waiver file",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the shared rule catalog and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    for code in list(args.disable) + list(args.only or []):
        try:
            rule_by_code(code)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.paths:
        paths = _collect(args.paths)
        root = None
    else:
        root = repro_package_root()
        paths = sorted(root.rglob("*.py"))
    try:
        context = analyze_paths(paths, root=root)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.graph:
        print(json.dumps(context.static_graph(), indent=2))
        return 0
    if args.no_waivers:
        waivers = {}
    else:
        waiver_path = (
            Path(args.waivers) if args.waivers else default_waiver_path()
        )
        try:
            waivers = load_waivers(waiver_path)
        except QuarryError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report, waived, unused = code_lint(
        context,
        disable=args.disable,
        only=args.only,
        waivers=waivers,
    )
    if args.as_json:
        payload = report.to_json()
        payload["waived"] = [d.to_json() for d in waived]
        payload["unused_waivers"] = unused
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if waived:
            print(f"  ({len(waived)} finding(s) waived)")
        for fingerprint in unused:
            print(f"  stale waiver (matches nothing): {fingerprint}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
