"""Domain ontologies capturing the semantics of underlying data sources.

Quarry uses a domain ontology (OWL + Jena in the original system) as the
shared vocabulary between end-users and data sources: requirements are
phrased over ontology concepts, and source schema mappings bind those
concepts to concrete tables and columns.  This package provides:

* :mod:`repro.ontology.model` — concepts, datatype properties, object
  properties with multiplicities, and the :class:`Ontology` container,
* :mod:`repro.ontology.graph` — graph algorithms over object properties
  (to-one paths, reachability, shortest join paths),
* :mod:`repro.ontology.reasoner` — subsumption closure and inference of
  inherited properties,
* :mod:`repro.ontology.io` — a compact functional-style text
  serialisation (parse + render),
* :mod:`repro.ontology.d3` — D3-compatible JSON graph export for the
  Requirements Elicitor front-end,
* :mod:`repro.ontology.builder` — a fluent builder for defining
  ontologies in code.
"""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import OntologyGraph
from repro.ontology.model import (
    Concept,
    DatatypeProperty,
    Multiplicity,
    ObjectProperty,
    Ontology,
)
from repro.ontology.reasoner import Reasoner

__all__ = [
    "Concept",
    "DatatypeProperty",
    "Multiplicity",
    "ObjectProperty",
    "Ontology",
    "OntologyBuilder",
    "OntologyGraph",
    "Reasoner",
]
