"""The communication & metadata layer's storage repository.

The original system "uses a MongoDB instance as a storage repository"
(§2.6).  This package provides the embedded equivalent:

* :mod:`repro.repository.documents` — a document store with Mongo-style
  filter queries over nested JSON documents,
* :mod:`repro.repository.store` — JSON-file persistence of a store,
* :mod:`repro.repository.metadata` — the typed metadata catalog Quarry
  components read and write (requirements, partial/unified designs,
  ontologies, mappings), with XML↔JSON conversion at the boundary.
"""

from repro.repository.documents import Collection, DocumentStore
from repro.repository.metadata import MetadataRepository

__all__ = ["Collection", "DocumentStore", "MetadataRepository"]
