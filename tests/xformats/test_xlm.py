"""Unit tests for the xLM format."""

import pytest

from repro.errors import XlmFormatError
from repro.xformats import xlm

from tests.etlmodel.conftest import build_revenue_flow


class TestSerialisation:
    def test_figure3_shape(self):
        text = xlm.dumps(build_revenue_flow())
        assert "<design>" in text
        assert "<metadata>" in text
        assert "<from>DATASTORE_lineitem</from>" in text
        assert "<enabled>Y</enabled>" in text
        assert "<type>Datastore</type>" in text
        assert "<optype>TableInput</optype>" in text

    def test_roundtrip_preserves_structure(self):
        flow = build_revenue_flow()
        parsed = xlm.loads(xlm.dumps(flow))
        assert parsed.name == flow.name
        assert parsed.requirements == flow.requirements
        assert set(parsed.node_names()) == set(flow.node_names())
        assert [(e.source, e.target) for e in parsed.edges()] == [
            (e.source, e.target) for e in flow.edges()
        ]

    def test_roundtrip_preserves_operations_exactly(self):
        flow = build_revenue_flow()
        parsed = xlm.loads(xlm.dumps(flow))
        for name in flow.node_names():
            assert parsed.node(name) == flow.node(name)

    def test_roundtrip_is_stable(self):
        text = xlm.dumps(build_revenue_flow())
        assert xlm.dumps(xlm.loads(text)) == text

    def test_roundtripped_flow_still_executes(self, tmp_path):
        from repro.engine import Database, Executor
        from repro.sources import tpch

        database = Database()
        database.load_source(tpch.schema(), tpch.generate(0.1, seed=3))
        flow = xlm.loads(xlm.dumps(build_revenue_flow()))
        stats = Executor(database).execute(flow)
        assert stats.loaded.get("fact_table_revenue", 0) >= 0
        assert database.has_table("fact_table_revenue")

    def test_all_operation_kinds_roundtrip(self):
        from repro.etlmodel import (
            Datastore, DerivedAttribute, EtlFlow, Extraction, Join, Loader,
            Projection, Rename, Selection, Sort, SurrogateKey, UnionOp,
            Aggregation, AggregationSpec,
        )

        flow = EtlFlow("all_ops", requirements={"IR9"})
        flow.add(Datastore("d1", table="t1", columns=("a", "b")))
        flow.add(Datastore("d2", table="t2", columns=("a", "c")))
        flow.add(Selection("sel", predicate="a > 1 and b = 'x'"))
        flow.add(Projection("proj", columns=("a", "b")))
        flow.add(Extraction("ext", columns=("a", "c")))
        flow.add(Join("join", left_keys=("a",), right_keys=("a",), join_type="left"))
        flow.add(Rename("ren", renaming=(("b", "bb"), ("c", "cc"))))
        flow.add(DerivedAttribute("der", output="d", expression="a * 2"))
        flow.add(Aggregation(
            "agg", group_by=("bb",),
            aggregates=(
                AggregationSpec("s", "SUM", "d"),
                AggregationSpec("n", "COUNT", "a"),
            ),
        ))
        flow.add(SurrogateKey("sk", output="id", business_keys=("bb",)))
        flow.add(Sort("sort", keys=("id",)))
        flow.add(Loader("load", table="out", mode="replace"))
        flow.add(UnionOp("union"))
        flow.add(Datastore("d3", table="t1", columns=("a", "b")))
        flow.connect("d1", "sel")
        flow.connect("sel", "proj")
        flow.connect("d2", "ext")
        flow.connect("proj", "join")
        flow.connect("ext", "join")
        flow.connect("join", "ren")
        flow.connect("ren", "der")
        flow.connect("der", "agg")
        flow.connect("agg", "sk")
        flow.connect("sk", "sort")
        flow.connect("d3", "union")
        flow.connect("sort", "union")
        flow.connect("union", "load")
        parsed = xlm.loads(xlm.dumps(flow))
        for name in flow.node_names():
            assert parsed.node(name) == flow.node(name)

    def test_sort_descending_roundtrip(self):
        """``descending`` must survive the round-trip in both states —
        a dropped flag silently flips every descending sort."""
        from repro.etlmodel import Datastore, EtlFlow, Loader, Sort

        flow = EtlFlow("sorted")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b")),
            Sort("desc", keys=("a", "b"), descending=True),
            Sort("asc", keys=("b",)),
            Loader("load", table="out"),
        )
        parsed = xlm.loads(xlm.dumps(flow))
        assert parsed.node("desc") == flow.node("desc")
        assert parsed.node("desc").descending is True
        assert parsed.node("asc").descending is False
        assert xlm.dumps(parsed) == xlm.dumps(flow)


class TestParsingErrors:
    def test_not_xml(self):
        with pytest.raises(XlmFormatError):
            xlm.loads("nope")

    def test_wrong_root(self):
        with pytest.raises(XlmFormatError):
            xlm.loads("<flow/>")

    def test_missing_metadata(self):
        with pytest.raises(XlmFormatError):
            xlm.loads("<design/>")

    def test_unknown_node_type(self):
        text = (
            "<design><metadata><name>f</name></metadata>"
            "<nodes><node><name>x</name><type>Bogus</type>"
            "<optype>B</optype></node></nodes></design>"
        )
        with pytest.raises(XlmFormatError):
            xlm.loads(text)

    def test_malformed_aggregate_spec(self):
        text = (
            "<design><metadata><name>f</name></metadata>"
            "<nodes><node><name>x</name><type>Aggregation</type>"
            "<optype>GroupBy</optype><properties>"
            '<property name="groupBy">g</property>'
            '<property name="aggregates">bogus</property>'
            "</properties></node></nodes></design>"
        )
        with pytest.raises(XlmFormatError):
            xlm.loads(text)

    def test_malformed_renaming(self):
        text = (
            "<design><metadata><name>f</name></metadata>"
            "<nodes><node><name>x</name><type>Rename</type>"
            "<optype>SelectValues</optype><properties>"
            '<property name="renaming">nonsense</property>'
            "</properties></node></nodes></design>"
        )
        with pytest.raises(XlmFormatError):
            xlm.loads(text)

    def test_edge_to_unknown_node(self):
        from repro.errors import UnknownOperationError

        text = (
            "<design><metadata><name>f</name></metadata>"
            "<edges><edge><from>a</from><to>b</to>"
            "<enabled>Y</enabled></edge></edges><nodes/></design>"
        )
        with pytest.raises(UnknownOperationError):
            xlm.loads(text)
