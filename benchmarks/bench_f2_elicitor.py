"""F2 — the Requirements Elicitor (Figure 2).

Regenerates Figure 2's behaviour: for the TPC-H ontology and the
Lineitem focus, the system suggests Supplier, Nation and Part among the
analytical perspectives; the D3 graph document marks exactly the
suggested concepts.  Also measures the suggestion latency as the
ontology grows (synthetic ontologies scale the graph size).
"""

import pytest

from repro.core.requirements import Elicitor
from repro.expressions import ScalarType
from repro.ontology import OntologyBuilder
from repro.sources import tpch


@pytest.fixture(scope="module")
def elicitor():
    return Elicitor(tpch.ontology())


def synthetic_ontology(branches: int, depth: int):
    """A star of to-one chains around one central event concept."""
    builder = OntologyBuilder(f"synthetic_{branches}x{depth}")
    builder.concept("Event")
    builder.attribute("Event_value", "Event", ScalarType.DECIMAL)
    for branch in range(branches):
        previous = "Event"
        for level in range(depth):
            concept = f"C{branch}_{level}"
            builder.concept(concept)
            builder.attribute(
                f"{concept}_name", concept, ScalarType.STRING
            )
            builder.relationship(
                f"{previous}_to_{concept}", previous, concept, "N-1"
            )
            previous = concept
    return builder.build()


class TestFigure2Shape:
    def test_paper_suggestions_present(self, elicitor):
        suggested = {
            s.element_id for s in elicitor.suggest_dimensions("Lineitem")
        }
        assert {"Supplier", "Nation", "Part"} <= suggested

    def test_lineitem_is_the_top_fact(self, elicitor):
        assert elicitor.suggest_facts()[0].element_id == "Lineitem"

    def test_graph_document_matches_suggestions(self, elicitor):
        document = elicitor.graph_document(highlight="Lineitem")
        marked = {n["id"] for n in document["nodes"] if n["suggested"]}
        suggested = {
            s.element_id for s in elicitor.suggest_dimensions("Lineitem")
        }
        assert marked == suggested

    def test_measures_rank_focus_attributes_first(self, elicitor):
        # Lineitem has four numeric attributes; they outrank any measure
        # candidate reached over a to-one hop.
        top = [s.element_id for s in elicitor.suggest_measures("Lineitem")[:4]]
        assert all(name.startswith("Lineitem_") for name in top)


class TestLatency:
    def test_tpch_perspective_latency(self, benchmark, elicitor):
        benchmark.group = "F2 elicitor"
        benchmark.name = "tpch perspective"
        perspective = benchmark(
            lambda: elicitor.suggest_perspective("Lineitem")
        )
        assert perspective["dimensions"]

    @pytest.mark.parametrize("branches,depth", [(5, 3), (20, 4), (50, 5)])
    def test_scaling_with_ontology_size(self, benchmark, branches, depth):
        ontology = synthetic_ontology(branches, depth)
        elicitor = Elicitor(ontology)
        benchmark.group = "F2 elicitor scaling"
        benchmark.name = f"{branches * depth + 1} concepts"
        suggestions = benchmark(
            lambda: elicitor.suggest_dimensions("Event", limit=1000)
        )
        assert len(suggestions) == branches * depth

    def test_d3_export_latency(self, benchmark, elicitor):
        benchmark.group = "F2 elicitor"
        benchmark.name = "d3 export"
        document = benchmark(
            lambda: elicitor.graph_document(highlight="Lineitem")
        )
        assert len(document["nodes"]) == 8
