"""Property-based tests of cross-module invariants.

* flow optimisation (normalize, prune_columns) never changes results,
* the document store's query language agrees with a naive reference
  implementation,
* XML↔JSON conversion is lossless on arbitrary trees,
* ontology to-one closures only return valid functional paths.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine import Database, Executor, TableDef
from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Extraction,
    Loader,
    Selection,
)
from repro.etlmodel.equivalence import normalize, prune_columns
from repro.expressions import ScalarType

INT = ScalarType.INTEGER
STR = ScalarType.STRING

# ---------------------------------------------------------------------------
# Random linear flows over a small fixed table
# ---------------------------------------------------------------------------

COLUMNS = ("a", "b", "c")

rows_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "a": st.integers(min_value=0, max_value=5),
            "b": st.integers(min_value=0, max_value=5),
            "c": st.sampled_from(["x", "y", "z"]),
        }
    ),
    min_size=0,
    max_size=25,
)


def _selection(index, column, value):
    if column == "c":
        return Selection(f"sel{index}", predicate=f"c = '{value[1]}'")
    return Selection(f"sel{index}", predicate=f"{column} >= {value[0]}")


middle_stage = st.one_of(
    st.tuples(
        st.just("sel"),
        st.sampled_from(COLUMNS),
        st.tuples(st.integers(min_value=0, max_value=5), st.sampled_from("xyz")),
    ),
    st.tuples(st.just("derive"), st.sampled_from(["a", "b"]), st.none()),
    st.tuples(st.just("extract"), st.none(), st.none()),
)

stages_strategy = st.lists(middle_stage, min_size=0, max_size=4)


def build_random_flow(stages):
    """A linear flow: scan -> random unary stages -> aggregation -> load.

    Derived columns get fresh names; extraction keeps all live columns
    (so later stages stay valid regardless of order).
    """
    flow = EtlFlow("random")
    live = list(COLUMNS)
    chain = [Datastore("src", table="t", columns=COLUMNS)]
    for index, (kind, column, value) in enumerate(stages):
        if kind == "sel":
            chain.append(_selection(index, column, value))
        elif kind == "derive":
            output = f"d{index}"
            chain.append(
                DerivedAttribute(
                    f"derive{index}", output=output,
                    expression=f"{column} + 1",
                )
            )
            live.append(output)
        else:
            chain.append(Extraction(f"extract{index}", columns=tuple(live)))
    chain.append(
        Aggregation(
            "agg",
            group_by=("c",),
            aggregates=(
                AggregationSpec("total", "SUM", "a"),
                AggregationSpec("n", "COUNT", "b"),
            ),
        )
    )
    chain.append(Loader("load", table="out"))
    flow.chain(*chain)
    return flow


def run_flow(flow, rows):
    database = Database()
    database.create_table(TableDef("t", {"a": INT, "b": INT, "c": STR}))
    database.insert_many("t", rows)
    Executor(database).execute(flow)
    result = database.scan("out").rows
    return sorted(
        (row["c"], row["total"], row["n"]) for row in result
    )


class TestFlowOptimisationSemantics:
    @given(stages_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_normalize_preserves_results(self, stages, rows):
        flow = build_random_flow(stages)
        assert run_flow(normalize(flow), rows) == run_flow(flow, rows)

    @given(stages_strategy, rows_strategy)
    @settings(max_examples=60, deadline=None)
    def test_prune_preserves_results(self, stages, rows):
        flow = build_random_flow(stages)
        assert run_flow(prune_columns(flow), rows) == run_flow(flow, rows)

    @given(stages_strategy, rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_normalize_then_prune_preserves_results(self, stages, rows):
        flow = build_random_flow(stages)
        optimised = prune_columns(normalize(flow))
        assert run_flow(optimised, rows) == run_flow(flow, rows)

    @given(stages_strategy)
    @settings(max_examples=60, deadline=None)
    def test_optimised_flows_stay_structurally_valid(self, stages):
        flow = build_random_flow(stages)
        assert normalize(flow).validate() == []
        assert prune_columns(flow).validate() == []

    @given(stages_strategy, rows_strategy)
    @settings(max_examples=30, deadline=None)
    def test_xlm_roundtrip_preserves_results(self, stages, rows):
        from repro.xformats import xlm

        flow = build_random_flow(stages)
        reloaded = xlm.loads(xlm.dumps(flow))
        assert run_flow(reloaded, rows) == run_flow(flow, rows)


# ---------------------------------------------------------------------------
# Document store query semantics vs. a naive reference
# ---------------------------------------------------------------------------

documents_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "kind": st.sampled_from(["md", "etl", "req"]),
            "cost": st.integers(min_value=0, max_value=50),
            "meta": st.fixed_dictionaries(
                {"author": st.sampled_from(["ann", "bob", "cat"])}
            ),
        }
    ),
    min_size=0,
    max_size=20,
)

query_strategy = st.one_of(
    st.fixed_dictionaries({"kind": st.sampled_from(["md", "etl", "req"])}),
    st.fixed_dictionaries(
        {"cost": st.fixed_dictionaries({"$gt": st.integers(0, 50)})}
    ),
    st.fixed_dictionaries(
        {"cost": st.fixed_dictionaries({"$lte": st.integers(0, 50)})}
    ),
    st.fixed_dictionaries(
        {"meta.author": st.sampled_from(["ann", "bob", "cat", "zed"])}
    ),
    st.fixed_dictionaries(
        {
            "kind": st.fixed_dictionaries(
                {"$in": st.lists(st.sampled_from(["md", "etl"]), max_size=2)}
            )
        }
    ),
)


def naive_matches(document, query):
    for key, condition in query.items():
        value = document
        found = True
        for part in key.split("."):
            if isinstance(value, dict) and part in value:
                value = value[part]
            else:
                found = False
                break
        if isinstance(condition, dict):
            for op, expected in condition.items():
                if op == "$gt":
                    if not found or not value > expected:
                        return False
                elif op == "$lte":
                    if not found or not value <= expected:
                        return False
                elif op == "$in":
                    if not found or value not in expected:
                        return False
        else:
            if not found or value != condition:
                return False
    return True


class TestDocumentStoreSemantics:
    @given(documents_strategy, query_strategy)
    @settings(max_examples=120, deadline=None)
    def test_find_agrees_with_reference(self, documents, query):
        from repro.repository import Collection

        collection = Collection("c")
        for index, document in enumerate(documents):
            collection.insert({"_id": str(index), **document})
        got = {doc["_id"] for doc in collection.find(query)}
        expected = {
            str(index)
            for index, document in enumerate(documents)
            if naive_matches(document, query)
        }
        assert got == expected


# ---------------------------------------------------------------------------
# XML <-> JSON conversion on arbitrary trees
# ---------------------------------------------------------------------------

tags = st.sampled_from(["node", "design", "cube", "fact", "edge"])
texts = st.one_of(st.none(), st.text(alphabet="abc123 ", min_size=1, max_size=8))
attributes = st.dictionaries(
    st.sampled_from(["id", "name", "refID"]),
    st.text(alphabet="abcxyz0189", min_size=1, max_size=6),
    max_size=2,
)


def _trees(children):
    return st.builds(
        lambda tag, attrs, text, kids: {
            "tag": tag,
            "attributes": attrs,
            "text": text,
            "children": kids,
        },
        tags,
        attributes,
        texts,
        st.lists(children, max_size=3),
    )


tree_strategy = st.recursive(
    st.builds(
        lambda tag, attrs, text: {
            "tag": tag,
            "attributes": attrs,
            "text": text,
            "children": [],
        },
        tags,
        attributes,
        texts,
    ),
    _trees,
    max_leaves=15,
)


class TestXmlJsonRoundTrip:
    @given(tree_strategy)
    @settings(max_examples=100, deadline=None)
    def test_json_xml_json_is_identity(self, tree):
        from repro.xformats.xmljson import (
            dict_to_element,
            element_to_dict,
        )

        roundtripped = element_to_dict(dict_to_element(tree))
        assert roundtripped == _normalise(tree)


def _normalise(tree):
    """The converter drops whitespace-only text; mirror that."""
    text = tree["text"]
    if text is not None and not text.strip():
        text = None
    return {
        "tag": tree["tag"],
        "attributes": dict(tree["attributes"]),
        "text": text,
        "children": [_normalise(child) for child in tree["children"]],
    }


# ---------------------------------------------------------------------------
# Ontology graph invariants on random to-one forests
# ---------------------------------------------------------------------------

edges_strategy = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    max_size=25,
)


class TestOntologyClosureInvariants:
    @given(edges_strategy)
    @settings(max_examples=80, deadline=None)
    def test_closure_paths_are_functional_and_acyclic(self, edges):
        from repro.ontology import OntologyBuilder, OntologyGraph

        builder = OntologyBuilder("random")
        for index in range(15):
            builder.concept(f"C{index}")
        seen = set()
        for index, (source, target) in enumerate(edges):
            if source == target or (source, target) in seen:
                continue
            seen.add((source, target))
            builder.relationship(
                f"r{index}", f"C{source}", f"C{target}", "N-1"
            )
        graph = OntologyGraph(builder.build())
        for start in ("C0", "C7"):
            closure = graph.to_one_closure(start)
            for target, path in closure.items():
                assert path.source == start
                assert path.target == target
                assert path.is_to_one(graph.ontology)
                concepts = path.concepts()
                # Shortest paths never revisit a concept.
                assert len(concepts) == len(set(concepts))
