"""Mapping a requirement onto the domain ontology.

Decides the MD *roles* of the ontology elements a requirement touches:

* the **fact concept** — the subject of analysis; the concept owning the
  measure properties from which every dimension and slicer concept is
  reachable over a to-one path (so each fact instance determines exactly
  one coordinate per dimension: the MD base-granularity rule),
* per analysis dimension and slicer, the **to-one path** from the fact
  concept to the owning concept.

Ambiguities are resolved deterministically: candidate fact concepts are
ranked by (number of measure properties owned, to-one fan-out), and
paths are shortest-first in ontology declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.requirements.model import InformationRequirement
from repro.errors import InterpretationError
from repro.expressions import parse
from repro.ontology.graph import ConceptPath, OntologyGraph
from repro.ontology.model import Ontology


@dataclass
class RequirementMapping:
    """The resolved roles for one requirement."""

    requirement: InformationRequirement
    fact_concept: str
    #: datatype property id -> owning concept
    property_concepts: Dict[str, str] = field(default_factory=dict)
    #: concept -> to-one path from the fact concept ('' path for itself)
    concept_paths: Dict[str, ConceptPath] = field(default_factory=dict)

    def path_to(self, concept: str) -> ConceptPath:
        try:
            return self.concept_paths[concept]
        except KeyError:
            raise InterpretationError(
                f"no path from fact concept {self.fact_concept!r} to "
                f"{concept!r}"
            ) from None

    def concept_of(self, property_id: str) -> str:
        return self.property_concepts[property_id]

    def dimension_concepts(self) -> List[str]:
        """Owning concepts of the requirement's dimension properties."""
        concepts = []
        for dimension in self.requirement.dimensions:
            concept = self.property_concepts[dimension.property]
            if concept not in concepts:
                concepts.append(concept)
        return concepts

    def slicer_concepts(self) -> List[str]:
        concepts = []
        for slicer in self.requirement.slicers:
            for property_id in sorted(parse(slicer.predicate).attributes()):
                concept = self.property_concepts[property_id]
                if concept not in concepts:
                    concepts.append(concept)
        return concepts

    def measure_concepts(self) -> List[str]:
        """Owning concepts of every property a measure expression uses."""
        concepts = []
        for measure in self.requirement.measures:
            for property_id in sorted(parse(measure.expression).attributes()):
                concept = self.property_concepts[property_id]
                if concept not in concepts:
                    concepts.append(concept)
        return concepts


class RequirementMapper:
    """Resolves requirements against one ontology."""

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._graph = OntologyGraph(ontology)

    def map(self, requirement: InformationRequirement) -> RequirementMapping:
        """Resolve all roles; raises :class:`InterpretationError` when no
        sound fact concept exists."""
        requirement.check(self._ontology)
        property_concepts = {
            property_id: self._ontology.datatype_property(property_id).concept
            for property_id in requirement.referenced_properties()
        }
        measure_concepts = self._measure_concepts(requirement, property_concepts)
        target_concepts = [
            concept
            for concept in dict.fromkeys(property_concepts.values())
        ]
        fact_concept = self._choose_fact_concept(
            measure_concepts, target_concepts, requirement
        )
        closure = self._graph.to_one_closure(fact_concept)
        concept_paths = {fact_concept: ConceptPath(())}
        for concept in target_concepts:
            if concept == fact_concept:
                continue
            concept_paths[concept] = closure[concept]
        return RequirementMapping(
            requirement=requirement,
            fact_concept=fact_concept,
            property_concepts=property_concepts,
            concept_paths=concept_paths,
        )

    def _measure_concepts(self, requirement, property_concepts) -> List[str]:
        concepts: List[str] = []
        for measure in requirement.measures:
            for property_id in sorted(parse(measure.expression).attributes()):
                concept = property_concepts[property_id]
                if concept not in concepts:
                    concepts.append(concept)
        return concepts

    def _choose_fact_concept(
        self,
        measure_concepts: List[str],
        target_concepts: List[str],
        requirement: InformationRequirement,
    ) -> str:
        """The measure concept whose to-one closure covers all targets.

        The candidates are exactly the measure-property owners: measures
        define the fact's granularity, so the fact concept must own at
        least one of them (aggregating, say, a customer balance at part
        granularity would double-count and is rejected as unsound).
        """
        viable = []
        for candidate in measure_concepts:
            closure = set(self._graph.to_one_closure(candidate))
            closure.add(candidate)
            if all(target in closure for target in target_concepts):
                viable.append(candidate)
        if not viable:
            raise InterpretationError(
                f"requirement {requirement.id!r}: no measure concept among "
                f"{sorted(measure_concepts)} reaches all of "
                f"{sorted(target_concepts)} over to-one paths; the "
                f"requirement mixes granularities"
            )
        pool = list(viable)
        pool.sort(
            key=lambda concept: (
                -self._count_measure_properties(concept, requirement),
                -self._graph.fan_out(concept),
                concept,
            )
        )
        return pool[0]

    def _count_measure_properties(self, concept: str, requirement) -> int:
        count = 0
        for measure in requirement.measures:
            for property_id in parse(measure.expression).attributes():
                if self._ontology.datatype_property(property_id).concept == concept:
                    count += 1
        return count
