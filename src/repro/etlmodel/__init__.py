"""Logical ETL process model (the xLM flow model of the paper).

An ETL process design is a DAG of logical operations — the paper's xLM
encoding [12] renders it as ``<nodes>``/``<edges>`` (Figure 3).  This
package implements the model and the algorithms the ETL Process
Integrator relies on:

* :mod:`repro.etlmodel.ops` — the operation taxonomy (datastore,
  extraction, selection, projection, join, aggregation, ...),
* :mod:`repro.etlmodel.flow` — the DAG container with structural
  validation and composition utilities,
* :mod:`repro.etlmodel.propagation` — schema propagation: derive each
  operation's output attributes from its inputs,
* :mod:`repro.etlmodel.equivalence` — generic equivalence rules used to
  "align the order of ETL operations" before matching (§2.3),
* :mod:`repro.etlmodel.cost` — the configurable cost model ("overall
  execution time" quality factor).
"""

from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    JoinType,
    Loader,
    Operation,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)

__all__ = [
    "Aggregation",
    "AggregationSpec",
    "Datastore",
    "DerivedAttribute",
    "Distinct",
    "EtlFlow",
    "Extraction",
    "Join",
    "JoinType",
    "Loader",
    "Operation",
    "Projection",
    "Rename",
    "Selection",
    "Sort",
    "SurrogateKey",
    "UnionOp",
]
