"""The generic XML↔JSON converter of the metadata layer.

"the Communication & Metadata layer [...] uses a MongoDB instance as a
storage repository, and a generic XML-JSON-XML parser for reading from
and writing to the repository" (§2.6).  Documents arrive as XML (xRQ,
xMD, xLM), are stored as JSON documents, and come back out as XML.

The JSON encoding is lossless and order-preserving:

.. code-block:: json

    {"tag": "cube",
     "attributes": {"id": "IR1"},
     "text": null,
     "children": [ ... ]}

Leaf elements carry their text; mixed content keeps the element text
alongside its children (tails are folded into ``text`` of the parent —
sufficient for the data-oriented XML Quarry exchanges).
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Optional

from repro.errors import FormatError


def element_to_dict(element: ET.Element) -> dict:
    """Convert one element (recursively) into the JSON structure."""
    text: Optional[str] = element.text
    if text is not None and not text.strip():
        text = None  # pretty-printing whitespace is not content
    return {
        "tag": element.tag,
        "attributes": dict(element.attrib),
        "text": text,
        "children": [element_to_dict(child) for child in element],
    }


def dict_to_element(document: dict) -> ET.Element:
    """Convert the JSON structure back into an element tree."""
    for key in ("tag", "attributes", "text", "children"):
        if key not in document:
            raise FormatError(f"XML-JSON document is missing key {key!r}")
    element = ET.Element(document["tag"], dict(document["attributes"]))
    element.text = document["text"]
    for child in document["children"]:
        element.append(dict_to_element(child))
    return element


def xml_to_json(xml_text: str) -> dict:
    """Parse XML text into the JSON structure."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise FormatError(f"malformed XML: {exc}") from exc
    return element_to_dict(root)


def json_to_xml(document: dict) -> str:
    """Render the JSON structure back as (pretty-printed) XML."""
    from repro.xformats.xmlutil import render

    return render(dict_to_element(document))


def xml_to_json_text(xml_text: str) -> str:
    """XML text -> JSON text (what actually crosses the repo boundary)."""
    return json.dumps(xml_to_json(xml_text))


def json_text_to_xml(json_text: str) -> str:
    """JSON text -> XML text."""
    try:
        document = json.loads(json_text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"malformed JSON: {exc}") from exc
    return json_to_xml(document)
