"""Unit tests for MD integrity constraints and summarizability."""

import pytest

from repro.errors import MDConstraintViolation
from repro.expressions import ScalarType
from repro.mdmodel import (
    Additivity,
    AggregationFunction,
    Dimension,
    Fact,
    Hierarchy,
    Level,
    LevelAttribute,
    MDSchema,
    Measure,
)
from repro.mdmodel.constraints import Severity, check, is_sound, validate

STR = ScalarType.STRING


def errors(schema):
    return [v for v in validate(schema) if v.severity is Severity.ERROR]


def warnings(schema):
    return [v for v in validate(schema) if v.severity is Severity.WARNING]


class TestSoundSchema:
    def test_revenue_star_is_sound(self, revenue_star):
        assert errors(revenue_star) == []
        assert is_sound(revenue_star)
        check(revenue_star)  # must not raise


class TestDimensionConstraints:
    def test_empty_dimension_is_error(self, revenue_star):
        revenue_star.add_dimension(Dimension("Empty"))
        assert any("no levels" in str(v) for v in errors(revenue_star))

    def test_dimension_without_hierarchy_is_error(self, revenue_star):
        dimension = Dimension("H")
        dimension.add_level(Level("L", attributes=[LevelAttribute("a", STR)]))
        revenue_star.add_dimension(dimension)
        assert any("no hierarchies" in str(v) for v in errors(revenue_star))

    def test_hierarchy_over_unknown_level_is_error(self, revenue_star):
        dimension = revenue_star.dimension("Part")
        dimension.hierarchies.append(Hierarchy("bad", ["Ghost"]))
        assert any("unknown level" in str(v) for v in errors(revenue_star))

    def test_orphan_level_is_warning(self, revenue_star):
        revenue_star.dimension("Part").add_level(
            Level("Orphan", attributes=[LevelAttribute("x", STR)])
        )
        assert any("in no hierarchy" in str(v) for v in warnings(revenue_star))

    def test_level_without_attributes_is_error(self, revenue_star):
        revenue_star.dimension("Part").levels["Part"].attributes.clear()
        assert any("no attributes" in str(v) for v in errors(revenue_star))


class TestFactConstraints:
    def test_fact_without_measures_is_error(self, revenue_star):
        revenue_star.fact("fact_table_revenue").measures.clear()
        assert any("no measures" in str(v) for v in errors(revenue_star))

    def test_fact_without_links_is_error(self, revenue_star):
        revenue_star.fact("fact_table_revenue").links.clear()
        assert any("links no dimensions" in str(v) for v in errors(revenue_star))

    def test_link_to_unknown_dimension_is_error(self, revenue_star):
        del revenue_star.dimensions["Part"]
        assert any("unknown dimension" in str(v) for v in errors(revenue_star))

    def test_link_at_unknown_level_is_error(self, revenue_star):
        fact = revenue_star.fact("fact_table_revenue")
        fact.links[0] = type(fact.links[0])("Part", "Ghost")
        assert any("unknown level" in str(v) for v in errors(revenue_star))

    def test_double_link_is_error(self, revenue_star):
        fact = revenue_star.fact("fact_table_revenue")
        fact.links.append(type(fact.links[0])("Part", "Part"))
        assert any("twice" in str(v) for v in errors(revenue_star))

    def test_link_at_coarse_level_is_warning(self, revenue_star):
        fact = revenue_star.fact("fact_table_revenue")
        fact.links[1] = type(fact.links[0])("Supplier", "Nation")
        assert any("non-base level" in str(v) for v in warnings(revenue_star))


class TestSummarizability:
    def _schema_with_measure(self, measure):
        schema = MDSchema("s")
        dimension = Dimension("D")
        dimension.add_level(Level("L", attributes=[LevelAttribute("a", STR)]))
        dimension.add_hierarchy(Hierarchy("h", ["L"]))
        schema.add_dimension(dimension)
        fact = Fact("F")
        fact.add_measure(measure)
        fact.link_dimension("D", "L")
        schema.add_fact(fact)
        return schema

    def test_summing_non_additive_measure_is_error(self):
        schema = self._schema_with_measure(
            Measure(
                "ratio",
                expression="a / b",
                aggregation=AggregationFunction.SUM,
                additivity=Additivity.NON_ADDITIVE,
            )
        )
        assert any("cannot be SUMmed" in str(v) for v in errors(schema))
        with pytest.raises(MDConstraintViolation):
            check(schema)

    def test_max_of_non_additive_measure_is_fine(self):
        schema = self._schema_with_measure(
            Measure(
                "ratio",
                expression="a / b",
                aggregation=AggregationFunction.MAX,
                additivity=Additivity.NON_ADDITIVE,
            )
        )
        assert errors(schema) == []

    def test_avg_of_non_additive_measure_is_warning(self):
        schema = self._schema_with_measure(
            Measure(
                "ratio",
                expression="a / b",
                aggregation=AggregationFunction.AVG,
                additivity=Additivity.NON_ADDITIVE,
            )
        )
        assert errors(schema) == []
        assert any("verify semantics" in str(v) for v in warnings(schema))

    def test_summing_semi_additive_measure_is_warning(self):
        schema = self._schema_with_measure(
            Measure(
                "stock",
                expression="a",
                aggregation=AggregationFunction.SUM,
                additivity=Additivity.SEMI_ADDITIVE,
            )
        )
        assert errors(schema) == []
        assert any("semi-additive" in str(v) for v in warnings(schema))

    def test_avg_is_flagged_non_distributive(self):
        schema = self._schema_with_measure(
            Measure("m", expression="a", aggregation=AggregationFunction.AVG)
        )
        assert any("non-distributive" in str(v) for v in warnings(schema))

    def test_violation_exception_carries_details(self, revenue_star):
        revenue_star.fact("fact_table_revenue").measures.clear()
        with pytest.raises(MDConstraintViolation) as excinfo:
            check(revenue_star)
        assert excinfo.value.violations
        assert "no measures" in str(excinfo.value)
