"""The logical ETL operation taxonomy.

Operation classes mirror the node types visible in the paper's xLM
snippets (``Datastore``/``TableInput``, ``Extraction``, …) extended with
the relational operators the generated flows need.  Every operation has:

* ``name`` — unique within a flow (e.g. ``EXTRACTION_Partsupp``),
* ``kind`` — the xLM ``<type>`` string,
* ``optype`` — the engine-level operator name xLM carries alongside
  (``TableInput``, ``FilterRows``, …, matching Pentaho PDI step types),
* ``arity`` — number of inputs (0 for datastores, 2 for joins/unions),
* ``signature()`` — a semantic fingerprint that ignores the node name;
  the ETL Process Integrator matches operations across partial flows by
  signature, so two independently generated "filter Spain" nodes unify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import EtlError
from repro.expressions import parse
from repro.expressions.ast import conjuncts


@dataclass(frozen=True)
class Operation:
    """Base class of all flow operations."""

    name: str

    kind: str = field(default="operation", init=False, repr=False)
    optype: str = field(default="Generic", init=False, repr=False)
    arity: int = field(default=1, init=False, repr=False)

    def signature(self) -> Tuple:
        """Semantic fingerprint, independent of the node name."""
        raise NotImplementedError

    def rename(self, new_name: str) -> "Operation":
        """A copy of this operation under another node name."""
        from dataclasses import replace

        return replace(self, name=new_name)


@dataclass(frozen=True)
class Datastore(Operation):
    """A source datastore (xLM ``Datastore``, PDI ``TableInput``)."""

    table: str = ""
    columns: Tuple[str, ...] = ()

    kind = "Datastore"
    optype = "TableInput"
    arity = 0

    def signature(self) -> Tuple:
        return ("datastore", self.table)


@dataclass(frozen=True)
class Extraction(Operation):
    """Extraction of a column subset from its input (xLM ``Extraction``)."""

    columns: Tuple[str, ...] = ()

    kind = "Extraction"
    optype = "SelectValues"
    arity = 1

    def signature(self) -> Tuple:
        return ("extraction", tuple(sorted(self.columns)))


@dataclass(frozen=True)
class Selection(Operation):
    """A filter (xLM ``Selection``, PDI ``FilterRows``)."""

    predicate: str = "true"

    kind = "Selection"
    optype = "FilterRows"
    arity = 1

    def signature(self) -> Tuple:
        # Canonical form: the sorted set of conjunct renderings, so that
        # ``a and b`` equals ``b and a``.
        tree = parse(self.predicate)
        parts = sorted(str(conjunct) for conjunct in conjuncts(tree))
        return ("selection", tuple(parts))

    def conjunct_set(self) -> frozenset:
        tree = parse(self.predicate)
        return frozenset(str(conjunct) for conjunct in conjuncts(tree))


@dataclass(frozen=True)
class Projection(Operation):
    """Keep only the listed attributes (PDI ``SelectValues``)."""

    columns: Tuple[str, ...] = ()

    kind = "Projection"
    optype = "SelectValues"
    arity = 1

    def signature(self) -> Tuple:
        return ("projection", tuple(sorted(self.columns)))


class JoinType:
    """Join type constants (plain strings keep xLM serialisation simple)."""

    INNER = "inner"
    LEFT = "left"


@dataclass(frozen=True)
class Join(Operation):
    """An equi-join of two inputs (PDI ``MergeJoin``).

    ``left_keys[i]`` joins with ``right_keys[i]``.  Input order is given
    by the flow's edge order.
    """

    left_keys: Tuple[str, ...] = ()
    right_keys: Tuple[str, ...] = ()
    join_type: str = JoinType.INNER

    kind = "Join"
    optype = "MergeJoin"
    arity = 2

    def __post_init__(self) -> None:
        if len(self.left_keys) != len(self.right_keys):
            raise EtlError(
                f"join {self.name!r}: key arity mismatch "
                f"{self.left_keys} vs {self.right_keys}"
            )

    def signature(self) -> Tuple:
        pairs = tuple(sorted(zip(self.left_keys, self.right_keys)))
        return ("join", pairs, self.join_type)


@dataclass(frozen=True)
class AggregationSpec:
    """One aggregate output: ``output = function(input)``."""

    output: str
    function: str  # SUM | AVERAGE | MIN | MAX | COUNT
    input: str


@dataclass(frozen=True)
class Aggregation(Operation):
    """Group-by aggregation (xLM ``Aggregation``, PDI ``GroupBy``)."""

    group_by: Tuple[str, ...] = ()
    aggregates: Tuple[AggregationSpec, ...] = ()

    kind = "Aggregation"
    optype = "GroupBy"
    arity = 1

    def signature(self) -> Tuple:
        specs = tuple(
            sorted(
                (spec.output, spec.function, spec.input)
                for spec in self.aggregates
            )
        )
        return ("aggregation", tuple(sorted(self.group_by)), specs)


@dataclass(frozen=True)
class DerivedAttribute(Operation):
    """Compute ``output`` from an expression (PDI ``Calculator``)."""

    output: str = ""
    expression: str = ""

    kind = "DerivedAttribute"
    optype = "Calculator"
    arity = 1

    def signature(self) -> Tuple:
        return ("derive", self.output, str(parse(self.expression)))


@dataclass(frozen=True)
class Rename(Operation):
    """Rename attributes (PDI ``SelectValues`` with rename metadata)."""

    renaming: Tuple[Tuple[str, str], ...] = ()  # (old, new) pairs

    kind = "Rename"
    optype = "SelectValues"
    arity = 1

    def signature(self) -> Tuple:
        return ("rename", tuple(sorted(self.renaming)))

    def mapping(self) -> Dict[str, str]:
        return dict(self.renaming)


@dataclass(frozen=True)
class UnionOp(Operation):
    """Union of two union-compatible inputs (PDI ``Append``)."""

    kind = "Union"
    optype = "Append"
    arity = 2

    def signature(self) -> Tuple:
        return ("union",)


@dataclass(frozen=True)
class Distinct(Operation):
    """Remove duplicate rows (PDI ``Unique rows``).

    Dimension-population flows end in a Distinct so each dimension
    member loads exactly once.
    """

    kind = "Distinct"
    optype = "Unique"
    arity = 1

    def signature(self) -> Tuple:
        return ("distinct",)


@dataclass(frozen=True)
class SurrogateKey(Operation):
    """Assign a dense surrogate key over the business key attributes
    (PDI ``AddSequence`` + lookup in real deployments)."""

    output: str = ""
    business_keys: Tuple[str, ...] = ()

    kind = "SurrogateKey"
    optype = "AddSequence"
    arity = 1

    def signature(self) -> Tuple:
        return ("surrogate", self.output, tuple(sorted(self.business_keys)))


@dataclass(frozen=True)
class Sort(Operation):
    """Sort rows by the listed attributes (PDI ``SortRows``)."""

    keys: Tuple[str, ...] = ()
    descending: bool = False

    kind = "Sort"
    optype = "SortRows"
    arity = 1

    def signature(self) -> Tuple:
        return ("sort", self.keys, self.descending)


class SCDType:
    """SCD policy constants for :class:`SCDUpdate` (plain strings keep
    xLM serialisation simple, mirroring :class:`JoinType`)."""

    TYPE1 = "type1"
    TYPE2 = "type2"


@dataclass(frozen=True)
class SCDUpdate(Operation):
    """Merge incoming dimension members against the stored dimension
    (PDI ``Dimension lookup/update``, pygrametl
    ``SlowlyChangingDimension``).

    ``table`` names the target dimension table whose current contents
    seed the merge; ``business_keys`` identify a member across loads.
    Under ``type1`` a changed descriptor overwrites the stored row in
    place; under ``type2`` the change closes the stored row's validity
    window and appends a new row with a bumped version surrogate.  The
    operator emits the **full post-merge table contents** so a
    downstream replace-mode :class:`Loader` stays the flow's sink.

    ``effective_date`` is the ISO date stamped on windows opened or
    closed by this run.  It is an explicit flow property — never wall
    clock — so executions are deterministic and byte-identical across
    engine modes.
    """

    table: str = ""
    policy: str = SCDType.TYPE2
    business_keys: Tuple[str, ...] = ()
    effective_date: str = "1970-01-01"

    kind = "SCDUpdate"
    optype = "DimensionLookup"
    arity = 1

    def __post_init__(self) -> None:
        if self.policy not in (SCDType.TYPE1, SCDType.TYPE2):
            raise EtlError(
                f"scd update {self.name!r}: unknown policy {self.policy!r}"
            )

    def signature(self) -> Tuple:
        return (
            "scd",
            self.table,
            self.policy,
            tuple(sorted(self.business_keys)),
            self.effective_date,
        )


@dataclass(frozen=True)
class Loader(Operation):
    """Load rows into a target table (xLM ``Loader``, PDI ``TableOutput``)."""

    table: str = ""
    mode: str = "insert"  # insert | replace

    kind = "Loader"
    optype = "TableOutput"
    arity = 1

    def signature(self) -> Tuple:
        return ("loader", self.table, self.mode)


#: kind string -> class, used by the xLM parser.
OPERATION_KINDS = {
    cls.kind: cls
    for cls in (
        Datastore,
        Extraction,
        Selection,
        Projection,
        Join,
        Aggregation,
        DerivedAttribute,
        Rename,
        UnionOp,
        Distinct,
        SurrogateKey,
        SCDUpdate,
        Sort,
        Loader,
    )
}
