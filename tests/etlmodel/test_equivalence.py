"""Unit tests for the equivalence rules / flow normal form."""

from repro.etlmodel import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    EtlFlow,
    Extraction,
    Loader,
    Projection,
    Rename,
    Selection,
)
from repro.etlmodel.equivalence import (
    canonicalize_predicates,
    merge_adjacent_selections,
    normalize,
    push_selections_down,
)
from repro.etlmodel.propagation import propagate

from .conftest import build_revenue_flow


def order_index(flow):
    order = flow.topological_order()
    return {name: position for position, name in enumerate(order)}


class TestSelectionPushdown:
    def test_selection_moves_below_projection(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b")),
            Extraction("extract", columns=("a", "b")),
            Selection("sel", predicate="a = 'x'"),
            Loader("load", table="o"),
        )
        moves = push_selections_down(flow)
        assert moves >= 1
        assert flow.inputs("sel") == ["src"]
        assert flow.inputs("extract") == ["sel"]

    def test_selection_moves_through_join_to_covering_side(self, revenue_flow):
        # SELECTION_nation references only n_name, which comes from the
        # nation side of all three joins — it must travel below the join
        # and below the extraction, right above the nation datastore.
        push_selections_down(revenue_flow)
        assert revenue_flow.inputs("SELECTION_nation") == ["DATASTORE_nation"]
        assert revenue_flow.validate() == []

    def test_selection_does_not_pass_derive_it_depends_on(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("a",)),
            DerivedAttribute("derive", output="d", expression="a + 'x'"),
            Selection("sel", predicate="d = 'yx'"),
            Loader("load", table="o"),
        )
        push_selections_down(flow)
        assert flow.inputs("sel") == ["derive"]

    def test_selection_passes_independent_derive(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b")),
            DerivedAttribute("derive", output="d", expression="b + 'x'"),
            Selection("sel", predicate="a = 'q'"),
            Loader("load", table="o"),
        )
        push_selections_down(flow)
        assert flow.inputs("sel") == ["src"]

    def test_selection_through_rename_back_substitutes(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("old",)),
            Rename("ren", renaming=(("old", "new"),)),
            Selection("sel", predicate="new = 'x'"),
            Loader("load", table="o"),
        )
        push_selections_down(flow)
        assert flow.inputs("sel") == ["src"]
        assert flow.node("sel").predicate == "old = 'x'"
        propagate(flow, None)  # still type-checks

    def test_selection_on_group_keys_passes_aggregation(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("g", "m")),
            Aggregation(
                "agg", group_by=("g",),
                aggregates=(AggregationSpec("c", "COUNT", "m"),),
            ),
            Selection("sel", predicate="g = 'x'"),
            Loader("load", table="o"),
        )
        push_selections_down(flow)
        assert flow.inputs("sel") == ["src"]

    def test_selection_on_aggregate_output_stays(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("g", "m")),
            Aggregation(
                "agg", group_by=("g",),
                aggregates=(AggregationSpec("c", "COUNT", "m"),),
            ),
            Selection("sel", predicate="c > 5"),
            Loader("load", table="o"),
        )
        push_selections_down(flow)
        assert flow.inputs("sel") == ["agg"]

    def test_selection_does_not_cross_shared_predecessor(self):
        # The projection feeds two consumers; filtering before it would
        # change the other consumer's rows.
        flow = EtlFlow("t")
        flow.add(Datastore("src", table="t", columns=("a",)))
        flow.add(Projection("proj", columns=("a",)))
        flow.add(Selection("sel", predicate="a = 'x'"))
        flow.add(Loader("load1", table="o1"))
        flow.add(Loader("load2", table="o2"))
        flow.connect("src", "proj")
        flow.connect("proj", "sel")
        flow.connect("sel", "load1")
        flow.connect("proj", "load2")
        push_selections_down(flow)
        assert flow.inputs("sel") == ["proj"]


class TestMergeAndCanonicalize:
    def test_adjacent_selections_merge(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b")),
            Selection("s1", predicate="a = 'x'"),
            Selection("s2", predicate="b = 'y'"),
            Loader("load", table="o"),
        )
        merges = merge_adjacent_selections(flow)
        assert merges == 1
        assert not flow.has_node("s1")
        merged = flow.node("s2")
        assert merged.conjunct_set() == frozenset({"a = 'x'", "b = 'y'"})

    def test_three_way_merge(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b", "c")),
            Selection("s1", predicate="a = 'x'"),
            Selection("s2", predicate="b = 'y'"),
            Selection("s3", predicate="c = 'z'"),
            Loader("load", table="o"),
        )
        assert merge_adjacent_selections(flow) == 2
        assert flow.node("s3").conjunct_set() == frozenset(
            {"a = 'x'", "b = 'y'", "c = 'z'"}
        )

    def test_canonicalize_orders_conjuncts(self):
        flow = EtlFlow("t")
        flow.chain(
            Datastore("src", table="t", columns=("a", "b")),
            Selection("sel", predicate="b = 'y' and a = 'x'"),
            Loader("load", table="o"),
        )
        canonicalize_predicates(flow)
        assert flow.node("sel").predicate == "a = 'x' and b = 'y'"


class TestNormalize:
    def test_normalize_makes_differently_ordered_flows_equal(self):
        # Same logic, filters applied in different places/orders.
        def variant_a():
            flow = EtlFlow("a")
            flow.chain(
                Datastore("src", table="t", columns=("a", "b")),
                Selection("s1", predicate="a = 'x'"),
                Extraction("ex", columns=("a", "b")),
                Selection("s2", predicate="b = 'y'"),
                Loader("load", table="o"),
            )
            return flow

        def variant_b():
            flow = EtlFlow("b")
            flow.chain(
                Datastore("src", table="t", columns=("a", "b")),
                Selection("s9", predicate="b = 'y' and a = 'x'"),
                Extraction("ex", columns=("a", "b")),
                Loader("load", table="o"),
            )
            return flow

        normal_a = normalize(variant_a())
        normal_b = normalize(variant_b())
        signatures_a = sorted(str(node.signature()) for node in normal_a.nodes())
        signatures_b = sorted(str(node.signature()) for node in normal_b.nodes())
        assert signatures_a == signatures_b

    def test_normalize_preserves_validity_and_node_semantics(self, revenue_flow):
        normal = normalize(revenue_flow)
        assert normal.validate() == []
        # The original is untouched.
        assert revenue_flow.inputs("SELECTION_nation") == ["JOIN_customer_nation"]

    def test_normalize_is_idempotent(self, revenue_flow):
        once = normalize(revenue_flow)
        twice = normalize(once)
        assert sorted(n.signature() for n in once.nodes()) == sorted(
            n.signature() for n in twice.nodes()
        )
        assert {(e.source, e.target) for e in once.edges()} == {
            (e.source, e.target) for e in twice.edges()
        }

    def test_normalized_revenue_flow_filters_at_nation_datastore(self):
        flow = normalize(build_revenue_flow())
        selections = [n for n in flow.nodes() if n.kind == "Selection"]
        assert len(selections) == 1
        assert flow.inputs(selections[0].name) == ["DATASTORE_nation"]
