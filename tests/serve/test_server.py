"""The HTTP front door: routing, lifecycle, isolation, concurrency."""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.server import QuarryServer, tpch_manager
from repro.serve.smoke import demo_xrq


@pytest.fixture(scope="module")
def server():
    with QuarryServer(tpch_manager()) as running:
        yield running


def call(server, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read() or b"{}")


class TestRouting:
    def test_healthz(self, server):
        status, payload = call(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

    def test_unknown_route_is_404(self, server):
        status, payload = call(server, "GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_unknown_session_is_404(self, server):
        status, __ = call(server, "GET", "/sessions/ghost/status")
        assert status == 404

    def test_invalid_session_name_is_400(self, server):
        status, payload = call(
            server, "POST", "/sessions", {"name": "no/slashes"}
        )
        assert status == 400
        assert "session name" in payload["error"]

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/sessions",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 400


class TestLifecycle:
    def test_full_design_round_trip(self, server):
        status, __ = call(server, "POST", "/sessions", {"name": "life"})
        assert status == 201
        status, __ = call(server, "POST", "/sessions", {"name": "life"})
        assert status == 409

        status, report = call(
            server,
            "POST",
            "/sessions/life/requirements",
            {"xrq": demo_xrq("IR1")},
        )
        assert status == 201
        assert report["requirement_id"] == "IR1"
        assert report["action"] == "added"

        status, listed = call(
            server, "GET", "/sessions/life/requirements"
        )
        assert (status, listed) == (200, {"requirements": ["IR1"]})

        status, summary = call(server, "GET", "/sessions/life/status")
        assert status == 200
        assert summary["requirements"] == ["IR1"]
        assert summary["facts"] and summary["dimensions"]

        status, design = call(server, "GET", "/sessions/life/design")
        assert status == 200
        assert design["etl_operations"] == len(design["operators"])

        status, deployed = call(
            server, "POST", "/sessions/life/deploy", {"platform": "sql"}
        )
        assert status == 200
        assert deployed["platform"] == "sql"
        assert deployed["artifacts"]

        status, removal = call(
            server, "DELETE", "/sessions/life/requirements/IR1"
        )
        assert status == 200
        assert removal["action"] == "removed"
        __, listed = call(server, "GET", "/sessions/life/requirements")
        assert listed["requirements"] == []

    def test_duplicate_requirement_is_409(self, server):
        call(server, "POST", "/sessions", {"name": "dup"})
        call(
            server,
            "POST",
            "/sessions/dup/requirements",
            {"xrq": demo_xrq("IR2")},
        )
        status, payload = call(
            server,
            "POST",
            "/sessions/dup/requirements",
            {"xrq": demo_xrq("IR2")},
        )
        assert status == 409
        assert "already exists" in payload["error"]

    def test_unknown_platform_is_400(self, server):
        call(server, "POST", "/sessions", {"name": "plat"})
        call(
            server,
            "POST",
            "/sessions/plat/requirements",
            {"xrq": demo_xrq("IR2")},
        )
        status, payload = call(
            server, "POST", "/sessions/plat/deploy", {"platform": "warp"}
        )
        assert status == 400
        assert "unknown platform" in payload["error"]


class TestConcurrency:
    def test_concurrent_sessions_stay_isolated(self, server):
        names = [f"conc{index}" for index in range(8)]
        barrier = threading.Barrier(len(names))

        def lifecycle(name):
            barrier.wait(timeout=30)
            status, __ = call(
                server, "POST", "/sessions", {"name": name}
            )
            assert status == 201
            status, report = call(
                server,
                "POST",
                f"/sessions/{name}/requirements",
                {"xrq": demo_xrq("IR1")},
            )
            assert status == 201, report
            status, summary = call(
                server, "GET", f"/sessions/{name}/status"
            )
            assert status == 200
            return summary["requirements"]

        with ThreadPoolExecutor(max_workers=len(names)) as pool:
            results = list(pool.map(lifecycle, names))
        assert results == [["IR1"]] * len(names)

    def test_concurrent_writes_to_one_session_serialise(self, server):
        call(server, "POST", "/sessions", {"name": "hammer"})
        barrier = threading.Barrier(6)

        def add(index):
            barrier.wait(timeout=30)
            return call(
                server,
                "POST",
                "/sessions/hammer/requirements",
                {"xrq": demo_xrq(f"IR{index + 10}")},
            )[0]

        with ThreadPoolExecutor(max_workers=6) as pool:
            statuses = list(pool.map(add, range(6)))
        assert statuses == [201] * 6
        __, listed = call(
            server, "GET", "/sessions/hammer/requirements"
        )
        assert sorted(listed["requirements"]) == [
            f"IR{index + 10}" for index in range(6)
        ]


def poll_job(server, name, job_id, timeout=30.0):
    """Poll a background job until it leaves queued/running."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = call(
            server, "GET", f"/sessions/{name}/jobs/{job_id}"
        )
        assert status == 200
        if payload["state"] not in ("queued", "running"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {payload['state']}")


class TestBackgroundDeploy:
    def test_background_deploy_round_trip(self, server):
        call(server, "POST", "/sessions", {"name": "bg"})
        call(
            server,
            "POST",
            "/sessions/bg/requirements",
            {"xrq": demo_xrq("IR1")},
        )
        status, accepted = call(
            server,
            "POST",
            "/sessions/bg/deploy",
            {"platform": "sql", "background": True},
        )
        assert status == 202
        assert accepted["state"] == "queued"
        job_id = accepted["job"]
        assert accepted["status_url"] == f"/sessions/bg/jobs/{job_id}"

        finished = poll_job(server, "bg", job_id)
        assert finished["state"] == "done"
        # The job result is the same payload a synchronous deploy
        # returns.
        assert finished["result"]["platform"] == "sql"
        assert finished["result"]["artifacts"]

        status, listed = call(server, "GET", "/sessions/bg/jobs")
        assert status == 200
        assert {"job": job_id, "state": "done", "platform": "sql"} in (
            listed["jobs"]
        )

    def test_background_deploys_run_in_submission_order(self, server):
        call(server, "POST", "/sessions", {"name": "bgorder"})
        call(
            server,
            "POST",
            "/sessions/bgorder/requirements",
            {"xrq": demo_xrq("IR1")},
        )
        ids = []
        for __ in range(3):
            status, accepted = call(
                server,
                "POST",
                "/sessions/bgorder/deploy",
                {"platform": "sql", "background": True},
            )
            assert status == 202
            ids.append(accepted["job"])
        for job_id in ids:
            assert poll_job(server, "bgorder", job_id)["state"] == "done"
        __, listed = call(server, "GET", "/sessions/bgorder/jobs")
        assert [job["job"] for job in listed["jobs"]] == ids

    def test_failed_background_deploy_reports_error(self, server):
        call(server, "POST", "/sessions", {"name": "bgfail"})
        status, accepted = call(
            server,
            "POST",
            "/sessions/bgfail/deploy",
            {"platform": "warp", "background": True},
        )
        assert status == 202  # accepted; the failure surfaces on the job
        finished = poll_job(server, "bgfail", accepted["job"])
        assert finished["state"] == "error"
        assert "unknown platform" in finished["error"]
        assert "result" not in finished

    def test_unknown_job_is_404(self, server):
        call(server, "POST", "/sessions", {"name": "bg404"})
        status, payload = call(
            server, "GET", "/sessions/bg404/jobs/job-99"
        )
        assert status == 404
        assert "unknown job" in payload["error"]

    def test_jobs_of_unknown_session_are_404(self, server):
        status, __ = call(server, "GET", "/sessions/ghost/jobs")
        assert status == 404
        status, __ = call(server, "GET", "/sessions/ghost/jobs/job-1")
        assert status == 404


class TestDeployLockRelease:
    def test_foreground_deploy_does_not_block_reads(self):
        # A deploy that stalls in the (slow) build phase must not hold
        # the session lock: status reads land while it is in flight.
        manager = tpch_manager()
        manager.create("slow")
        with manager.locked("slow") as session:
            session.add_requirement_xrq(demo_xrq("IR1"))
            deployment = session.deployment
        build_started = threading.Event()
        release_build = threading.Event()
        original_build = deployment.build

        def stalled_build(*args, **kwargs):
            build_started.set()
            assert release_build.wait(timeout=30)
            return original_build(*args, **kwargs)

        deployment.build = stalled_build
        try:
            outcome = {}

            def run_deploy():
                outcome["result"] = manager.deploy("slow", "sql")

            deployer = threading.Thread(target=run_deploy)
            deployer.start()
            assert build_started.wait(timeout=30)
            # Deploy is mid-build.  A status read must not queue
            # behind it.
            read_done = threading.Event()

            def read_status():
                with manager.locked("slow") as session:
                    session.status()
                read_done.set()

            reader = threading.Thread(target=read_status)
            reader.start()
            assert read_done.wait(timeout=5), (
                "status read blocked behind a running deploy"
            )
            release_build.set()
            deployer.join(timeout=30)
            reader.join(timeout=5)
            assert outcome["result"].artifacts
        finally:
            release_build.set()
            deployment.build = original_build

    def test_deploy_still_records_and_announces(self):
        # The two-phase split must not lose the bookkeeping phase.
        from repro.core.services.deployment import (
            KIND_DEPLOYED,
            TOPIC_DEPLOYMENTS,
        )

        manager = tpch_manager()
        manager.create("book")
        with manager.locked("book") as session:
            session.add_requirement_xrq(demo_xrq("IR1"))
        result = manager.deploy("book", "sql")
        assert result.artifacts
        with manager.locked("book") as session:
            envelopes = session.bus.events(TOPIC_DEPLOYMENTS)
            assert any(
                envelope.kind == KIND_DEPLOYED for envelope in envelopes
            )
