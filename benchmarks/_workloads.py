"""Shared workloads for the benchmark suite.

Provides the TPC-H requirement corpus used across experiments: the three
demo requirements (revenue, net profit, shipped quantity) plus a
parameterised family of further analytical requirements so scalability
sweeps (A3) can go well past the demo's size.  All requirements are
valid against the TPC-H ontology and interpretable end to end.
"""

from __future__ import annotations

from typing import Dict, List

from repro import RequirementBuilder
from repro.core.requirements.model import InformationRequirement

#: Deterministic row counts handed to the cost model in benchmarks.
ROW_COUNTS: Dict[str, int] = {
    "lineitem": 60000, "orders": 15000, "customer": 1500,
    "nation": 25, "region": 5, "part": 2000, "partsupp": 4000,
    "supplier": 100,
}

_NATIONS = [
    "SPAIN", "FRANCE", "GERMANY", "BRAZIL", "CANADA", "JAPAN",
    "CHINA", "INDIA", "EGYPT", "KENYA", "PERU", "RUSSIA",
]

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY"]

REVENUE_EXPR = "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)"
NETPROFIT_EXPR = (
    "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
    "- Partsupp_ps_supplycost * Lineitem_l_quantity"
)


def revenue_requirement(requirement_id: str = "IR1") -> InformationRequirement:
    """Figure 4: average revenue per part/supplier, customer in Spain."""
    return (
        RequirementBuilder(requirement_id, "avg revenue per part/supplier")
        .measure("revenue", REVENUE_EXPR, "AVERAGE")
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )


def netprofit_requirement(requirement_id: str = "IR2") -> InformationRequirement:
    """Figure 3's second requirement: net profit per part brand."""
    return (
        RequirementBuilder(requirement_id, "net profit per part brand")
        .measure("netprofit", NETPROFIT_EXPR, "SUM")
        .per("Part_p_brand")
        .build()
    )


def quantity_requirement(requirement_id: str = "IR3") -> InformationRequirement:
    """Shipped quantity per ship mode and nation."""
    return (
        RequirementBuilder(requirement_id, "quantity per ship mode/nation")
        .measure("quantity", "Lineitem_l_quantity", "SUM")
        .per("Lineitem_l_shipmode", "Nation_n_name")
        .build()
    )


def requirement_corpus(count: int) -> List[InformationRequirement]:
    """The first ``count`` requirements of the benchmark corpus.

    Entries 0-2 are the demo requirements; entries 3+ vary measures,
    granularities and slicers so every requirement is distinct but
    overlaps the others in sources and operations (the regime the ETL
    integrator is built for).
    """
    corpus: List[InformationRequirement] = [
        revenue_requirement("IR1"),
        netprofit_requirement("IR2"),
        quantity_requirement("IR3"),
    ]
    variants = [
        ("revenue", REVENUE_EXPR, "SUM", ["Part_p_brand", "Nation_n_name"]),
        ("quantity", "Lineitem_l_quantity", "AVERAGE", ["Part_p_type"]),
        ("revenue", REVENUE_EXPR, "SUM",
         ["Customer_c_mktsegment", "Orders_o_orderpriority"]),
        ("supplycost", "Partsupp_ps_supplycost * Lineitem_l_quantity", "SUM",
         ["Supplier_s_name"]),
        ("revenue", REVENUE_EXPR, "MAX", ["Lineitem_l_returnflag"]),
        ("quantity", "Lineitem_l_quantity", "SUM",
         ["Region_r_name", "Part_p_brand"]),
    ]
    index = 3
    while len(corpus) < count:
        variant = variants[(index - 3) % len(variants)]
        name, expression, function, dimensions = variant
        builder = (
            RequirementBuilder(f"IR{index + 1}", f"corpus requirement {index + 1}")
            .measure(name, expression, function)
            .per(*dimensions)
        )
        # Slicers cycle through a small family (none / Spain / France),
        # mirroring how real requirement sets revisit the same business
        # conditions — this is the overlap the ETL integrator exploits.
        family = index % 3
        if family == 1:
            builder.where("Nation_n_name = 'SPAIN'")
        elif family == 2:
            builder.where("Nation_n_name = 'FRANCE'")
        corpus.append(builder.build())
        index += 1
    return corpus[:count]
