"""A small typed expression language.

Expressions appear throughout Quarry: requirement slicers
(``Nation_n_name = 'Spain'``), derived measures
(``l_extendedprice * (1 - l_discount)``), ETL filter predicates and
derived-attribute computations, and the SQL generator.  This package
implements the language end to end:

* :mod:`repro.expressions.lexer` — tokeniser,
* :mod:`repro.expressions.parser` — Pratt parser producing a typed AST,
* :mod:`repro.expressions.ast` — AST node classes,
* :mod:`repro.expressions.types` — the scalar type lattice and inference,
* :mod:`repro.expressions.evaluator` — evaluation against attribute rows,
* :mod:`repro.expressions.compiler` — lowering to compiled Python
  closures (the executor's hot path).

The usual entry points:

>>> from repro.expressions import parse, evaluate
>>> tree = parse("price * (1 - discount)")
>>> evaluate(tree, {"price": 10.0, "discount": 0.1})
9.0
"""

from repro.expressions.ast import (
    Attribute,
    BinaryOp,
    Expression,
    FunctionCall,
    Literal,
    UnaryOp,
)
from repro.expressions.compiler import (
    CompiledExpression,
    compile_expression,
    compile_tree,
)
from repro.expressions.evaluator import evaluate
from repro.expressions.lexer import Token, TokenKind, tokenize
from repro.expressions.parser import parse
from repro.expressions.types import ScalarType, infer_type

__all__ = [
    "Attribute",
    "BinaryOp",
    "CompiledExpression",
    "Expression",
    "FunctionCall",
    "Literal",
    "ScalarType",
    "Token",
    "TokenKind",
    "UnaryOp",
    "compile_expression",
    "compile_tree",
    "evaluate",
    "infer_type",
    "parse",
    "tokenize",
]
