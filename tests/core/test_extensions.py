"""Tests for the extension components: Pig Latin export, SQL-DDL import,
and the design self-tuning advisor (§2.5-2.6 plug-in slots)."""

import pytest

from repro.core.deployer import Deployer, ddl, ddl_import, pig
from repro.core.interpreter import Interpreter
from repro.core.tuning import TuningAdvisor
from repro.errors import FormatError
from repro.sources import tpch

from .conftest import build_netprofit_requirement, build_revenue_requirement


@pytest.fixture(scope="module")
def design():
    interpreter = Interpreter(tpch.ontology(), tpch.schema(), tpch.mappings())
    return interpreter.interpret(build_revenue_requirement())


class TestPigLatinExport:
    def test_script_shape(self, design):
        script = pig.generate(design.etl_flow)
        assert "LOAD 'lineitem' USING PigStorage()" in script
        assert "FILTER" in script and "(n_name == 'SPAIN')" in script
        assert "JOIN" in script
        assert "GROUP" in script
        assert "AVG(" in script
        assert "STORE" in script and "INTO 'fact_table_revenue'" in script

    def test_one_alias_per_operation(self, design):
        script = pig.generate(design.etl_flow)
        for name in design.etl_flow.node_names():
            if design.etl_flow.node(name).kind == "Loader":
                continue
            assert f"{name} =" in script or f"{name}_grouped =" in script

    def test_distinct_and_projection(self, design):
        script = pig.generate(design.etl_flow)
        assert "DISTINCT" in script
        assert "FOREACH" in script

    def test_expression_rendering(self):
        from repro.expressions import parse
        from repro.core.deployer.pig import _pig_expression

        assert _pig_expression(parse("a = 1 and b != 'x'")) == (
            "((a == 1) AND (b != 'x'))"
        )
        assert _pig_expression(parse("price * (1 - discount)")) == (
            "(price * (1 - discount))"
        )
        assert _pig_expression(parse("x in (1, 2)")) == "x IN (1, 2)"

    def test_registered_in_registry(self, design):
        deployer = Deployer(source_schema=tpch.schema())
        script = deployer.registry.export(
            "etl_flow", "piglatin", design.etl_flow
        )
        assert "PigStorage" in script


class TestDdlImport:
    def test_roundtrip_from_generated_ddl(self, design):
        script = ddl.generate(design.md_schema)
        imported = ddl_import.loads(script, name="back")
        assert set(imported.dimensions) == set(design.md_schema.dimensions)
        assert set(imported.facts) == set(design.md_schema.facts)
        fact = imported.fact("fact_table_revenue")
        original = design.md_schema.fact("fact_table_revenue")
        assert fact.grain == original.grain
        assert set(fact.measures) == set(original.measures)
        assert {link.dimension for link in fact.links} == {
            link.dimension for link in original.links
        }

    def test_imported_schema_is_sound(self, design):
        from repro.mdmodel.constraints import is_sound

        imported = ddl_import.loads(ddl.generate(design.md_schema))
        assert is_sound(imported)

    def test_dimension_columns_recovered_with_types(self, design):
        from repro.expressions import ScalarType

        imported = ddl_import.loads(ddl.generate(design.md_schema))
        supplier = imported.dimension("Supplier")
        level = supplier.level("Supplier")
        assert level.attribute("s_name").type is ScalarType.STRING

    def test_hand_written_script(self):
        script = """
        CREATE TABLE dim_product (
          sku BIGINT,
          label VARCHAR(100)
        );
        CREATE TABLE sales (
          sku BIGINT,
          amount double precision,
          PRIMARY KEY( sku )
        );
        """
        imported = ddl_import.loads(script)
        assert imported.dimension("product").level("product").has_attribute("sku")
        fact = imported.fact("sales")
        assert fact.grain == ["sku"]
        assert "amount" in fact.measures
        assert fact.links[0].dimension == "product"

    def test_empty_script_rejected(self):
        with pytest.raises(FormatError):
            ddl_import.loads("-- nothing here")

    def test_unknown_type_rejected(self):
        with pytest.raises(FormatError):
            ddl_import.loads("CREATE TABLE t (x BLOB);")

    def test_registered_in_registry(self, design):
        deployer = Deployer(source_schema=tpch.schema())
        imported = deployer.registry.import_(
            "md_schema", "ddl", ddl.generate(design.md_schema)
        )
        assert imported.has_fact("fact_table_revenue")


class TestTuningAdvisor:
    @pytest.fixture(scope="class")
    def advised(self):
        interpreter = Interpreter(
            tpch.ontology(), tpch.schema(), tpch.mappings()
        )
        revenue = build_revenue_requirement()
        coarse = build_netprofit_requirement()
        from repro.core.integrator import MDIntegrator
        from repro.mdmodel import MDSchema

        unified = MDSchema("u")
        integrator = MDIntegrator()
        unified = integrator.integrate(
            unified, interpreter.interpret(revenue).md_schema
        ).schema
        unified = integrator.integrate(
            unified, interpreter.interpret(coarse).md_schema
        ).schema
        advisor = TuningAdvisor(row_counts={"fact_table_revenue": 50_000})
        return unified, advisor.advise(unified, [revenue, coarse])

    def test_index_advice_covers_grain_and_keys(self, advised):
        schema, report = advised
        indexes = report.of_kind("index")
        targets = {(s.target, s.columns) for s in indexes}
        assert ("fact_table_revenue", ("p_name",)) in targets
        assert ("fact_table_revenue", ("s_name",)) in targets
        assert ("dim_Supplier", ("s_name",)) in targets

    def test_suggestions_ranked_by_benefit(self, advised):
        __, report = advised
        benefits = [s.estimated_benefit for s in report.suggestions]
        assert benefits == sorted(benefits, reverse=True)

    def test_slimming_flags_unreferenced_complements(self, advised):
        __, report = advised
        slims = report.of_kind("slim")
        # Region's r_name came from complementing, no requirement uses it.
        assert any(
            "dim_Supplier" == s.target and "r_name" in s.columns for s in slims
        )

    def test_rollup_advice_for_coarser_grouping(self):
        """Two requirements on one fact, one strictly coarser: advise a
        materialised roll-up at the coarser granularity."""
        from repro import Quarry, RequirementBuilder

        quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
        fine = (
            RequirementBuilder("F", "qty per brand and shipmode")
            .measure("qty", "Lineitem_l_quantity", "SUM")
            .per("Part_p_brand", "Lineitem_l_shipmode")
            .build()
        )
        coarse = (
            RequirementBuilder("C", "qty per brand")
            .measure("qty", "Lineitem_l_quantity", "SUM")
            .per("Part_p_brand", "Lineitem_l_shipmode")
            .build()
        )
        quarry.add_requirement(fine)
        md, __ = quarry.unified_design()
        # Simulate the coarser ask: C groups only by brand.
        coarse_req = (
            RequirementBuilder("C2", "qty per brand only")
            .measure("qty2", "Lineitem_l_quantity", "SUM")
            .per("Part_p_brand")
            .build()
        )
        fact = next(iter(md.facts.values()))
        fact.requirements.add("C2")
        advisor = TuningAdvisor(row_counts={fact.name: 10_000})
        report = advisor.advise(md, [fine, coarse_req])
        rollups = report.of_kind("rollup")
        assert any(s.columns == ("p_brand",) for s in rollups)

    def test_non_distributive_measures_block_rollups(self, advised):
        from repro.mdmodel import AggregationFunction

        schema, __ = advised
        fact = schema.fact("fact_table_revenue")
        # revenue is AVG -> not distributive -> no rollup advice for it.
        assert fact.measure("revenue").aggregation is AggregationFunction.AVG
        advisor = TuningAdvisor()
        requirement = build_revenue_requirement()
        fake_coarse = build_revenue_requirement("X")
        fake_coarse.dimensions = fake_coarse.dimensions[:1]
        fact.requirements.add("X")
        report = advisor.advise(schema, [requirement, fake_coarse])
        assert all(
            s.target != "fact_table_revenue" for s in report.of_kind("rollup")
        )

    def test_report_helpers(self, advised):
        __, report = advised
        assert len(report.top(3)) == 3
        assert str(report.suggestions[0]).startswith("[")
