"""Structural design complexity — the MD quality factor of the demo.

"We will consider structural design complexity as an example quality
factor for output MD schemata" (§3).  Following the cost model of the
underlying journal work [6], complexity is a weighted count of schema
elements; the MD Schema Integrator scores candidate integration
alternatives with it and keeps the cheapest sound one.

The default weights make *shared* structure cheap: a conformed dimension
reused by two facts is counted once, so integrating a new requirement
into an existing dimension always scores no worse than duplicating it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.mdmodel.model import MDSchema


@dataclass(frozen=True)
class ComplexityWeights:
    """Weights of each structural element kind."""

    fact: float = 10.0
    measure: float = 2.0
    dimension: float = 5.0
    level: float = 3.0
    attribute: float = 1.0
    hierarchy: float = 1.0
    link: float = 1.0


DEFAULT_WEIGHTS = ComplexityWeights()


@dataclass(frozen=True)
class ComplexityReport:
    """Element counts plus the weighted total."""

    facts: int
    measures: int
    dimensions: int
    levels: int
    attributes: int
    hierarchies: int
    links: int
    score: float

    def __str__(self) -> str:
        return (
            f"facts={self.facts} measures={self.measures} "
            f"dimensions={self.dimensions} levels={self.levels} "
            f"attributes={self.attributes} hierarchies={self.hierarchies} "
            f"links={self.links} score={self.score:.1f}"
        )


def analyze(schema: MDSchema, weights: ComplexityWeights = DEFAULT_WEIGHTS) -> ComplexityReport:
    """Count schema elements and compute the weighted complexity score."""
    fact_count = len(schema.facts)
    measure_count = sum(len(fact.measures) for fact in schema.facts.values())
    link_count = sum(len(fact.links) for fact in schema.facts.values())
    dimension_count = len(schema.dimensions)
    level_count = sum(
        len(dimension.levels) for dimension in schema.dimensions.values()
    )
    attribute_count = sum(
        dimension.attribute_count() for dimension in schema.dimensions.values()
    )
    hierarchy_count = sum(
        len(dimension.hierarchies) for dimension in schema.dimensions.values()
    )
    score = (
        weights.fact * fact_count
        + weights.measure * measure_count
        + weights.dimension * dimension_count
        + weights.level * level_count
        + weights.attribute * attribute_count
        + weights.hierarchy * hierarchy_count
        + weights.link * link_count
    )
    return ComplexityReport(
        facts=fact_count,
        measures=measure_count,
        dimensions=dimension_count,
        levels=level_count,
        attributes=attribute_count,
        hierarchies=hierarchy_count,
        links=link_count,
        score=score,
    )


def score(schema: MDSchema, weights: ComplexityWeights = DEFAULT_WEIGHTS) -> float:
    """The weighted complexity score alone."""
    return analyze(schema, weights).score


def score_counts(
    weights: ComplexityWeights,
    facts: int = 0,
    measures: int = 0,
    dimensions: int = 0,
    levels: int = 0,
    attributes: int = 0,
    hierarchies: int = 0,
    links: int = 0,
) -> float:
    """The weighted score of explicit element counts.

    Evaluates the exact expression :func:`analyze` uses, so a score
    assembled from adjusted counts is bit-identical to scoring a schema
    holding those counts — integrators can cost hypothetical merge/keep
    alternatives without materialising trial schema copies.
    """
    return (
        weights.fact * facts
        + weights.measure * measures
        + weights.dimension * dimensions
        + weights.level * levels
        + weights.attribute * attributes
        + weights.hierarchy * hierarchies
        + weights.link * links
    )


def dimension_counts(dimension) -> Dict[str, int]:
    """Element counts one dimension contributes to a schema score."""
    return {
        "dimensions": 1,
        "levels": len(dimension.levels),
        "attributes": dimension.attribute_count(),
        "hierarchies": len(dimension.hierarchies),
    }


def compare(
    first: MDSchema,
    second: MDSchema,
    weights: ComplexityWeights = DEFAULT_WEIGHTS,
) -> float:
    """Score difference (first - second); negative means first is simpler."""
    return score(first, weights) - score(second, weights)
