"""Random documents and Mongo-style queries, plus a naive reference.

The reference implementation deliberately shares no code with
:mod:`repro.repository.documents`: it scans every document (no ``_id``
fast path), re-derives the documented sort semantics (missing first,
then NULL, then values bucketed by type) and applies the limit last.
Any observable difference between :meth:`Collection.find` and the
reference is a bug in one of them.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_FIELDS = ["a", "b", "c", "nest"]

#: Session namespaces a trial may run in (``""`` is the default
#: namespace, i.e. the plain collection name).
_SESSIONS = ["", "alpha", "beta"]

#: Field values skewed towards the treacherous: falsy values of every
#: type, numerically-equal values of different types, strings that look
#: like numbers, lists.
_VALUES = [
    None, 0, 0.0, 1, 2, -1, 2.5, True, False,
    "", "x", "y", "10", "a b", [1, 2],
]

#: Values queries compare against (also used inside $in lists).
_QUERY_VALUES = [0, 1, 2, 2.5, True, False, None, "", "x", "10", [1, 2]]

_PATHS = ["a", "b", "c", "nest.x", "nest.y", "nest", "zzz"]

_REGEXES = ["^x", "x$", "a", "[xy]", "^$", " "]


@dataclass
class QueryTrial:
    """One differential trial against the document store.

    ``indexes`` lists dotted paths the collection declares secondary
    indexes on before the trial's documents are written.  The reference
    knows nothing about indexes, so any trial where index routing
    changes a result (or an error) diverges.

    ``session`` is the namespace the trial's collection lives in (the
    empty string is the default/unprefixed namespace) and ``decoys``
    maps *other* session namespaces to documents written into their
    collections of the same shared store before the trial runs.  The
    reference knows nothing about the decoys either, so any cross-
    namespace leakage — in the trial's answers or in the decoy
    collections themselves — diverges.
    """

    documents: List[dict]
    query: Optional[dict]
    sort_key: Optional[str]
    limit: Optional[int]
    indexes: List[str] = field(default_factory=list)
    session: str = ""
    decoys: Dict[str, List[dict]] = field(default_factory=dict)
    seed: object = None
    notes: List[str] = field(default_factory=list)


# -- generation --------------------------------------------------------------


def _random_document(rng: random.Random, doc_id) -> dict:
    document = {"_id": doc_id}
    for name in _FIELDS:
        if rng.random() < 0.35:
            continue  # field absent: $exists / missing-path territory
        if name == "nest":
            document[name] = {
                "x": rng.choice(_VALUES),
                "y": rng.choice(_VALUES),
            }
        else:
            document[name] = rng.choice(_VALUES)
    return document


def _random_documents(rng: random.Random) -> List[dict]:
    count = 0 if rng.random() < 0.08 else rng.randint(1, 10)
    ids = [f"d{index}" for index in range(8)] + [0, ""]
    return [
        # rng.choice allows repeats: replace() semantics get exercised.
        _random_document(rng, rng.choice(ids))
        for _ in range(count)
    ]


def _field_condition(rng: random.Random) -> dict:
    path = rng.choice(_PATHS + ["_id", "_id", "_id"])
    if path == "_id":
        ids = ["d0", "d1", "d2", "d5", "ghost", 0, ""]
        roll = rng.random()
        if roll < 0.35:
            return {"_id": rng.choice(ids)}
        if roll < 0.55:
            return {"_id": {"$eq": rng.choice(ids)}}
        if roll < 0.85:
            pool = list(ids)
            rng.shuffle(pool)
            return {"_id": {"$in": pool[: rng.randint(0, 5)]}}
        return {"_id": {"$ne": rng.choice(ids)}}
    if rng.random() < 0.35:
        return {path: rng.choice(_QUERY_VALUES)}
    operators = {}
    for _ in range(rng.randint(1, 2)):
        op = rng.choice(
            ["$eq", "$ne", "$gt", "$gte", "$lt", "$lte",
             "$in", "$nin", "$exists", "$regex"]
        )
        if op in ("$in", "$nin"):
            operators[op] = [
                rng.choice(_QUERY_VALUES)
                for _ in range(rng.randint(0, 3))
            ]
        elif op == "$exists":
            operators[op] = rng.random() < 0.5
        elif op == "$regex":
            operators[op] = rng.choice(_REGEXES)
        else:
            operators[op] = rng.choice(_QUERY_VALUES)
    return {path: operators}


def _random_query(rng: random.Random, depth: int = 1) -> Optional[dict]:
    roll = rng.random()
    if roll < 0.08:
        return None
    if depth > 0 and roll < 0.18:
        return {
            rng.choice(["$and", "$or"]): [
                _random_query(rng, 0) or {},
                _random_query(rng, 0) or {},
            ]
        }
    if depth > 0 and roll < 0.24:
        return {"$not": _random_query(rng, 0) or {}}
    query = {}
    for _ in range(rng.randint(1, 2)):
        query.update(_field_condition(rng))
    return query


def _random_indexes(rng: random.Random) -> List[str]:
    """A random set of index declarations for a trial.

    Half of the trials run unindexed (the scan path must stay correct
    too); the rest index a few paths, ``_id`` included — an ``_id``
    secondary index is redundant with the primary fast path but must
    not change any answer.
    """
    if rng.random() < 0.5:
        return []
    pool = list(_PATHS) + ["_id"]
    rng.shuffle(pool)
    return pool[: rng.randint(1, 3)]


def _random_sessions(rng: random.Random):
    """The trial's session namespace plus decoy documents for others.

    Half of the trials run in the default namespace with no neighbours
    (the pre-session layout must stay correct); the rest pick a session
    and populate one or two *other* sessions' collections with decoy
    documents that must never influence — or be influenced by — the
    trial.
    """
    if rng.random() < 0.5:
        return "", {}
    session = rng.choice(_SESSIONS)
    decoys = {}
    others = [name for name in _SESSIONS if name != session]
    rng.shuffle(others)
    for other in others[: rng.randint(1, 2)]:
        decoys[other] = [
            _random_document(rng, rng.choice([f"d{i}" for i in range(8)]))
            for _ in range(rng.randint(1, 3))
        ]
    return session, decoys


def build_query_trial(seed: int) -> QueryTrial:
    """The deterministic query trial for a seed."""
    rng = random.Random(f"query:{seed}")
    documents = _random_documents(rng)
    query = _random_query(rng)
    sort_key = (
        rng.choice(_PATHS + ["_id"]) if rng.random() < 0.45 else None
    )
    limit = rng.randint(0, 5) if rng.random() < 0.3 else None
    indexes = _random_indexes(rng)
    session, decoys = _random_sessions(rng)
    return QueryTrial(
        documents=documents,
        query=query,
        sort_key=sort_key,
        limit=limit,
        indexes=indexes,
        session=session,
        decoys=decoys,
        seed=seed,
    )


# -- the naive reference ------------------------------------------------------

_ORDER_OPS = {"$gt", "$gte", "$lt", "$lte"}
_KNOWN_OPS = _ORDER_OPS | {
    "$eq", "$ne", "$in", "$nin", "$exists", "$regex"
}


def _resolve(document, path: str):
    current = document
    for part in path.split("."):
        if not isinstance(current, dict) or part not in current:
            return None, False
        current = current[part]
    return current, True


def _compare_one(op: str, value, expected) -> bool:
    if op == "$eq":
        return value == expected
    if op == "$ne":
        return value != expected
    if op == "$in":
        return value in expected
    if op == "$nin":
        return value not in expected
    if op == "$regex":
        return bool(isinstance(value, str) and re.search(expected, value))
    # Ordering operators: NULL and cross-type comparisons are False.
    if value is None:
        return False
    try:
        if op == "$gt":
            return value > expected
        if op == "$gte":
            return value >= expected
        if op == "$lt":
            return value < expected
        return value <= expected
    except TypeError:
        return False


def reference_matches(document: dict, query: dict) -> bool:
    """Naive matcher, written to the query language's documentation."""
    for key, condition in query.items():
        if key == "$and":
            if not all(reference_matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(reference_matches(document, sub) for sub in condition):
                return False
        elif key == "$not":
            if reference_matches(document, condition):
                return False
        elif isinstance(condition, dict) and any(
            op.startswith("$") for op in condition
        ):
            value, found = _resolve(document, key)
            for op, expected in condition.items():
                if op == "$exists":
                    if bool(found) != bool(expected):
                        return False
                    continue
                if op not in _KNOWN_OPS:
                    raise ValueError(f"unknown operator {op!r}")
                if not found and op not in ("$ne", "$nin"):
                    return False
                if not _compare_one(op, value, expected):
                    return False
        else:
            value, found = _resolve(document, key)
            if not found or value != condition:
                return False
    return True


def _reference_sort_key(document: dict, path: str):
    value, found = _resolve(document, path)
    if not found:
        return (0, ("", ""))
    if value is None:
        return (1, ("", ""))
    if isinstance(value, bool):
        bucket = ("bool", value)
    elif isinstance(value, (int, float)):
        bucket = ("number", value)
    elif isinstance(value, str):
        bucket = ("string", value)
    else:
        bucket = (type(value).__name__, repr(value))
    return (2, bucket)


def reference_find(
    documents: List[dict],
    query: Optional[dict] = None,
    sort_key: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[dict]:
    """What ``Collection.find`` must return for upserted ``documents``."""
    store = {}
    for document in documents:
        # Upsert: last write wins, the first write fixes the position.
        store[document["_id"]] = document
    results = [
        dict(document)
        for document in store.values()
        if query is None or reference_matches(document, query)
    ]
    if sort_key is not None:
        results.sort(key=lambda document: _reference_sort_key(document, sort_key))
    if limit is not None:
        results = results[:limit]
    return results


def reference_count(documents: List[dict], query: Optional[dict]) -> int:
    return len(reference_find(documents, query))
