"""The served front door: Quarry's design lifecycle over HTTP.

The paper frames Quarry as a set of RESTful services; this package is
the thin network skin over the in-process service fabric of
:mod:`repro.core.services`.  A :class:`SessionManager` multiplexes many
named :class:`~repro.core.services.session.DesignSession` lifecycles —
elicit, interpret, integrate, deploy — over one shared metadata
repository, and :class:`QuarryServer` exposes them as JSON endpoints on
a threaded stdlib HTTP server.

.. code-block:: console

    $ python -m repro.serve --port 8747      # serve the TPC-H domain
    $ python -m repro.serve.smoke            # boot + two-session round trip
    $ python -m benchmarks.run_serving       # concurrent-session load bench
"""

from repro.serve.server import QuarryServer, SessionManager, tpch_manager

__all__ = ["QuarryServer", "SessionManager", "tpch_manager"]
