CREATE TABLE "dim_Part" (
  p_name TEXT,
  p_brand TEXT
);

CREATE TABLE "dim_Supplier" (
  s_name TEXT,
  n_name TEXT,
  r_name TEXT
);

CREATE TABLE fact_table_revenue (
  p_name TEXT,
  s_name TEXT,
  revenue REAL,
  PRIMARY KEY( p_name, s_name )
);

CREATE TABLE fact_table_netprofit (
  p_brand TEXT,
  netprofit REAL,
  PRIMARY KEY( p_brand )
);
