"""Plug-in registry for import/export parsers.

"the Communication & Metadata layer offers plug-in capabilities for
adding import and export parsers, for supporting various external
notations (e.g., SQL, Apache PigLatin, ETL Metadata)" (§2.5).

A parser is registered under ``(artifact, notation, direction)``:
``artifact`` is what it handles (``requirement``, ``md_schema``,
``etl_flow``), ``notation`` names the external format, and direction is
``export`` (object -> text) or ``import`` (text -> object).  The
built-in xRQ/xMD/xLM codecs are pre-registered; the Design Deployer
registers its SQL-DDL and Pentaho-PDI exporters on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import FormatError

ARTIFACTS = ("requirement", "md_schema", "etl_flow", "envelope")
DIRECTIONS = ("export", "import")

#: Schema versions each versioned notation can import.  ``"1.0"`` is
#: the legacy shape (documents without a ``version`` attribute); xMD
#: and xLM ``"1.1"`` added the SCD policy/validity-window vocabulary.
#: Writers stamp the newest version only onto documents that actually
#: use the new vocabulary, so legacy designs round-trip byte-identically.
SUPPORTED_VERSIONS: Dict[str, Tuple[str, ...]] = {
    "xmd": ("1.0", "1.1"),
    "xlm": ("1.0", "1.1"),
}


def check_schema_version(notation: str, found: str, error=FormatError) -> str:
    """Reject a document whose declared schema version we cannot parse.

    Historically unknown versions were silently accepted and the parser
    would either mis-read or half-read the document; now the mismatch is
    reported up front, naming what was found versus what is supported.
    Returns ``found`` so callers can thread it through.
    """
    supported = SUPPORTED_VERSIONS.get(notation, ())
    if found not in supported:
        raise error(
            f"unsupported {notation} schema version {found!r}; this "
            f"build supports: {', '.join(supported)}"
        )
    return found


@dataclass(frozen=True)
class ParserEntry:
    """One registered parser."""

    artifact: str
    notation: str
    direction: str
    handler: Callable
    description: str = ""


class FormatRegistry:
    """Registry of import/export parsers, with built-ins installed."""

    def __init__(self, with_builtins: bool = True) -> None:
        self._entries: Dict[Tuple[str, str, str], ParserEntry] = {}
        if with_builtins:
            self._register_builtins()

    def register(
        self,
        artifact: str,
        notation: str,
        direction: str,
        handler: Callable,
        description: str = "",
        replace: bool = False,
    ) -> ParserEntry:
        """Register a parser; duplicate keys need ``replace=True``."""
        if artifact not in ARTIFACTS:
            raise FormatError(
                f"unknown artifact {artifact!r}; expected one of {ARTIFACTS}"
            )
        if direction not in DIRECTIONS:
            raise FormatError(
                f"unknown direction {direction!r}; expected one of {DIRECTIONS}"
            )
        key = (artifact, notation, direction)
        if key in self._entries and not replace:
            raise FormatError(
                f"parser for {key} already registered; pass replace=True"
            )
        entry = ParserEntry(artifact, notation, direction, handler, description)
        self._entries[key] = entry
        return entry

    def lookup(self, artifact: str, notation: str, direction: str) -> ParserEntry:
        try:
            return self._entries[(artifact, notation, direction)]
        except KeyError:
            raise FormatError(
                f"no {direction} parser for {artifact!r} in notation "
                f"{notation!r}"
            ) from None

    def export(self, artifact: str, notation: str, value):
        """Export an object through the registered handler."""
        return self.lookup(artifact, notation, "export").handler(value)

    def import_(self, artifact: str, notation: str, text: str):
        """Import text through the registered handler."""
        return self.lookup(artifact, notation, "import").handler(text)

    def notations(self, artifact: str, direction: str) -> List[str]:
        """Notations available for an artifact/direction pair."""
        return sorted(
            notation
            for (entry_artifact, notation, entry_direction) in self._entries
            if entry_artifact == artifact and entry_direction == direction
        )

    def entries(self) -> List[ParserEntry]:
        return list(self._entries.values())

    def _register_builtins(self) -> None:
        from repro.xformats import xlm, xmd, xrq

        self.register(
            "requirement", "xrq", "export", xrq.dumps,
            description="xRQ XML (Figure 4)",
        )
        self.register(
            "requirement", "xrq", "import", xrq.loads,
            description="xRQ XML (Figure 4)",
        )
        self.register(
            "md_schema", "xmd", "export", xmd.dumps,
            description="xMD XML (Figures 3-4)",
        )
        self.register(
            "md_schema", "xmd", "import", xmd.loads,
            description="xMD XML (Figures 3-4)",
        )
        self.register(
            "etl_flow", "xlm", "export", xlm.dumps,
            description="xLM XML [12]",
        )
        self.register(
            "etl_flow", "xlm", "import", xlm.loads,
            description="xLM XML [12]",
        )
        # The artifact-bus envelope: the JSON document every service
        # exchange is logged as (and replayed from).
        from repro.core.services import envelope as envelope_codec

        self.register(
            "envelope", "json", "export", envelope_codec.dumps,
            description="artifact-bus envelope as canonical JSON",
        )
        self.register(
            "envelope", "json", "import", envelope_codec.loads,
            description="artifact-bus envelope as canonical JSON",
        )
