"""Generic equivalence rules for reordering ETL operations.

"To boost the reuse of the existing data flow elements [...] ETL Process
Integrator aligns the order of ETL operations by applying generic
equivalence rules" (§2.3).  Two independently generated partial flows
often compute the same prefix in different operation orders (filter
before or after a projection, before or after a join); rewriting both
into a *normal form* makes the shared prefix syntactically equal so the
largest-overlap search can find it.

The normal form produced by :func:`normalize`:

1. every Selection is pushed as close to its datastore as legality
   allows (through projections, derivations it does not depend on,
   renames — with attribute back-substitution — and to the join input
   that feeds all its attributes),
2. adjacent Selections are merged into one,
3. each Selection predicate is rewritten as its sorted conjunct chain.

All rewrites preserve flow semantics (standard relational algebra
equivalences).
"""

from __future__ import annotations

from typing import Optional

from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    Loader,
    Projection,
    Rename,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.expressions import parse
from repro.expressions.ast import conjoin, conjuncts, substitute

#: Upper bound on rewrite passes — generous; real flows converge in a few.
_MAX_PASSES = 100


def normalize(flow: EtlFlow) -> EtlFlow:
    """Return a semantics-preserving normal form of the flow."""
    result = flow.copy()
    push_selections_down(result)
    merge_adjacent_selections(result)
    canonicalize_predicates(result)
    return result


def push_selections_down(flow: EtlFlow) -> int:
    """Push every Selection towards the sources; returns #moves made."""
    moves = 0
    for _pass in range(_MAX_PASSES):
        moved = _push_one(flow)
        if not moved:
            break
        moves += 1
    return moves


def _push_one(flow: EtlFlow) -> bool:
    """Perform a single legal downward move, if any."""
    for name in flow.topological_order():
        operation = flow.node(name)
        if not isinstance(operation, Selection):
            continue
        inputs = flow.inputs(name)
        if len(inputs) != 1:
            continue
        predecessor = flow.node(inputs[0])
        if isinstance(predecessor, Join):
            if _push_through_join(flow, name, predecessor):
                return True
            continue
        if _can_swap_selection(flow, operation, predecessor):
            rewritten = _rewrite_for_swap(operation, predecessor)
            if rewritten is not operation:
                flow.replace_node(name, rewritten)
            flow.swap_with_predecessor(name)
            return True
    return False


def _can_swap_selection(flow: EtlFlow, selection: Selection, predecessor) -> bool:
    """Whether a selection may move before its unary predecessor."""
    if len(flow.inputs(predecessor.name)) != 1:
        return False
    if len(flow.outputs(predecessor.name)) != 1:
        # The predecessor feeds other consumers too; filtering earlier
        # would change what they see.
        return False
    attributes = parse(selection.predicate).attributes()
    if isinstance(predecessor, (Extraction, Projection, Sort, Distinct)):
        return True
    if isinstance(predecessor, Selection):
        # Commutes, but swapping selections forever would loop; order
        # them canonically instead (smaller signature goes first).
        return selection.signature() < predecessor.signature()
    if isinstance(predecessor, DerivedAttribute):
        return predecessor.output not in attributes
    if isinstance(predecessor, SurrogateKey):
        return predecessor.output not in attributes
    if isinstance(predecessor, Rename):
        return True  # handled with back-substitution
    if isinstance(predecessor, Aggregation):
        return set(attributes) <= set(predecessor.group_by)
    if isinstance(predecessor, (Datastore, Loader, UnionOp, Join)):
        return False
    return False


def _rewrite_for_swap(selection: Selection, predecessor) -> Selection:
    """Adjust the predicate when moving below an attribute-mapping op."""
    if isinstance(predecessor, Rename):
        inverse = {new: old for old, new in predecessor.renaming}
        tree = substitute(parse(selection.predicate), inverse)
        return Selection(name=selection.name, predicate=str(tree))
    return selection


def _push_through_join(flow: EtlFlow, name: str, join: Join) -> bool:
    """Move a selection below a join onto the input that covers it."""
    selection = flow.node(name)
    if len(flow.outputs(join.name)) != 1:
        return False
    attributes = set(parse(selection.predicate).attributes())
    from repro.etlmodel.propagation import attribute_names

    available = attribute_names(flow)
    join_inputs = flow.inputs(join.name)
    if len(join_inputs) != 2:
        return False
    for input_name in join_inputs:
        input_attributes = available.get(input_name)
        if input_attributes is not None and attributes <= input_attributes:
            flow.remove_node(name)
            flow.insert_between(input_name, join.name, selection)
            return True
    return False


def merge_adjacent_selections(flow: EtlFlow) -> int:
    """Merge chains of adjacent Selections into one node; returns #merges."""
    merges = 0
    for _pass in range(_MAX_PASSES):
        merged = False
        for name in flow.topological_order():
            operation = flow.node(name) if flow.has_node(name) else None
            if not isinstance(operation, Selection):
                continue
            inputs = flow.inputs(name)
            if len(inputs) != 1:
                continue
            predecessor = flow.node(inputs[0])
            if not isinstance(predecessor, Selection):
                continue
            if len(flow.outputs(predecessor.name)) != 1:
                continue
            combined_conjuncts = sorted(
                predecessor.conjunct_set() | operation.conjunct_set()
            )
            combined = conjoin([parse(text) for text in combined_conjuncts])
            flow.replace_node(
                name, Selection(name=name, predicate=str(combined))
            )
            flow.remove_node(predecessor.name)
            merged = True
            merges += 1
            break
        if not merged:
            break
    return merges


def prune_columns(flow: EtlFlow) -> EtlFlow:
    """Projection pushdown: narrow every branch to the columns it needs.

    Consolidation *widens* shared extractions (union of all consumers'
    columns), which lets operations unify but makes non-shared branches
    carry columns they never use.  This pass — applied before execution
    or export, never between integrations — computes, per edge, the
    exact attribute set the consumer's subtree requires and

    * shrinks single-consumer Extractions in place,
    * inserts a narrowing ``Projection`` on edges out of shared nodes
      whose consumers need a proper subset.

    Distinct, Union and Loader inputs are never pruned (their semantics
    depend on the full row).  Returns a rewritten copy.
    """
    from repro.etlmodel.propagation import attribute_names

    result = flow.copy()
    produced = attribute_names(result)
    if any(value is None for value in produced.values()):
        return result  # cannot reason about columns; leave untouched
    needed = _compute_needs(result, produced)
    counter = 0
    for name in list(result.node_names()):
        operation = result.node(name)
        if not isinstance(operation, (Extraction, Datastore)):
            continue
        consumers = result.outputs(name)
        if not consumers:
            continue
        requirements = {
            consumer: needed[(name, consumer)] for consumer in consumers
        }
        columns = produced[name]
        if isinstance(operation, Extraction) and len(consumers) == 1:
            req = requirements[consumers[0]]
            if req is not None and req < columns:
                result.replace_node(
                    name, Extraction(name, columns=tuple(sorted(req)))
                )
            continue
        for consumer, req in requirements.items():
            if req is None or not req < columns or len(columns) - len(req) < 2:
                continue
            counter += 1
            result.insert_between(
                name,
                consumer,
                Projection(f"PRUNE_{counter}_{name}", columns=tuple(sorted(req))),
            )
    _shrink_datastores(result)
    return result


def _shrink_datastores(flow: EtlFlow) -> None:
    """Narrow Datastore scans to the union of their consumers' columns.

    Runs after extraction shrinking so the consumer column sets are
    final.  Only applies when every consumer is an Extraction/Projection
    (those fix their needs explicitly).
    """
    for name in list(flow.node_names()):
        operation = flow.node(name)
        if not isinstance(operation, Datastore) or not operation.columns:
            continue
        consumers = [flow.node(consumer) for consumer in flow.outputs(name)]
        if not consumers or not all(
            isinstance(consumer, (Extraction, Projection))
            for consumer in consumers
        ):
            continue
        required: set = set()
        for consumer in consumers:
            required |= set(consumer.columns)
        if required < set(operation.columns):
            flow.replace_node(
                name,
                Datastore(
                    name,
                    table=operation.table,
                    columns=tuple(sorted(required)),
                ),
            )


def _compute_needs(flow: EtlFlow, produced) -> dict:
    """(producer, consumer) -> attribute set the consumer's subtree
    needs from that edge; ``None`` means "everything" (no pruning)."""
    from repro.etlmodel.ops import SurrogateKey

    needed_out: dict = {}  # node -> set needed by all consumers (or None)
    edge_needs: dict = {}
    for name in reversed(flow.topological_order()):
        operation = flow.node(name)
        outputs = flow.outputs(name)
        if not outputs:
            needed_out[name] = set(produced[name])
        else:
            collected: Optional[set] = set()
            for consumer in outputs:
                requirement = edge_needs[(name, consumer)]
                if requirement is None:
                    collected = None
                    break
                collected |= requirement
            needed_out[name] = (
                set(produced[name]) if collected is None else collected
            )
        downstream = needed_out[name]
        for position, source in enumerate(flow.inputs(name)):
            edge_needs[(source, name)] = _required_from_input(
                operation, position, downstream, produced, flow
            )
    return edge_needs


def _required_from_input(operation, position, downstream, produced, flow):
    """Attributes ``operation`` needs from its input at ``position``;
    ``None`` disables pruning on that edge."""
    from repro.etlmodel.ops import (
        Loader as LoaderOp,
        SurrogateKey,
        UnionOp as UnionOperation,
    )

    if isinstance(operation, (Extraction, Projection)):
        return set(operation.columns)
    if isinstance(operation, Selection):
        return downstream | set(parse(operation.predicate).attributes())
    if isinstance(operation, Join):
        sources = flow.inputs(operation.name)
        own = produced[sources[position]]
        if own is None:
            return None
        keys = (
            set(operation.left_keys)
            if position == 0
            else set(operation.right_keys)
        )
        return (downstream & own) | keys
    if isinstance(operation, Aggregation):
        return set(operation.group_by) | {
            spec.input for spec in operation.aggregates
        }
    if isinstance(operation, DerivedAttribute):
        return (downstream - {operation.output}) | set(
            parse(operation.expression).attributes()
        )
    if isinstance(operation, Rename):
        inverse = {new: old for old, new in operation.renaming}
        return {inverse.get(name, name) for name in downstream}
    if isinstance(operation, SurrogateKey):
        return (downstream - {operation.output}) | set(operation.business_keys)
    if isinstance(operation, Sort):
        return downstream | set(operation.keys)
    # Distinct, Union, Loader: semantics depend on the full input row.
    return None


def canonicalize_predicates(flow: EtlFlow) -> None:
    """Rewrite every Selection predicate as its sorted conjunct chain."""
    for name in flow.node_names():
        operation = flow.node(name)
        if not isinstance(operation, Selection):
            continue
        parts = sorted(str(part) for part in conjuncts(parse(operation.predicate)))
        canonical = conjoin([parse(text) for text in parts])
        flow.replace_node(name, Selection(name=name, predicate=str(canonical)))
