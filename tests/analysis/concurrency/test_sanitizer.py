"""Runtime lock-sanitizer tests: inversions, self-deadlock, fork.

Every test builds its own :class:`LockMonitor`, so synthetic lock
traffic never contaminates the process-global observed graph that the
session-wide cross-check (``tests/conftest.py``) verifies.
"""

import threading

import pytest

from repro.analysis.concurrency.sanitizer import (
    LockMonitor,
    LockOrderViolation,
    LockSanitizerError,
    SanitizedLock,
)


def _locks(monitor, *names, reentrant=False):
    return [
        SanitizedLock(name, reentrant=reentrant, monitor=monitor)
        for name in names
    ]


class TestOrderInversion:
    def test_ab_ba_across_two_threads_raises(self):
        monitor = LockMonitor()
        a, b = _locks(monitor, "A", "B")
        ready = threading.Event()
        release = threading.Event()

        def thread_one():
            with a:
                with b:  # records A -> B
                    ready.set()
                    release.wait(5)

        worker = threading.Thread(target=thread_one)
        worker.start()
        assert ready.wait(5)
        failure = {}
        try:
            with b:
                with pytest.raises(LockOrderViolation) as caught:
                    a.acquire()  # would record B -> A: cycle
                failure["message"] = str(caught.value)
        finally:
            release.set()
            worker.join(5)
        assert "closes an ordering cycle" in failure["message"]
        assert "'A'" in failure["message"] and "'B'" in failure["message"]

    def test_consistent_order_stays_quiet(self):
        monitor = LockMonitor()
        a, b = _locks(monitor, "A", "B")
        for __ in range(3):
            with a:
                with b:
                    pass
        assert monitor.edges() == {("A", "B")}

    def test_same_name_cross_instance_inversion(self):
        monitor = LockMonitor()
        first, second = _locks(monitor, "Collection._lock", "Collection._lock")
        # Sorted-order discipline: always first-then-second is fine.
        with first:
            with second:
                pass
        # The opposite interleaving is the snapshot deadlock.
        with second:
            with pytest.raises(LockOrderViolation, match="opposite orders"):
                first.acquire()


class TestSelfDeadlock:
    def test_nonreentrant_reacquire_raises(self):
        monitor = LockMonitor()
        (lock,) = _locks(monitor, "L")
        with lock:
            with pytest.raises(LockSanitizerError, match="self-deadlock"):
                lock.acquire()

    def test_reentrant_reacquire_is_fine(self):
        monitor = LockMonitor()
        (lock,) = _locks(monitor, "L", reentrant=True)
        with lock:
            with lock:
                # Each acquire pushes, so release counting balances.
                assert monitor.held_names() == ["L", "L"]
        assert monitor.held_names() == []
        assert monitor.edges() == set()  # reentrancy adds no edge


class TestFork:
    def test_fork_while_holding_raises(self):
        monitor = LockMonitor()
        (lock,) = _locks(monitor, "L")
        with lock:
            with pytest.raises(LockSanitizerError, match="fork"):
                monitor.on_fork()

    def test_fork_with_no_holds_records_finding_after_traffic(self):
        monitor = LockMonitor()
        a, b = _locks(monitor, "A", "B")
        with a:
            with b:
                pass
        monitor.on_fork()  # must not raise: forking thread holds nothing
        assert monitor.findings
        assert "fork" in monitor.findings[0]


class TestCrossCheck:
    def test_observed_subset_of_static_passes(self):
        monitor = LockMonitor()
        a, b = _locks(monitor, "A", "B")
        with a:
            with b:
                pass
        assert monitor.verify_against_static({("A", "B")}) == []

    def test_unpredicted_edge_is_a_divergence(self):
        monitor = LockMonitor()
        a, b = _locks(monitor, "A", "B")
        with b:
            with a:
                pass
        divergences = monitor.verify_against_static({("A", "B")})
        assert len(divergences) == 1
        assert "B -> A" in divergences[0]

    def test_reset_clears_the_graph(self):
        monitor = LockMonitor()
        a, b = _locks(monitor, "A", "B")
        with a:
            with b:
                pass
        monitor.reset()
        assert monitor.edges() == set()
        assert monitor.verify_against_static(set()) == []


class TestFactoryWiring:
    def test_env_flag_switches_factories(self, monkeypatch):
        from repro import locks

        monkeypatch.setenv("REPRO_LOCKSAN", "1")
        sanitized = locks.new_lock("tests.factory")
        assert isinstance(sanitized, SanitizedLock)
        assert not sanitized.reentrant
        assert isinstance(locks.new_rlock("tests.factory"), SanitizedLock)
        monkeypatch.setenv("REPRO_LOCKSAN", "0")
        assert not isinstance(locks.new_lock("tests.plain"), SanitizedLock)

    def test_package_traffic_matches_static_graph(self, monkeypatch):
        """Real store traffic under sanitized locks stays inside the
        static may-acquire-under graph (the PR's central invariant)."""
        monkeypatch.setenv("REPRO_LOCKSAN", "1")
        from repro.analysis.concurrency import static_lock_graph
        from repro.analysis.concurrency.sanitizer import monitor
        from repro.repository.documents import DocumentStore

        store = DocumentStore()
        store.collection("alpha").insert({"_id": "1"})
        store.collection("beta").insert({"_id": "2"})
        store.snapshot()
        observed = monitor.edges()
        # snapshot really nests store -> collection...
        assert ("DocumentStore._lock", "Collection._lock") in observed
        # ...and everything the whole process observed so far (this
        # test plus any earlier package traffic reporting to the
        # global monitor) stays inside the static envelope.
        static = {(a, b) for a, b in static_lock_graph()["edges"]}
        assert observed <= static
