"""Lint rules for time and design evolution (``QRY5xx``).

Slowly-changing-dimension policies and the design-evolution operators
(:mod:`repro.core.services.evolution`) can each leave a unified design
subtly broken without violating the structural MD rules: ``retype``
can turn a summed measure non-numeric, ``merge`` can pull a property
whose column name shadows an SCD2 validity-window column, and policy
conformance can attach versioning to a level that has nothing to
version.  These rules catch those states through the shared registry,
so they gate :meth:`Quarry.deploy` like every other ERROR.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.diagnostics import Diagnostic, Severity, diag, rule
from repro.mdmodel.model import (
    SCD2_COLUMNS,
    AggregationFunction,
    SCDPolicy,
)

#: Aggregations that do arithmetic on the measure value and therefore
#: require a numeric measure type.
_ARITHMETIC = {AggregationFunction.SUM, AggregationFunction.AVG}


@rule("QRY501", "aggregated measure is not numeric", "md", Severity.ERROR)
def _non_numeric_measure(context) -> Iterable[Diagnostic]:
    """A SUM/AVG measure whose stored type is non-numeric.

    The interpreter never generates this on its own — it appears when
    ``retype_property`` changes a measure's source property to a
    non-numeric range after the fact, breaking additivity.
    """
    out: List[Diagnostic] = []
    for fact in context.schema.facts.values():
        for measure in fact.measures.values():
            if measure.aggregation not in _ARITHMETIC:
                continue
            if measure.type.is_numeric:
                continue
            out.append(
                diag(
                    "QRY501",
                    f"measure {measure.name!r} of fact {fact.name!r} is "
                    f"aggregated with {measure.aggregation.value} but has "
                    f"non-numeric type {measure.type.value}; a property "
                    f"retype likely broke additivity",
                    node=fact.name,
                    attribute=measure.name,
                    hint="retype the source property back to a numeric "
                    "range, or switch the aggregation to MIN/MAX/COUNT",
                )
            )
    return out


@rule("QRY502", "SCD level cannot identify entities", "md", Severity.ERROR)
def _scd_without_key(context) -> Iterable[Diagnostic]:
    """An SCD1/SCD2 level without the key the merge needs.

    Versioning matches incoming rows to stored entities by the level's
    key attribute; without one the SCD merge has no business key, and a
    TYPE2 level whose *only* attribute is the key has no descriptor
    that could ever change.
    """
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        for level in dimension.levels.values():
            if level.scd_policy is SCDPolicy.TYPE0:
                continue
            if level.key is None:
                out.append(
                    diag(
                        "QRY502",
                        f"level {level.name!r} of dimension "
                        f"{dimension.name!r} declares SCD policy "
                        f"{level.scd_policy.value} but has no key "
                        f"attribute to identify entities across changes",
                        node=dimension.name,
                        attribute=level.name,
                        hint="declare a key attribute (the business key "
                        "the SCD merge matches versions on)",
                    )
                )
            elif (
                level.scd_policy is SCDPolicy.TYPE2
                and len(level.attributes) < 2
            ):
                out.append(
                    diag(
                        "QRY502",
                        f"level {level.name!r} of dimension "
                        f"{dimension.name!r} is SCD2 but carries only its "
                        f"key attribute; no descriptor can ever change",
                        node=dimension.name,
                        attribute=level.name,
                        severity=Severity.WARNING,
                        hint="add descriptor attributes or drop the "
                        "TYPE2 policy",
                    )
                )
    return out


@rule(
    "QRY503",
    "attribute shadows SCD2 validity-window column",
    "md",
    Severity.ERROR,
)
def _window_column_collision(context) -> Iterable[Diagnostic]:
    """A versioned level with an attribute named like a window column.

    The deployer appends ``scd_version``/``scd_valid_from``/… to the
    dimension table of every TYPE2 level; an attribute with one of
    those names — typically pulled in by ``merge_concepts`` from a
    concept whose properties were named after them — would collide in
    the generated DDL.
    """
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        versioned = any(
            level.scd_policy is SCDPolicy.TYPE2
            for level in dimension.levels.values()
        )
        if not versioned:
            continue
        for level in dimension.levels.values():
            for name in level.attribute_names():
                if name not in SCD2_COLUMNS:
                    continue
                out.append(
                    diag(
                        "QRY503",
                        f"attribute {name!r} of level {level.name!r} "
                        f"collides with an SCD2 validity-window column "
                        f"of versioned dimension {dimension.name!r}",
                        node=dimension.name,
                        attribute=name,
                        hint="rename the attribute (or the merged "
                        "property that introduced it); the window "
                        "column names are reserved",
                    )
                )
    return out


@rule("QRY504", "SCD policy at non-base level", "md", Severity.WARNING)
def _scd_non_base(context) -> Iterable[Diagnostic]:
    """A versioned level the generated ETL will never actually version.

    Only hierarchy base levels are loaded row-by-row from the sources,
    so an SCD policy above the base is silently inert.  ``split_concept``
    can produce this: the carved-out concept becomes a coarser level of
    the original dimension while inheriting its policy.
    """
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        if not dimension.hierarchies:
            continue
        bases = set(dimension.base_levels())
        for level in dimension.levels.values():
            if level.scd_policy is SCDPolicy.TYPE0 or level.name in bases:
                continue
            out.append(
                diag(
                    "QRY504",
                    f"level {level.name!r} of dimension "
                    f"{dimension.name!r} declares SCD policy "
                    f"{level.scd_policy.value} at a non-base level; "
                    f"generated ETL only versions hierarchy base levels",
                    node=dimension.name,
                    attribute=level.name,
                    hint="move the policy to the hierarchy's base level",
                )
            )
    return out


@rule(
    "QRY505",
    "duplicate attribute within a versioned dimension",
    "md",
    Severity.ERROR,
)
def _versioned_duplicate(context) -> Iterable[Diagnostic]:
    """Colliding attribute names in a dimension that keeps history.

    QRY406 already warns on duplicates in general; in a *versioned*
    dimension they are promoted to errors, because the SCD merge
    compares stored and incoming rows column-by-column and two
    attributes with one name make the change detection ambiguous —
    the classic outcome of ``merge_concepts`` folding two concepts
    that both carry, say, a ``name`` property.
    """
    out: List[Diagnostic] = []
    for dimension in context.schema.dimensions.values():
        versioned = any(
            level.scd_policy is not SCDPolicy.TYPE0
            for level in dimension.levels.values()
        )
        if not versioned:
            continue
        owners: Dict[str, str] = {}
        for level in dimension.levels.values():
            for name in level.attribute_names():
                owner = owners.get(name)
                if owner is not None and owner != level.name:
                    out.append(
                        diag(
                            "QRY505",
                            f"attribute {name!r} appears in levels "
                            f"{owner!r} and {level.name!r} of versioned "
                            f"dimension {dimension.name!r}; SCD change "
                            f"detection cannot tell them apart",
                            node=dimension.name,
                            attribute=name,
                            hint="rename one of the colliding "
                            "attributes before deploying",
                        )
                    )
                else:
                    owners.setdefault(name, level.name)
    return out
