"""Design deployment (demo scenario 3, right side of Figure 3).

Builds the unified design for the paper's two requirements (revenue +
net profit), then generates every supported platform artefact:

* the PostgreSQL ``CREATE TABLE`` script (shown in Figure 3),
* the Pentaho PDI ``.ktr`` transformation (shown in Figure 3),
* the pure-SQL INSERT-SELECT rendering,
* a native deployment on the embedded engine, followed by OLAP queries.

Artefacts are written next to this script into ``deployment_output/``.

Run with::

    python examples/deployment.py
"""

import os

from repro import Quarry, RequirementBuilder
from repro.engine import Database, OlapQuery, query_star
from repro.sources import tpch

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "deployment_output")


def main() -> None:
    print("=== Design deployment over multiple platforms ===\n")
    quarry = Quarry(tpch.ontology(), tpch.schema(), tpch.mappings())
    quarry.add_requirement(
        RequirementBuilder("IR1", "avg revenue per part/supplier, Spain")
        .measure(
            "revenue",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount)",
            "AVERAGE",
        )
        .per("Part_p_name", "Supplier_s_name")
        .where("Nation_n_name = 'SPAIN'")
        .build()
    )
    quarry.add_requirement(
        RequirementBuilder("IR2", "net profit per part brand")
        .measure(
            "netprofit",
            "Lineitem_l_extendedprice * (1 - Lineitem_l_discount) "
            "- Partsupp_ps_supplycost * Lineitem_l_quantity",
            "SUM",
        )
        .per("Part_p_brand")
        .build()
    )

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    artefacts = {
        "star_schema.sql": quarry.deploy("postgres").artifacts["ddl"],
        "star_schema.sqlite.sql": quarry.deploy("sqlite").artifacts["ddl"],
        "etl_process.ktr": quarry.deploy("pdi").artifacts["ktr"],
        "etl_process.sql": quarry.deploy("sql").artifacts["script"],
    }
    for filename, content in artefacts.items():
        path = os.path.join(OUTPUT_DIR, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(f"wrote {path} ({len(content)} bytes)")

    print("\nPostgreSQL DDL (excerpt):")
    print("\n".join(artefacts["star_schema.sql"].splitlines()[:12]), "\n  ...")

    print("\nNative deployment on the embedded engine:")
    database = Database()
    database.load_source(tpch.schema(), tpch.generate(scale_factor=0.5))
    result = quarry.deploy("native", source_database=database)
    for table, rows in sorted(result.stats.loaded.items()):
        print(f"  loaded {rows:>6} rows into {table}")
    print(f"  total execution time: {result.stats.seconds * 1000:.1f} ms")

    print("\nOLAP: net profit per brand (top 5):")
    answer = query_star(
        database,
        OlapQuery(
            fact_table="fact_table_netprofit",
            group_by=["p_brand"],
            aggregates=[("SUM", "netprofit", "total")],
        ),
    )
    top = sorted(answer.rows, key=lambda row: -(row["total"] or 0))[:5]
    for row in top:
        print(f"  {row['p_brand']:<10} {row['total']:>14.2f}")


if __name__ == "__main__":
    main()
