"""The ETL flow DAG.

A flow is a set of named operations plus directed edges.  Edge order
into a binary operation is significant: the first incoming edge is the
left input of a join/union.  The class offers the structural queries and
surgery the generator and integrator need (topological order, subflow
paths, node insertion/removal, grafting one flow into another).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.errors import (
    EtlError,
    FlowValidationError,
    UnknownOperationError,
)
from repro.etlmodel.ops import Operation


@dataclass(frozen=True)
class Edge:
    """A directed hop between two operations (xLM ``<edge>``)."""

    source: str
    target: str
    enabled: bool = True


@dataclass
class EtlFlow:
    """A DAG of ETL operations."""

    name: str
    _nodes: Dict[str, Operation] = field(default_factory=dict)
    _edges: List[Edge] = field(default_factory=list)
    requirements: Set[str] = field(default_factory=set)

    # -- construction ---------------------------------------------------------

    def add(self, operation: Operation) -> Operation:
        """Add an operation node; names must be unique."""
        if operation.name in self._nodes:
            raise EtlError(
                f"operation {operation.name!r} already in flow {self.name!r}"
            )
        self._nodes[operation.name] = operation
        return operation

    def connect(self, source: str, target: str) -> Edge:
        """Add an edge; both endpoints must exist and the edge be new."""
        for endpoint in (source, target):
            if endpoint not in self._nodes:
                raise UnknownOperationError(endpoint)
        edge = Edge(source, target)
        if any(e.source == source and e.target == target for e in self._edges):
            raise EtlError(f"duplicate edge {source!r} -> {target!r}")
        self._edges.append(edge)
        return edge

    def disconnect(self, source: str, target: str) -> None:
        """Remove the edge source -> target; raises if absent."""
        for index, edge in enumerate(self._edges):
            if edge.source == source and edge.target == target:
                del self._edges[index]
                return
        raise EtlError(f"no edge {source!r} -> {target!r}")

    def chain(self, *operations: Operation) -> Operation:
        """Add operations and connect them linearly; returns the last."""
        previous: Optional[Operation] = None
        for operation in operations:
            if operation.name not in self._nodes:
                self.add(operation)
            if previous is not None:
                self.connect(previous.name, operation.name)
            previous = operation
        if previous is None:
            raise EtlError("chain requires at least one operation")
        return previous

    # -- lookup -----------------------------------------------------------------

    def node(self, name: str) -> Operation:
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownOperationError(name) from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> Iterator[Operation]:
        return iter(self._nodes.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def edges(self) -> List[Edge]:
        return list(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def inputs(self, name: str) -> List[str]:
        """Source names of incoming edges, in edge insertion order."""
        self.node(name)
        return [edge.source for edge in self._edges if edge.target == name]

    def outputs(self, name: str) -> List[str]:
        self.node(name)
        return [edge.target for edge in self._edges if edge.source == name]

    def sources(self) -> List[str]:
        """Nodes with no incoming edges (the datastores)."""
        targets = {edge.target for edge in self._edges}
        return [name for name in self._nodes if name not in targets]

    def sinks(self) -> List[str]:
        """Nodes with no outgoing edges (the loaders)."""
        origins = {edge.source for edge in self._edges}
        return [name for name in self._nodes if name not in origins]

    # -- traversal --------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Node names in topological order; raises on cycles."""
        in_degree = {name: 0 for name in self._nodes}
        for edge in self._edges:
            in_degree[edge.target] += 1
        queue = deque(
            name for name in self._nodes if in_degree[name] == 0
        )
        order: List[str] = []
        while queue:
            current = queue.popleft()
            order.append(current)
            for edge in self._edges:
                if edge.source != current:
                    continue
                in_degree[edge.target] -= 1
                if in_degree[edge.target] == 0:
                    queue.append(edge.target)
        if len(order) != len(self._nodes):
            raise FlowValidationError(["flow contains a cycle"])
        return order

    def upstream(self, name: str) -> Set[str]:
        """All transitive predecessors of a node."""
        result: Set[str] = set()
        frontier = deque(self.inputs(name))
        while frontier:
            current = frontier.popleft()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self.inputs(current))
        return result

    def downstream(self, name: str) -> Set[str]:
        """All transitive successors of a node."""
        result: Set[str] = set()
        frontier = deque(self.outputs(name))
        while frontier:
            current = frontier.popleft()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self.outputs(current))
        return result

    def path_from_source(self, sink: str) -> List[str]:
        """The unique linear path ending at ``sink`` while in-degree is 1.

        Walks backwards from ``sink`` until a node with 0 or >1 inputs is
        met (inclusive); returns names source-first.  Used to align the
        unary segments of two flows during integration.
        """
        path = [sink]
        current = sink
        while True:
            inputs = self.inputs(current)
            if len(inputs) != 1:
                break
            current = inputs[0]
            path.append(current)
        path.reverse()
        return path

    # -- surgery -----------------------------------------------------------------

    def remove_node(self, name: str) -> None:
        """Remove a node, splicing unary through-paths.

        If the node has exactly one input and any outputs, the input is
        reconnected to each output.  Other in/out shapes simply drop the
        incident edges.
        """
        self.node(name)
        incoming = self.inputs(name)
        if len(incoming) == 1:
            # Splice in place: each (name -> target) edge is replaced by
            # (input -> target) at the same position, so the input-slot
            # order of binary targets (join left/right) is preserved.
            source = incoming[0]
            spliced: List[Edge] = []
            for edge in self._edges:
                if edge.target == name:
                    continue
                if edge.source == name:
                    duplicate = any(
                        e.source == source and e.target == edge.target
                        for e in self._edges
                        if e.source != name and e.target != name
                    ) or any(
                        e.source == source and e.target == edge.target
                        for e in spliced
                    )
                    if not duplicate:
                        spliced.append(Edge(source, edge.target))
                    continue
                spliced.append(edge)
            self._edges = spliced
        else:
            self._edges = [
                edge
                for edge in self._edges
                if edge.source != name and edge.target != name
            ]
        del self._nodes[name]

    def replace_node(self, name: str, operation: Operation) -> None:
        """Swap the operation stored under ``name`` (same name required)."""
        self.node(name)
        if operation.name != name:
            raise EtlError(
                f"replacement operation must keep the name {name!r}"
            )
        self._nodes[name] = operation

    def insert_between(
        self, source: str, target: str, operation: Operation
    ) -> None:
        """Insert a unary operation on the edge source -> target."""
        matching = [
            edge
            for edge in self._edges
            if edge.source == source and edge.target == target
        ]
        if not matching:
            raise EtlError(f"no edge {source!r} -> {target!r}")
        self.add(operation)
        index = self._edges.index(matching[0])
        # Preserve the edge position so the input order of binary targets
        # is unchanged.
        self._edges[index] = Edge(operation.name, target)
        self._edges.append(Edge(source, operation.name))

    def swap_with_predecessor(self, name: str) -> None:
        """Swap a unary node with its unary predecessor (a -> b becomes
        b -> a).  Both must have exactly one input and the predecessor
        exactly one output."""
        node_inputs = self.inputs(name)
        if len(node_inputs) != 1:
            raise EtlError(f"{name!r} is not unary")
        predecessor = node_inputs[0]
        if len(self.inputs(predecessor)) != 1 or len(self.outputs(predecessor)) != 1:
            raise EtlError(f"{predecessor!r} cannot be swapped")
        grandparent = self.inputs(predecessor)[0]
        successors = self.outputs(name)
        removed = {(grandparent, predecessor), (predecessor, name)}
        removed.update((name, successor) for successor in successors)
        replacement = []
        for edge in self._edges:
            if (edge.source, edge.target) in removed:
                if (edge.source, edge.target) == (grandparent, predecessor):
                    # Keep edge position: a binary grandparent target is
                    # impossible here (predecessor is unary), but binary
                    # *successors* must keep their input slot order.
                    replacement.append(Edge(grandparent, name))
                elif edge.source == name:
                    replacement.append(Edge(predecessor, edge.target))
                continue
            replacement.append(edge)
        replacement.append(Edge(name, predecessor))
        self._edges = replacement

    def copy(self, name: Optional[str] = None) -> "EtlFlow":
        """A structural copy (operations are immutable and shared)."""
        clone = EtlFlow(
            name=name if name is not None else self.name,
            requirements=set(self.requirements),
        )
        clone._nodes = dict(self._nodes)
        clone._edges = list(self._edges)
        return clone

    def graft(self, other: "EtlFlow", at: Dict[str, str]) -> Dict[str, str]:
        """Graft ``other`` into this flow, unifying some nodes.

        ``at`` maps node names of ``other`` to existing node names here;
        those nodes are *not* copied — edges from them re-target the
        mapped nodes.  Remaining nodes are copied, renamed on collision.
        Returns the full name mapping (other name -> name here).
        """
        mapping: Dict[str, str] = dict(at)
        for operation in other.nodes():
            if operation.name in mapping:
                continue
            new_name = operation.name
            suffix = 2
            while new_name in self._nodes:
                new_name = f"{operation.name}_{suffix}"
                suffix += 1
            mapping[operation.name] = new_name
            self.add(operation.rename(new_name))
        for edge in other.edges():
            source = mapping[edge.source]
            target = mapping[edge.target]
            if edge.target in at:
                # The target already exists here with its own inputs.
                continue
            if not any(
                e.source == source and e.target == target for e in self._edges
            ):
                self._edges.append(Edge(source, target))
        self.requirements |= other.requirements
        return mapping

    # -- validation --------------------------------------------------------------

    def validate(self) -> List[str]:
        """Structural validation; returns problems (empty when valid).

        Thin compatibility wrapper over the linter's structural pass
        (codes ``QRY001``–``QRY005``); the messages are unchanged.
        """
        # Imported lazily: the analysis package imports this module.
        from repro.analysis.flow_rules import structural_diagnostics

        return [diagnostic.message for diagnostic in structural_diagnostics(self)]

    def check(self) -> None:
        """Raise :class:`FlowValidationError` when structurally invalid."""
        problems = self.validate()
        if problems:
            raise FlowValidationError(problems)
