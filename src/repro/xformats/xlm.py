"""xLM — the XML encoding for analytic (ETL) flows [12].

Figure 3's snippet fixes the shape: a ``<design>`` with ``<metadata>``,
``<edges>`` (``<from>``/``<to>``/``<enabled>``) and ``<nodes>``
(``<name>``/``<type>``/``<optype>``).  Operation-specific parameters go
into a ``<properties>`` block per node, keyed by property name, so the
document parses back into exactly the same operation objects.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict

from repro.errors import XlmFormatError
from repro.etlmodel.flow import EtlFlow
from repro.etlmodel.ops import (
    Aggregation,
    AggregationSpec,
    Datastore,
    DerivedAttribute,
    Distinct,
    Extraction,
    Join,
    Loader,
    Operation,
    Projection,
    Rename,
    SCDUpdate,
    Selection,
    Sort,
    SurrogateKey,
    UnionOp,
)
from repro.xformats import xmlutil
from repro.xformats.registry import check_schema_version

_LIST_SEPARATOR = ","

#: The newest xLM schema version this build writes.  Version 1.1 added
#: the ``SCDUpdate`` node type; flows without one keep the legacy shape
#: (no ``version`` attribute == version 1.0) so they stay byte-stable.
XLM_VERSION = "1.1"


def dumps(flow: EtlFlow) -> str:
    """Serialise an ETL flow to xLM."""
    uses_scd = any(node.kind == "SCDUpdate" for node in flow.nodes())
    root = ET.Element("design", {"version": XLM_VERSION} if uses_scd else {})
    metadata = xmlutil.sub(root, "metadata")
    xmlutil.sub(metadata, "name", flow.name)
    if flow.requirements:
        wrapper = xmlutil.sub(metadata, "requirements")
        for requirement_id in sorted(flow.requirements):
            xmlutil.sub(wrapper, "requirement", requirement_id)
    edges = xmlutil.sub(root, "edges")
    for edge in flow.edges():
        element = xmlutil.sub(edges, "edge")
        xmlutil.sub(element, "from", edge.source)
        xmlutil.sub(element, "to", edge.target)
        xmlutil.sub(element, "enabled", "Y" if edge.enabled else "N")
    nodes = xmlutil.sub(root, "nodes")
    for operation in flow.nodes():
        element = xmlutil.sub(nodes, "node")
        xmlutil.sub(element, "name", operation.name)
        xmlutil.sub(element, "type", operation.kind)
        xmlutil.sub(element, "optype", operation.optype)
        properties = _operation_properties(operation)
        if properties:
            wrapper = xmlutil.sub(element, "properties")
            for key, value in properties.items():
                xmlutil.sub(wrapper, "property", value, name=key)
    return xmlutil.render(root)


def _operation_properties(operation: Operation) -> Dict[str, str]:
    """Flatten an operation's parameters into string properties."""
    if isinstance(operation, Datastore):
        properties = {"table": operation.table}
        if operation.columns:
            properties["columns"] = _LIST_SEPARATOR.join(operation.columns)
        return properties
    if isinstance(operation, (Extraction, Projection)):
        return {"columns": _LIST_SEPARATOR.join(operation.columns)}
    if isinstance(operation, Selection):
        return {"predicate": operation.predicate}
    if isinstance(operation, Join):
        return {
            "leftKeys": _LIST_SEPARATOR.join(operation.left_keys),
            "rightKeys": _LIST_SEPARATOR.join(operation.right_keys),
            "joinType": operation.join_type,
        }
    if isinstance(operation, Aggregation):
        properties = {"groupBy": _LIST_SEPARATOR.join(operation.group_by)}
        rendered = [
            f"{spec.output}={spec.function}({spec.input})"
            for spec in operation.aggregates
        ]
        properties["aggregates"] = ";".join(rendered)
        return properties
    if isinstance(operation, DerivedAttribute):
        return {"output": operation.output, "expression": operation.expression}
    if isinstance(operation, Rename):
        rendered = [f"{old}->{new}" for old, new in operation.renaming]
        return {"renaming": ";".join(rendered)}
    if isinstance(operation, SurrogateKey):
        return {
            "output": operation.output,
            "businessKeys": _LIST_SEPARATOR.join(operation.business_keys),
        }
    if isinstance(operation, Sort):
        properties = {"keys": _LIST_SEPARATOR.join(operation.keys)}
        if operation.descending:
            properties["descending"] = "true"
        return properties
    if isinstance(operation, SCDUpdate):
        return {
            "table": operation.table,
            "policy": operation.policy,
            "businessKeys": _LIST_SEPARATOR.join(operation.business_keys),
            "effectiveDate": operation.effective_date,
        }
    if isinstance(operation, Loader):
        return {"table": operation.table, "mode": operation.mode}
    if isinstance(operation, (UnionOp, Distinct)):
        return {}
    raise XlmFormatError(f"cannot serialise operation kind {operation.kind!r}")


def loads(text: str) -> EtlFlow:
    """Parse an xLM document back into an ETL flow."""
    root = xmlutil.parse_document(text, "design", XlmFormatError)
    check_schema_version("xlm", root.get("version", "1.0"), XlmFormatError)
    metadata = xmlutil.child(root, "metadata", XlmFormatError)
    flow = EtlFlow(name=xmlutil.child_text(metadata, "name", XlmFormatError))
    requirements = metadata.find("requirements")
    if requirements is not None:
        flow.requirements = {
            node.text or "" for node in requirements.findall("requirement")
        }
    nodes = root.find("nodes")
    if nodes is not None:
        for element in nodes.findall("node"):
            flow.add(_read_operation(element))
    edges = root.find("edges")
    if edges is not None:
        for element in edges.findall("edge"):
            flow.connect(
                xmlutil.child_text(element, "from", XlmFormatError),
                xmlutil.child_text(element, "to", XlmFormatError),
            )
    return flow


def _read_operation(element: ET.Element) -> Operation:
    name = xmlutil.child_text(element, "name", XlmFormatError)
    kind = xmlutil.child_text(element, "type", XlmFormatError)
    properties: Dict[str, str] = {}
    wrapper = element.find("properties")
    if wrapper is not None:
        for node in wrapper.findall("property"):
            properties[xmlutil.attribute(node, "name", XlmFormatError)] = (
                node.text or ""
            )
    return _build_operation(name, kind, properties)


def _split(text: str) -> tuple:
    if not text:
        return ()
    return tuple(part for part in text.split(_LIST_SEPARATOR) if part)


def _build_operation(name: str, kind: str, properties: Dict[str, str]) -> Operation:
    if kind == "Datastore":
        return Datastore(
            name,
            table=properties.get("table", ""),
            columns=_split(properties.get("columns", "")),
        )
    if kind == "Extraction":
        return Extraction(name, columns=_split(properties.get("columns", "")))
    if kind == "Projection":
        return Projection(name, columns=_split(properties.get("columns", "")))
    if kind == "Selection":
        return Selection(name, predicate=properties.get("predicate", "true"))
    if kind == "Join":
        return Join(
            name,
            left_keys=_split(properties.get("leftKeys", "")),
            right_keys=_split(properties.get("rightKeys", "")),
            join_type=properties.get("joinType", "inner"),
        )
    if kind == "Aggregation":
        return Aggregation(
            name,
            group_by=_split(properties.get("groupBy", "")),
            aggregates=_parse_aggregates(properties.get("aggregates", "")),
        )
    if kind == "DerivedAttribute":
        return DerivedAttribute(
            name,
            output=properties.get("output", ""),
            expression=properties.get("expression", ""),
        )
    if kind == "Rename":
        return Rename(name, renaming=_parse_renaming(properties.get("renaming", "")))
    if kind == "Union":
        return UnionOp(name)
    if kind == "Distinct":
        return Distinct(name)
    if kind == "SurrogateKey":
        return SurrogateKey(
            name,
            output=properties.get("output", ""),
            business_keys=_split(properties.get("businessKeys", "")),
        )
    if kind == "Sort":
        return Sort(
            name,
            keys=_split(properties.get("keys", "")),
            descending=properties.get("descending", "false") == "true",
        )
    if kind == "SCDUpdate":
        return SCDUpdate(
            name,
            table=properties.get("table", ""),
            policy=properties.get("policy", "type2"),
            business_keys=_split(properties.get("businessKeys", "")),
            effective_date=properties.get("effectiveDate", "1970-01-01"),
        )
    if kind == "Loader":
        return Loader(
            name,
            table=properties.get("table", ""),
            mode=properties.get("mode", "insert"),
        )
    raise XlmFormatError(f"unknown node type {kind!r}")


def _parse_aggregates(text: str) -> tuple:
    if not text:
        return ()
    specs = []
    for part in text.split(";"):
        if "=" not in part or "(" not in part or not part.endswith(")"):
            raise XlmFormatError(f"malformed aggregate spec {part!r}")
        output, rest = part.split("=", 1)
        function, input_column = rest[:-1].split("(", 1)
        specs.append(AggregationSpec(output, function, input_column))
    return tuple(specs)


def _parse_renaming(text: str) -> tuple:
    if not text:
        return ()
    pairs = []
    for part in text.split(";"):
        if "->" not in part:
            raise XlmFormatError(f"malformed renaming {part!r}")
        old, new = part.split("->", 1)
        pairs.append((old, new))
    return tuple(pairs)
